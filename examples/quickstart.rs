//! Quickstart: run the whole study on a small world and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cgn_study::{run_study, StudyConfig};

fn main() {
    // A mid-size world (~30 instrumented eyeball ASes). Seeded: the same
    // seed always yields the same Internet, the same measurements and the
    // same report.
    let config = StudyConfig::small(42);
    let report = run_study(config);
    println!("{}", report.render());
    println!(
        "\nDetected CGN-positive ASes — BitTorrent: {:?}, Netalyzr non-cellular: {:?}, cellular: {:?}",
        report.bt_positive, report.nz_noncellular_positive, report.nz_cellular_positive
    );
}
