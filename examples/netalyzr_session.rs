//! One Netalyzr session behind NAT444, narrated test by test.
//!
//! Builds subscriber C of Fig. 2 — a device behind a home CPE behind a
//! carrier-grade NAT — and runs the full §4.2/§6 suite: address
//! collection, the 10-flow port test, STUN classification, and the
//! TTL-driven NAT enumeration of Fig. 10 (which localizes BOTH NATs and
//! brackets their mapping timeouts).
//!
//! ```text
//! cargo run --release --example netalyzr_session
//! ```

use nat_engine::NatConfig;
use netalyzr::{run_session, ClientSpec, MeasurementLab, OsPortPolicy};
use netcore::{ip, SimDuration};
use simnet::{Network, RealmId};

fn main() {
    let mut net = Network::new();
    let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));

    // The ISP's CGN: 100.64/10 internally, 35 s UDP timeout, random port
    // allocation over the full port space.
    let mut cgn_cfg = NatConfig::cgn_default();
    cgn_cfg.udp_timeout = SimDuration::from_secs(35);
    let (_cgn, cgn_realm) = net.add_nat(
        cgn_cfg,
        vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
        RealmId::PUBLIC,
        vec![ip(198, 19, 2, 1)],
        ip(100, 64, 0, 1),
        false,
        7,
    );

    // The home CPE: port-preserving, 65 s timeout, WAN side on the ISP's
    // internal space (NAT444), one aggregation hop from the CGN.
    let (_cpe, home) = net.add_nat(
        NatConfig::home_cpe(),
        vec![ip(100, 64, 0, 30)],
        cgn_realm,
        vec![ip(100, 64, 255, 3)],
        ip(192, 168, 1, 1),
        true,
        8,
    );
    let device = net.add_host(home, ip(192, 168, 1, 50), vec![]);

    let spec = ClientSpec {
        node: device,
        addr: ip(192, 168, 1, 50),
        os_ports: OsPortPolicy::linux(),
        upnp_cpe_external: Some(ip(100, 64, 0, 30)), // the CPE answers UPnP
        upnp_model: Some("Acme CPE-001".into()),
        run_stun: true,
        run_ttl: true,
        port_flows: 10,
    };
    let report = run_session(&mut net, &lab, &spec, 42);

    println!("=== addresses (Table 4 inputs) ===");
    println!("IPdev (device):        {}", report.ip_dev);
    println!("IPcpe (UPnP):          {:?}", report.ip_cpe);
    println!("IPpub (server view):   {:?}", report.ip_pub());
    println!("→ IPcpe ≠ IPpub: a second translator hides behind the home router (NAT444)\n");

    println!("=== port test (Fig. 8) ===");
    for f in &report.port_test.flows {
        match f.observed {
            Some(o) => println!("  local {:>5} → server saw {}", f.local_port, o),
            None => println!("  local {:>5} → flow failed", f.local_port),
        }
    }
    println!(
        "preserved {}/10 — the CGN re-numbers ports across the whole space\n",
        report.port_test.preserved_count()
    );

    println!("=== STUN (Fig. 13) ===");
    println!(
        "classification: {:?}\n",
        report.stun.expect("stun ran").class
    );

    println!("=== TTL-driven NAT enumeration (Fig. 10) ===");
    let ttl = report.ttl.expect("ttl ran");
    println!(
        "path length: {} hops; address mismatch: {}",
        ttl.path_len, ttl.ip_mismatch
    );
    for d in &ttl.detected {
        println!(
            "  stateful middlebox at hop {}: mapping timeout in ({} s, {} s] (≈{} s)",
            d.hop,
            d.timeout_gt.as_secs(),
            d.timeout_le.as_secs(),
            d.timeout_estimate_secs()
        );
    }
    assert_eq!(ttl.detected.len(), 2, "both NAT layers must be found");
    println!("\nhop 1 = the home CPE (65 s), hop 3 = the carrier NAT (35 s). ✓");
}
