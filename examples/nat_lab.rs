//! NAT engine lab: the behaviour taxonomy of §3, demonstrated directly.
//!
//! Shows, without any measurement pipeline in between, how the engine
//! realizes the paper's vocabulary: mapping vs filtering behaviour (the
//! STUN taxonomy), the four port-allocation strategies, IP pooling,
//! hairpinning (with and without internal-source preservation) and
//! mapping timeouts.
//!
//! ```text
//! cargo run --release --example nat_lab
//! ```

use nat_engine::{
    FilteringBehavior, MappingBehavior, Nat, NatConfig, NatVerdict, Pooling, PortAllocation,
};
use netcore::{ip, Endpoint, Packet, SimTime};

fn server(port: u16) -> Endpoint {
    Endpoint::new(ip(203, 0, 113, 10), port)
}

fn subscriber(last: u8, port: u16) -> Endpoint {
    Endpoint::new(ip(100, 64, 0, last), port)
}

fn out(nat: &mut Nat, src: Endpoint, dst: Endpoint, at: u64) -> Endpoint {
    match nat.process_outbound(Packet::udp(src, dst, vec![]), SimTime::from_secs(at)) {
        NatVerdict::Forward(p) => p.src,
        v => panic!("expected forward, got {v:?}"),
    }
}

fn main() {
    println!("=== STUN taxonomy (mapping × filtering) ===");
    for (mapping, filtering) in [
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::EndpointIndependent,
        ),
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressDependent,
        ),
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressAndPortDependent,
        ),
        (
            MappingBehavior::AddressAndPortDependent,
            FilteringBehavior::AddressAndPortDependent,
        ),
    ] {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = mapping;
        cfg.filtering = filtering;
        println!("  {mapping:?} + {filtering:?} → {}", cfg.stun_type().name());
    }

    println!("\n=== port allocation strategies (§6.2) ===");
    for (name, strategy) in [
        ("preservation", PortAllocation::Preserve),
        ("sequential", PortAllocation::Sequential),
        ("random", PortAllocation::Random),
        (
            "chunk (4K)",
            PortAllocation::RandomChunk { chunk_size: 4096 },
        ),
    ] {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = strategy;
        let mut nat = Nat::new(cfg, vec![ip(198, 51, 100, 1)], 9);
        let ports: Vec<u16> = (0..6)
            .map(|i| out(&mut nat, subscriber(1, 40_000 + i), server(80 + i), 0).port)
            .collect();
        println!("  {name:<13} local 40000..40005 → external {ports:?}");
    }

    println!("\n=== IP pooling (§3) ===");
    for (name, pooling) in [
        ("paired", Pooling::Paired),
        ("arbitrary", Pooling::Arbitrary),
    ] {
        let mut cfg = NatConfig::cgn_default();
        cfg.pooling = pooling;
        cfg.mapping = MappingBehavior::AddressAndPortDependent; // force fresh mappings
        let pool: Vec<_> = (1..=4).map(|i| ip(198, 51, 100, i)).collect();
        let mut nat = Nat::new(cfg, pool, 9);
        let ips: Vec<String> = (0..5)
            .map(|i| {
                out(&mut nat, subscriber(1, 40_000), server(1000 + i), 0)
                    .ip
                    .to_string()
            })
            .collect();
        println!("  {name:<10} five flows of one subscriber → {ips:?}");
    }

    println!("\n=== hairpinning and the §4.1 leak (Fig. 2 inside one CGN) ===");
    for (name, keep_src) in [("source rewritten", false), ("internal source kept", true)] {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        cfg.hairpin_internal_source = keep_src;
        let mut nat = Nat::new(cfg, vec![ip(198, 51, 100, 1)], 9);
        // B opens a mapping; A sends to B's external endpoint.
        let b_ext = out(&mut nat, subscriber(2, 7000), server(80), 0);
        let verdict = nat.process_outbound(
            Packet::udp(subscriber(1, 7001), b_ext, vec![]),
            SimTime::ZERO,
        );
        match verdict {
            NatVerdict::Hairpin(p) => println!(
                "  {name:<22} B sees the packet from {} {}",
                p.src,
                if keep_src {
                    "→ internal endpoint LEAKED"
                } else {
                    "(no leak)"
                }
            ),
            v => panic!("expected hairpin, got {v:?}"),
        }
    }

    println!("\n=== mapping timeouts (Fig. 12) ===");
    let mut cfg = NatConfig::cgn_default();
    cfg.udp_timeout = netcore::SimDuration::from_secs(35);
    let mut nat = Nat::new(cfg, vec![ip(198, 51, 100, 1)], 9);
    let ext = out(&mut nat, subscriber(1, 9000), server(80), 0);
    let back = Packet::udp(server(80), ext, vec![]);
    let fresh = nat.process_inbound(back.clone(), SimTime::from_secs(30));
    let stale = nat.process_inbound(back, SimTime::from_secs(30 + 36));
    println!(
        "  inbound at t+30 s: {}",
        if matches!(fresh, NatVerdict::Forward(_)) {
            "delivered"
        } else {
            "dropped"
        }
    );
    println!(
        "  inbound at t+66 s: {} (35 s idle timeout elapsed)",
        if matches!(stale, NatVerdict::Forward(_)) {
            "delivered"
        } else {
            "dropped"
        }
    );
}
