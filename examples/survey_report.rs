//! Reproduce Fig. 1 and the §2 operator-survey headlines.
//!
//! ```text
//! cargo run --release --example survey_report
//! ```

use topology::{Survey, SurveyConfig};

fn bar(label: &str, share: f64) {
    let n = (share * 50.0).round() as usize;
    println!("  {label:<22} {:>5.1}% {}", share * 100.0, "█".repeat(n));
}

fn main() {
    let survey = Survey::generate(&SurveyConfig::default());
    println!("operator survey — {} respondents\n", survey.len());

    println!("Fig. 1a — Carrier-Grade NAT deployment (paper: 38 / 12 / 50):");
    let (deployed, considering, none) = survey.cgn_shares();
    bar("already deployed", deployed);
    bar("considering", considering);
    bar("no plans", none);

    println!("\nFig. 1b — IPv6 deployment (paper: 32 / 35 / 11 / 22):");
    let (most, some, soon, nope) = survey.ipv6_shares();
    bar("most/all subscribers", most);
    bar("some subscribers", some);
    bar("plans to deploy soon", soon);
    bar("no plans", nope);

    println!("\n§2 headlines:");
    println!(
        "  facing IPv4 scarcity now: {:.0}%  (paper: >40%)",
        survey.scarcity_share() * 100.0
    );
    println!(
        "  highest subscriber-to-address ratio: {:.0}:1  (paper: 20:1)",
        survey.max_subs_per_address()
    );
    let internal = survey
        .respondents
        .iter()
        .filter(|r| r.internal_scarcity)
        .count();
    println!("  ISPs short of *internal* address space: {internal}  (paper: 3)");
    let bought = survey.respondents.iter().filter(|r| r.bought_space).count();
    let considered = survey
        .respondents
        .iter()
        .filter(|r| r.considered_buying)
        .count();
    println!("  bought IPv4 space: {bought}; considered buying: {considered}  (paper: 3 / 15)");
}
