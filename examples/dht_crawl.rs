//! The BitTorrent story of §4.1, end to end on a hand-built network.
//!
//! Builds the two contrasting worlds of Fig. 3 side by side:
//!
//! * a *Comcast-like* AS — home CPE NATs only, two BitTorrent devices per
//!   home: internal leakage exists but forms isolated 1×1 stars;
//! * a *FastWEB-like* AS — subscribers directly behind one carrier-grade
//!   NAT: leakage forms one large cluster spanning many pool addresses,
//!   which is exactly what the paper's 5×5 detection boundary keys on.
//!
//! ```text
//! cargo run --release --example dht_crawl
//! ```

use analysis::bt_detect::BtDetector;
use analysis::obs::BtLeakObs;
use bt_dht::peer::PeerConfig;
use bt_dht::{CrawlConfig, Crawler, DhtWorld, WorldConfig};
use nat_engine::{FilteringBehavior, NatConfig};
use netcore::{classify_reserved, ip, AsId, Prefix, RoutingTable};
use simnet::{Network, RealmId};

fn main() {
    let mut net = Network::new();
    let mut routing = RoutingTable::new();

    // Public infrastructure: DHT bootstrap + the crawler's host.
    let bs = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
    let crawler_host = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 100), vec![]);

    let mut world = DhtWorld::new(WorldConfig::default(), bs, ip(203, 0, 113, 1));
    world.add_service_peer(crawler_host, ip(203, 0, 113, 100), 64_000);

    // --- AS 7922-like: home NATs only. Each home has TWO BitTorrent
    // devices, so internal 192X endpoints circulate via local peer
    // discovery — but each home leaks only its own devices.
    routing.announce(Prefix::new(ip(50, 0, 0, 0), 16), AsId(7922));
    for i in 0..8u8 {
        let wan = ip(50, 0, 0, 10 + i);
        let (_, home) = net.add_nat(
            {
                let mut c = NatConfig::home_cpe();
                c.filtering = FilteringBehavior::EndpointIndependent; // reachable
                c
            },
            vec![wan],
            RealmId::PUBLIC,
            vec![ip(198, 18, 0, i)],
            ip(192, 168, 1, 1),
            true,
            100 + i as u64,
        );
        for d in 0..2u8 {
            let a = ip(192, 168, 1, 100 + d);
            let h = net.add_host(home, a, vec![]);
            world.add_peer_with_locality(h, a, PeerConfig::default(), 7922);
        }
    }

    // --- AS 12874-like: one CGN, subscribers directly on ISP-internal
    // 100.64/10 space (bridged access), multicast allowed.
    routing.announce(Prefix::new(ip(60, 0, 0, 0), 16), AsId(12874));
    let mut cgn = NatConfig::cgn_default();
    cgn.filtering = FilteringBehavior::EndpointIndependent;
    let pool: Vec<_> = (1..=8).map(|i| ip(60, 0, 0, i)).collect();
    let (_, realm) = net.add_nat(
        cgn,
        pool,
        RealmId::PUBLIC,
        vec![ip(198, 19, 0, 1)],
        ip(100, 64, 0, 1),
        true,
        7,
    );
    for i in 0..10u8 {
        let a = ip(100, 64, 0, 10 + i);
        let h = net.add_host(realm, a, vec![ip(198, 18, 1, i)]);
        world.add_peer_with_locality(h, a, PeerConfig::default(), 12874);
    }

    println!("running the DHT swarm ({} peers)…", world.peers.len());
    world.run(&mut net);

    println!("crawling…");
    let mut crawler = Crawler::new(crawler_host, ip(203, 0, 113, 100), CrawlConfig::default());
    let report = crawler.crawl(&mut net, &mut world);
    println!(
        "crawl: {} peers queried, {} learned, {} responded to bt_ping, {} leak records\n",
        report.queried.len(),
        report.learned.len(),
        report.ping_responders.len(),
        report.leaks.len()
    );

    // Analysis: per-AS clustering with the paper's detection boundary.
    let leaks: Vec<BtLeakObs> = report
        .leaks
        .iter()
        .map(|l| BtLeakObs {
            leaker_ip: l.leaker_endpoint.ip,
            leaker_as: routing.origin_of(l.leaker_endpoint.ip),
            internal_ip: l.internal.endpoint.ip,
            range: classify_reserved(l.internal.endpoint.ip).expect("leaks are reserved"),
        })
        .collect();
    let det = BtDetector::default().detect(&leaks);
    for (as_id, a) in &det.per_as {
        println!("{as_id}:");
        for (range, cluster) in &a.largest_per_range {
            println!(
                "  {range}: largest cluster = {} external x {} internal IPs {}",
                cluster.external_ips,
                cluster.internal_ips,
                if a.positive_ranges.contains(range) {
                    "→ CGN DETECTED"
                } else {
                    ""
                }
            );
        }
    }
    assert!(
        det.per_as
            .get(&AsId(12874))
            .map(|a| a.cgn_positive)
            .unwrap_or(false),
        "the FastWEB-like AS should be detected"
    );
    assert!(
        !det.per_as
            .get(&AsId(7922))
            .map(|a| a.cgn_positive)
            .unwrap_or(false),
        "the Comcast-like AS should NOT be detected"
    );
    println!("\nhome-NAT leakage stays below the boundary; CGN pooling crosses it. ✓");
}
