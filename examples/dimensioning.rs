//! CGN dimensioning at scale: drive millions of flows from diverse
//! workload mixes through carrier-grade NAT instances and report the
//! port/state capacity each mix demands — the operator-side view of
//! §6.2's findings (port chunks, pooling, session limits).
//!
//! ```text
//! cargo run --release --example dimensioning              # full sweep
//! cargo run --release --example dimensioning -- seed=7    # other seed
//! cargo run --release --example dimensioning -- flash     # + flash crowd
//! cargo run --release --example dimensioning -- threads=4 # worker threads
//! cargo run --release --example dimensioning -- export=plots/
//! ```
//!
//! The run is deterministic: the same seed always produces an
//! identical report (the example verifies one mix by re-running it and
//! comparing fingerprints).

use cgn_study::dimensioning::{run_dimensioning, DimensioningConfig};
use cgn_study::export::export_dimensioning;
use cgn_traffic::{DiurnalCurve, FlashCrowd, WorkloadMix};

fn main() {
    let mut seed: u64 = 2016;
    let mut export_dir: Option<std::path::PathBuf> = None;
    let mut flash = false;
    let mut threads: Option<usize> = None;
    for arg in std::env::args().skip(1) {
        if let Some(s) = arg.strip_prefix("seed=") {
            seed = s.parse().expect("seed must be an integer");
        } else if let Some(d) = arg.strip_prefix("export=") {
            export_dir = Some(d.into());
        } else if let Some(t) = arg.strip_prefix("threads=") {
            threads = Some(t.parse().expect("threads must be an integer"));
        } else if arg == "flash" {
            flash = true;
        } else {
            eprintln!("unknown argument '{arg}' (use seed=N, threads=N, export=DIR, flash)");
            std::process::exit(2);
        }
    }

    let mut config = DimensioningConfig::release(seed);
    if let Some(t) = threads {
        config.threads = t;
    }
    // Compress a day's diurnal curve into the run so the sweep crosses
    // trough and peak; optionally add a flash crowd in the middle.
    config.modulation.diurnal = Some(DiurnalCurve::compressed(config.duration_secs));
    if flash {
        let mid = config.duration_secs / 2;
        config.modulation.flash = Some(FlashCrowd::new(mid, mid + 120, 3.0));
    }

    let t0 = std::time::Instant::now();
    let report = run_dimensioning(&config);
    let elapsed = t0.elapsed();

    println!("{}", report.render());

    // Determinism spot-check: re-run the lightest mix and compare.
    let mut check = config.clone();
    check.mixes = vec![WorkloadMix::iot_fleet()];
    let once = run_dimensioning(&check).digest();
    let twice = run_dimensioning(&check).digest();
    assert_eq!(once, twice, "same seed must reproduce the identical report");

    if let Some(dir) = export_dir {
        std::fs::create_dir_all(&dir).expect("create export dir");
        for f in export_dimensioning(&report) {
            std::fs::write(dir.join(&f.name), f.content.as_bytes()).expect("write export");
        }
        println!("exported dimensioning data to {}", dir.display());
    }

    let total = report.total_flows();
    println!(
        "\n({total} flows across {} mixes in {elapsed:.2?}, seed {seed}, digest {:016x}; \
         determinism verified)",
        report.runs.len(),
        report.digest()
    );
    assert!(
        total >= 1_000_000,
        "release sweep must drive at least one million flows, got {total}"
    );
}
