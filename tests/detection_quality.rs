//! Detection quality against ground truth: the paper's conservative
//! detectors must not produce false positives; the naive baselines show
//! why the ingredients exist.

use analysis::baseline::{self, score};
use analysis::bt_detect::BtDetector;
use analysis::nz_detect::{NzCellularDetector, NzNonCellularDetector};
use cgn_study::{pipeline, StudyConfig};
use netcore::AsId;
use std::collections::BTreeSet;

fn truth(art: &pipeline::StudyArtifacts) -> BTreeSet<AsId> {
    art.world
        .deployments
        .iter()
        .filter(|d| d.has_cgn())
        .map(|d| d.info.id)
        .collect()
}

#[test]
fn bt_detector_has_no_false_positives() {
    let art = pipeline::measure(StudyConfig::tiny(5));
    let truth = truth(&art);
    let det = BtDetector::default().detect(&art.leaks);
    for a in det.positive_ases() {
        assert!(truth.contains(&a), "{a} flagged by BT but has no CGN");
    }
}

#[test]
fn nz_detectors_have_no_false_positives() {
    let art = pipeline::measure(StudyConfig::tiny(5));
    let truth = truth(&art);
    let cell = NzCellularDetector::default().detect(&art.sessions, &art.world.routing);
    for (a, r) in &cell {
        if r.cgn_positive {
            assert!(truth.contains(a), "{a} flagged by cellular NZ without CGN");
        }
    }
    let nc = NzNonCellularDetector::default().detect(&art.sessions, &art.world.routing);
    for (a, r) in &nc {
        if r.cgn_positive {
            assert!(
                truth.contains(a),
                "{a} flagged by non-cellular NZ without CGN"
            );
        }
    }
}

#[test]
fn cellular_detection_recall_is_high() {
    // The paper finds cellular detection straightforward (>90% positive);
    // our cellular detector should recover nearly every covered cellular
    // CGN AS.
    let art = pipeline::measure(StudyConfig::tiny(5));
    let truth = truth(&art);
    let cell = NzCellularDetector::default().detect(&art.sessions, &art.world.routing);
    let covered: BTreeSet<AsId> = cell.keys().copied().collect();
    let detected: BTreeSet<AsId> = cell
        .iter()
        .filter(|(_, r)| r.cgn_positive)
        .map(|(a, _)| *a)
        .collect();
    let s = score(&detected, &truth, &covered);
    assert!(
        s.recall >= 0.8,
        "cellular recall {:.2} too low (tp {} fn {})",
        s.recall,
        s.true_positives,
        s.false_negatives
    );
    assert_eq!(s.false_positives, 0);
}

#[test]
fn naive_bt_baseline_overcounts() {
    // "Any leakage means CGN" flags home-NAT ASes too: precision must be
    // visibly worse than the clustered detector's (which is 1.0 here).
    let art = pipeline::measure(StudyConfig::tiny(5));
    let truth = truth(&art);
    let covered: BTreeSet<AsId> = art.leaks.iter().filter_map(|l| l.leaker_as).collect();
    let naive = baseline::bt_any_leak(&art.leaks);
    let s = score(&naive, &truth, &covered);
    assert!(
        s.false_positives > 0,
        "the naive baseline should flag at least one non-CGN AS \
         (found {} ASes, truth {})",
        naive.len(),
        truth.len()
    );
}
