//! Cross-crate integration: packets, NAT layers and measurements agree.

use nat_engine::NatConfig;
use netalyzr::{run_session, ClientSpec, MeasurementLab, OsPortPolicy};
use netcore::{ip, Endpoint, Packet, SimDuration};
use simnet::{Network, NodeId, RealmId};

/// Subscriber C of Fig. 2: device ← CPE ← aggregation ← CGN ← core.
struct Nat444 {
    net: Network,
    lab: MeasurementLab,
    device: NodeId,
    cgn: NodeId,
    cpe: NodeId,
}

fn build(cgn_timeout_secs: u64) -> Nat444 {
    let mut net = Network::new();
    let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
    let mut cgn_cfg = NatConfig::cgn_default();
    cgn_cfg.udp_timeout = SimDuration::from_secs(cgn_timeout_secs);
    let (cgn, cgn_realm) = net.add_nat(
        cgn_cfg,
        vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
        RealmId::PUBLIC,
        vec![ip(198, 19, 2, 1)],
        ip(100, 64, 0, 1),
        false,
        7,
    );
    let (cpe, home) = net.add_nat(
        NatConfig::home_cpe(),
        vec![ip(100, 64, 0, 30)],
        cgn_realm,
        vec![ip(100, 64, 255, 3)],
        ip(192, 168, 1, 1),
        true,
        8,
    );
    let device = net.add_host(home, ip(192, 168, 1, 50), vec![]);
    Nat444 {
        net,
        lab,
        device,
        cgn,
        cpe,
    }
}

#[test]
fn double_translation_and_reply_path() {
    let mut w = build(60);
    let src = Endpoint::new(ip(192, 168, 1, 50), 40_000);
    let dst = w.lab.echo.udp_endpoint();
    let out = w
        .net
        .send(w.device, Packet::udp(src, dst, b"PING".to_vec()));
    assert_eq!(out.len(), 1, "packet must reach the echo server");
    let seen = out[0].pkt.src;
    assert!(
        seen.ip == ip(198, 51, 100, 1) || seen.ip == ip(198, 51, 100, 2),
        "server must see a CGN pool address, saw {seen}"
    );
    // Both NATs now hold exactly one mapping for this flow.
    assert_eq!(w.net.nat(w.cpe).mapping_count(), 1);
    assert_eq!(w.net.nat(w.cgn).mapping_count(), 1);
    // The reply fully de-translates.
    let back = w
        .net
        .send(out[0].node, Packet::udp(dst, seen, b"PONG".to_vec()));
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].node, w.device);
    assert_eq!(back[0].pkt.dst, src);
}

#[test]
fn session_measures_what_the_topology_says() {
    let mut w = build(35);
    let spec = ClientSpec {
        node: w.device,
        addr: ip(192, 168, 1, 50),
        os_ports: OsPortPolicy::linux(),
        upnp_cpe_external: Some(ip(100, 64, 0, 30)),
        upnp_model: Some("TestBox".into()),
        run_stun: true,
        run_ttl: true,
        port_flows: 10,
    };
    let report = run_session(&mut w.net, &w.lab, &spec, 7);

    // Address triple tells the NAT444 story.
    assert_eq!(report.ip_dev, ip(192, 168, 1, 50));
    assert_eq!(report.ip_cpe, Some(ip(100, 64, 0, 30)));
    let public = report.ip_pub().expect("flows completed");
    assert_ne!(Some(public), report.ip_cpe, "IPcpe ≠ IPpub under NAT444");

    // Port test: the CPE preserves, the CGN renumbers randomly — so the
    // local ports are NOT preserved end to end.
    assert!(report.port_test.preserved_count() <= 2);

    // STUN reports the most restrictive on-path behaviour.
    let stun = report.stun.expect("stun ran");
    assert!(
        stun.class.nat_type().is_some(),
        "a NAT must be classified: {stun:?}"
    );

    // TTL enumeration finds both layers at the right hops with the right
    // timeouts: CPE at hop 1 (65 s), CGN at hop 3 (35 s).
    let ttl = report.ttl.expect("ttl ran");
    assert!(ttl.ip_mismatch);
    let hops: Vec<usize> = ttl.detected.iter().map(|d| d.hop).collect();
    assert_eq!(hops, vec![1, 3], "detected NATs at {hops:?}");
    assert_eq!(ttl.detected[0].timeout_estimate_secs(), 65);
    assert_eq!(ttl.detected[1].timeout_estimate_secs(), 35);

    // Ground truth agrees: the true path has the NATs where the test
    // found them.
    let truth = w
        .net
        .path_hops(w.device, w.lab.echo.ip)
        .expect("path exists");
    let nat_positions: Vec<usize> = truth
        .iter()
        .enumerate()
        .filter(|(_, h)| h.kind == simnet::HopKind::Nat)
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(nat_positions, hops, "measured hops must match topology");
}

#[test]
fn expired_cgn_blocks_inbound_but_cpe_state_survives() {
    let mut w = build(30);
    let src = Endpoint::new(ip(192, 168, 1, 50), 41_000);
    let dst = w.lab.echo.udp_endpoint();
    let out = w
        .net
        .send(w.device, Packet::udp(src, dst, b"PING".to_vec()));
    let ext = out[0].pkt.src;

    // 40 s idle: the CGN (30 s) expired, the CPE (65 s) did not.
    w.net.advance(SimDuration::from_secs(40));
    let echo_node = w.lab.echo.node;
    let probe = w
        .net
        .send(echo_node, Packet::udp(dst, ext, b"PROBE".to_vec()));
    assert!(probe.is_empty(), "probe must die at the expired CGN");
    assert!(w.net.nat_stats(w.cgn).drop_no_mapping >= 1);
    assert_eq!(w.net.nat(w.cpe).mapping_count(), 1, "CPE state survives");
}
