//! End-to-end integration: the full pipeline on a tiny world.

use cgn_study::{pipeline, run_study, StudyConfig};

#[test]
fn full_study_assembles_and_is_consistent() {
    let report = run_study(StudyConfig::tiny(11));

    // Every detection set is consistent with the coverage universes.
    for a in &report.nz_cellular_positive {
        assert!(
            report.table5.rows[3].routed.0 > 0,
            "cellular positives imply cellular coverage ({a})"
        );
    }
    // Table 5 percentages are percentages.
    for row in &report.table5.rows {
        for (cov, covp, pos, posp) in [row.routed, row.pbl, row.apnic] {
            assert!((0.0..=100.0).contains(&covp));
            assert!((0.0..=100.0).contains(&posp));
            assert!(
                pos <= cov,
                "{}: positives {pos} exceed covered {cov}",
                row.method
            );
        }
    }
    // Table 7 quadrants sum to the session count.
    let t7 = &report.table7;
    assert_eq!(
        t7.mismatch_detected + t7.mismatch_not_detected + t7.match_detected + t7.match_not_detected,
        t7.sessions
    );
    // Table 4 breakdowns are complete.
    let t4 = &report.table4;
    for b in [&t4.cellular_dev, &t4.noncellular_dev, &t4.noncellular_cpe] {
        let sum =
            b.r192 + b.r172 + b.r10 + b.r100 + b.unrouted + b.routed_match + b.routed_mismatch;
        assert_eq!(sum, b.n);
    }
    // The rendered report mentions every experiment.
    let text = report.render();
    for needle in [
        "Fig 1",
        "Table 1",
        "Table 2",
        "Table 3",
        "Fig 3",
        "Fig 4",
        "Table 4",
        "Fig 5",
        "Table 5",
        "Fig 6",
        "Fig 7",
        "Fig 8a",
        "Fig 8b",
        "Fig 8c",
        "Fig 9",
        "Table 7",
        "Fig 11",
        "Fig 12",
        "Fig 13",
        "calibration",
    ] {
        assert!(text.contains(needle), "report must cover {needle}");
    }
}

#[test]
fn study_is_deterministic_and_seed_sensitive() {
    let a = run_study(StudyConfig::tiny(21)).render();
    let b = run_study(StudyConfig::tiny(21)).render();
    let c = run_study(StudyConfig::tiny(22)).render();
    assert_eq!(a, b, "same seed ⇒ identical report");
    assert_ne!(a, c, "different seed ⇒ different world");
}

#[test]
fn artifacts_expose_consistent_ground_truth() {
    let art = pipeline::measure(StudyConfig::tiny(31));
    // Every subscriber is reachable from its deployment record.
    for d in &art.world.deployments {
        for id in &d.subscriber_ids {
            assert_eq!(art.world.subscribers[*id].as_id, d.info.id);
        }
    }
    // Leak attribution agrees with routing.
    for l in &art.leaks {
        assert_eq!(l.leaker_as, art.world.routing.origin_of(l.leaker_ip));
        assert_eq!(netcore::classify_reserved(l.internal_ip), Some(l.range));
    }
    // Sessions attribute to instrumented ASes.
    for s in &art.sessions {
        let a = s.as_id.expect("sessions carry AS attribution");
        assert!(
            art.world.deployment(a).is_some(),
            "session attributed to uninstrumented {a}"
        );
    }
}
