//! Invariants of the Netalyzr sessions against topology ground truth.

use cgn_study::{pipeline, StudyConfig};
use netcore::classify_reserved;
use topology::Scenario;

#[test]
fn sessions_agree_with_ground_truth_scenarios() {
    let art = pipeline::measure(StudyConfig::tiny(17));
    // Index sessions by device address (unique per subscriber at tiny
    // scale within an AS; collisions across home LANs are fine because we
    // compare classes, not identities).
    for s in &art.sessions {
        let Some(pub_ip) = s.ip_pub else { continue };
        // The public address must be routable and routed.
        assert!(
            classify_reserved(pub_ip).is_none(),
            "public {pub_ip} is reserved"
        );
        assert!(art.world.routing.is_routed(pub_ip));
        // If the device address is reserved, some translator was on the
        // path, so the server must have seen a different address.
        if classify_reserved(s.ip_dev).is_some() {
            assert_ne!(pub_ip, s.ip_dev);
        }
        // UPnP data implies a CPE, which implies a non-cellular session.
        if s.ip_cpe.is_some() {
            assert!(!s.cellular, "cellular subscribers have no CPE");
        }
    }
}

#[test]
fn ttl_results_match_topology_distances() {
    let art = pipeline::measure(StudyConfig::tiny(17));
    // For scenario-A subscribers with a CPE, the most distant NAT must be
    // the CPE at hop 1 (no carrier NAT exists on their path). Sessions
    // are joined on the CPE's *public* WAN address, which is unique —
    // device addresses collide across home LANs by design.
    let mut checked = 0;
    for sub in &art.world.subscribers {
        if sub.scenario != Scenario::A {
            continue;
        }
        let Some(cpe) = &sub.cpe else { continue };
        for s in art
            .sessions
            .iter()
            .filter(|s| s.ip_pub == Some(cpe.external_ip))
        {
            let Some(ttl) = &s.ttl else { continue };
            for d in &ttl.detected {
                assert!(
                    d.hop <= 2,
                    "scenario A found a NAT at hop {} — only the CPE exists",
                    d.hop
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 0, "at least one scenario-A session must exist");
}

#[test]
fn port_flows_complete_for_nearly_all_sessions() {
    let art = pipeline::measure(StudyConfig::tiny(17));
    let mut complete = 0;
    for s in &art.sessions {
        if s.observed_flows().count() == 10 {
            complete += 1;
        }
    }
    assert!(
        complete * 10 >= art.sessions.len() * 9,
        "{complete}/{} sessions completed all flows",
        art.sessions.len()
    );
}

#[test]
fn stun_never_reports_nat_for_public_naked_devices() {
    let art = pipeline::measure(StudyConfig::tiny(17));
    for sub in &art.world.subscribers {
        if sub.scenario != Scenario::A || sub.cpe.is_some() {
            continue;
        }
        // Naked public devices have globally unique addresses, so joining
        // on the device address is sound here.
        for s in art
            .sessions
            .iter()
            .filter(|s| s.ip_dev == sub.device_addr && s.ip_pub == Some(sub.device_addr))
        {
            assert!(
                s.stun_nat.is_none(),
                "naked public device {} classified as NATed",
                sub.device_addr
            );
        }
    }
}
