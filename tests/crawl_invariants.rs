//! Invariants of the DHT crawl, checked on the real pipeline output.

use cgn_study::{pipeline, StudyConfig};
use netcore::classify_reserved;

#[test]
fn crawl_sets_are_consistent() {
    let art = pipeline::measure(StudyConfig::tiny(13));
    let crawl = &art.crawl;

    // Ping responders are a subset of learned peers.
    for r in &crawl.ping_responders {
        assert!(crawl.learned.contains(r), "responder {r:?} not learned");
    }
    // Queried (responsive) and unresponsive endpoints are disjoint.
    for (e, _) in &crawl.queried {
        assert!(
            !crawl.unresponsive.contains(e),
            "{e} both responsive and unresponsive"
        );
    }
    // Every leak edge references a reserved internal address and a
    // routable leaker endpoint.
    for l in &crawl.leaks {
        assert!(classify_reserved(l.internal.endpoint.ip).is_some());
        assert!(
            classify_reserved(l.leaker_endpoint.ip).is_none(),
            "leakers are queried at routable endpoints"
        );
    }
    // Learned-record multiplicity at least covers the unique set.
    assert!(crawl.learned_records as usize >= crawl.learned.len());
}

#[test]
fn churn_keeps_a_responsive_core() {
    let art = pipeline::measure(StudyConfig::tiny(13));
    let crawl = &art.crawl;
    assert!(
        !crawl.ping_responders.is_empty(),
        "someone must answer pings"
    );
    // With 25% churn, responders are well below the learned population —
    // the Table 2 shape (the paper saw 56%).
    assert!(crawl.ping_responders.len() < crawl.learned.len());
}

#[test]
fn calibration_matches_configured_violator_rate() {
    let mut config = StudyConfig::tiny(13);
    config.p_dht_violators = 0.2; // exaggerate for a tiny population
    let art = pipeline::measure(config);
    let rate = art.calibration.violation_rate();
    assert!(
        rate > 0.02 && rate < 0.5,
        "violation rate {rate} should reflect the configured 20% ± sampling noise"
    );
}

#[test]
fn leak_graph_matches_raw_records() {
    use analysis::bt_detect::BtDetector;
    let art = pipeline::measure(StudyConfig::tiny(13));
    let det = BtDetector {
        exclusive_single_as: false,
        ..BtDetector::default()
    }
    .detect(&art.leaks);
    // Every AS in the detection output has at least one raw leak record.
    for a in det.per_as.keys() {
        assert!(art.leaks.iter().any(|l| l.leaker_as == Some(*a)));
    }
}
