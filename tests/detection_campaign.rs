//! The detection campaign's cross-crate guarantees: scored accuracy on
//! the standard scenario library, determinism per seed, and
//! bit-identical results across worker-thread counts (the driver's
//! existing guarantee, extended to the campaign).

use cgn_detect::{run_campaign, AsLabel, CampaignConfig};
use cgn_study::check_gates;

#[test]
fn quick_campaign_meets_the_quality_gates() {
    let rep = run_campaign(&CampaignConfig::quick(2016));
    assert!(
        rep.scenarios.len() >= 6,
        "standard library holds at least six scenarios"
    );
    let names: Vec<&str> = rep.scenarios.iter().map(|s| s.name.as_str()).collect();
    for required in ["nat444", "deterministic-nat", "cpe-only-control"] {
        assert!(names.contains(&required), "{required} missing");
    }
    // Every scenario deployed CGNs as genuinely sharded engines.
    for s in rep.scenarios.iter().filter(|s| s.cgn_instances > 0) {
        assert!(
            s.shards_per_instance >= 2,
            "{}: CGN instances must be sharded",
            s.name
        );
        assert!(s.flows_offered > 0, "{}: background load ran", s.name);
    }
    assert!(
        check_gates(&rep).is_ok(),
        "precision {:.3} / recall {:.3} below gates",
        rep.cgn_precision,
        rep.cgn_recall
    );
    // The controls keep the negative classes honest.
    assert!(rep.confusion.support(AsLabel::CpeNat) > 0);
    assert!(rep.confusion.support(AsLabel::Public) > 0);
}

/// Campaign results (features, classifications, scores) are
/// bit-identical for every worker-thread count — threads are an
/// execution detail of the background-load batch scatter, never an
/// input to the result.
#[test]
fn campaign_bit_identical_across_thread_counts() {
    let seq = run_campaign(&CampaignConfig::quick(31).with_threads(1));
    for threads in [2, 4, 7] {
        let par = run_campaign(&CampaignConfig::quick(31).with_threads(threads));
        assert_eq!(seq, par, "threads={threads} diverged from sequential");
        assert_eq!(seq.digest(), par.digest());
    }
}

#[test]
fn campaign_deterministic_per_seed() {
    let a = run_campaign(&CampaignConfig::quick(11));
    let b = run_campaign(&CampaignConfig::quick(11));
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    let c = run_campaign(&CampaignConfig::quick(12));
    assert_ne!(a.digest(), c.digest(), "seed must shape the campaign");
}
