//! Cross-crate determinism of the windowed runtime metrics: the full
//! metric trajectory — every window's cumulative and delta snapshot,
//! not just the final state — must be bit-identical for any worker-
//! thread count, because shard snapshots merge in shard order at
//! sample barriers. Different seeds must still produce different
//! metrics, or the invariance test would pass vacuously.

use cgn_traffic::{DriverConfig, WorkloadMix};
use nat_engine::telemetry::TelemetryMode;

fn config(seed: u64, threads: usize) -> DriverConfig {
    DriverConfig {
        subscribers: 300,
        shards: 4,
        external_ips_per_shard: 2,
        threads,
        duration_secs: 180,
        sample_secs: 30,
        sweep_secs: 20,
        metrics_window_secs: Some(30),
        telemetry: TelemetryMode::PerConnection,
        ..DriverConfig::new(WorkloadMix::p2p_heavy(), 0xCA4E ^ seed)
    }
}

#[test]
fn metric_trajectories_are_bit_identical_across_thread_counts() {
    let reference = cgn_traffic::run(&config(1, 1));
    let metrics = reference.metrics.as_ref().expect("metrics enabled");
    assert!(!metrics.windows.is_empty(), "windows were aggregated");
    assert!(
        metrics.last.scalar("cgn_mappings_created_total") > 0,
        "the run produced mappings"
    );
    assert!(
        metrics.last.scalar("cgn_sink_records_total") > 0,
        "the telemetry sink's volume is surfaced in the snapshot"
    );
    for threads in [2, 4] {
        let other = cgn_traffic::run(&config(1, threads));
        assert_eq!(
            reference.metrics, other.metrics,
            "full metrics summary must not depend on worker threads ({threads})"
        );
        assert_eq!(
            metrics.last.digest(),
            other.metrics.as_ref().unwrap().last.digest()
        );
        // The whole summary — not just the metrics — stays invariant.
        assert_eq!(reference.digest(), other.digest());
    }
}

#[test]
fn metric_trajectories_differ_across_seeds() {
    let a = cgn_traffic::run(&config(1, 2));
    let b = cgn_traffic::run(&config(2, 2));
    let (ma, mb) = (a.metrics.expect("metrics"), b.metrics.expect("metrics"));
    assert_ne!(
        ma.last.digest(),
        mb.last.digest(),
        "different seeds must yield different metric snapshots"
    );
    assert_ne!(ma, mb);
}
