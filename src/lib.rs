//! Umbrella crate for the CGN-study reproduction workspace.
//!
//! The substance lives in the member crates; this root package hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). Re-exports give examples and tests one import surface.

pub use analysis;
pub use bt_dht;
pub use cgn_detect;
pub use cgn_study as study;
pub use nat_engine;
pub use netalyzr;
pub use netcore;
pub use simnet;
pub use topology;
