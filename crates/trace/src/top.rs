//! Rendering helpers for the `repro -- top` live dashboard.
//!
//! The dashboard is a pure function of two successive `/metrics`
//! scrapes (parsed to `name → value` scalar maps by
//! `cgn_opsd::parse_scalars`) plus the scrape interval — no terminal
//! library, no state. The binary wraps it in an ANSI
//! clear-and-redraw loop; tests feed it synthetic maps and assert on
//! the text. Plain ANSI only: [`CLEAR`] is the whole "TUI toolkit".

use std::collections::BTreeMap;
use std::fmt::Write;

/// ANSI clear-screen + cursor-home: prefix for each redraw.
pub const CLEAR: &str = "\x1b[2J\x1b[H";

type Scalars = BTreeMap<String, u64>;

/// Unicode block-element sparkline of `values` scaled to their max
/// (empty input renders empty; an all-zero row renders spaces).
pub fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                ' '
            } else {
                // Map (0, max] onto the 8 block heights.
                let level = (v as u128 * 8).div_ceil(max as u128).clamp(1, 8) as usize;
                BLOCKS[level - 1]
            }
        })
        .collect()
}

/// All samples of one labelled family: `family{label="<v>"} → (v, value)`,
/// in label order.
pub fn labelled_series(scalars: &Scalars, family: &str, label: &str) -> Vec<(String, u64)> {
    let prefix = format!("{family}{{{label}=\"");
    scalars
        .iter()
        .filter_map(|(name, &v)| {
            let rest = name.strip_prefix(&prefix)?;
            let value = rest.strip_suffix("\"}")?;
            Some((value.to_string(), v))
        })
        .collect()
}

/// Per-bucket (non-cumulative) histogram counts for one labelled
/// histogram family, ordered by ascending bucket edge. Input is the
/// exposition's cumulative `_bucket{…,le="…"}` series.
pub fn bucket_counts(scalars: &Scalars, family: &str, label: &str, label_value: &str) -> Vec<u64> {
    let prefix = format!("{family}_bucket{{{label}=\"{label_value}\",le=\"");
    let mut edges: Vec<(u64, u64)> = scalars
        .iter()
        .filter_map(|(name, &v)| {
            let rest = name.strip_prefix(&prefix)?;
            let le = rest.strip_suffix("\"}")?;
            // "+Inf" sorts after every finite edge.
            let edge = le.parse::<u64>().unwrap_or(u64::MAX);
            Some((edge, v))
        })
        .collect();
    edges.sort_unstable_by_key(|&(edge, _)| edge);
    let mut prev = 0u64;
    edges
        .into_iter()
        .map(|(_, cumulative)| {
            let n = cumulative.saturating_sub(prev);
            prev = cumulative;
            n
        })
        .collect()
}

fn delta(prev: &Scalars, cur: &Scalars, name: &str) -> u64 {
    cur.get(name)
        .copied()
        .unwrap_or(0)
        .saturating_sub(prev.get(name).copied().unwrap_or(0))
}

fn rate(prev: &Scalars, cur: &Scalars, name: &str, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    delta(prev, cur, name) as f64 / secs
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render the dashboard body from two successive scrapes `interval`
/// seconds apart. `header` is the caller-supplied first line (address,
/// uptime, health summary).
pub fn render_top(header: &str, prev: &Scalars, cur: &Scalars, interval_secs: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");

    // Headline gauges.
    let live = cur.get("cgn_mappings_live").copied().unwrap_or(0);
    let wheel = cur.get("cgn_event_wheel_depth").copied().unwrap_or(0);
    let arena = cur.get("cgn_arena_chunks").copied().unwrap_or(0);
    let timers = cur.get("cgn_timers_pending").copied().unwrap_or(0);
    let fill = cur
        .get("cgn_allocator_fill_permille_worst")
        .copied()
        .unwrap_or(0);
    let created = rate(prev, cur, "cgn_mappings_created_total", interval_secs);
    let expired = rate(prev, cur, "cgn_mappings_expired_total", interval_secs);
    let _ = writeln!(
        out,
        "live {live}  admit/s {created:.0}  expire/s {expired:.0}  \
         fill {fill}‰  wheel {wheel}  timers {timers}  arena {arena} chunks"
    );

    // Per-shard flow rates.
    let shard_cur = labelled_series(cur, "cgn_shard_flows_total", "shard");
    if !shard_cur.is_empty() {
        let _ = writeln!(out, "\n shard     flows/s     total");
        for (shard, total) in &shard_cur {
            let name = format!("cgn_shard_flows_total{{shard=\"{shard}\"}}");
            let fps = rate(prev, cur, &name, interval_secs);
            let _ = writeln!(out, " {shard:>5}  {fps:>10.0}  {total:>8}");
        }
    }

    // Phase latency table + per-window activity sparklines.
    let phases: Vec<String> = labelled_series(cur, "cgn_phase_nanos_count", "phase")
        .into_iter()
        .map(|(phase, _)| phase)
        .collect();
    if !phases.is_empty() {
        let _ = writeln!(
            out,
            "\n phase             p50      p95      p99     ops/s  distribution"
        );
        for phase in phases {
            let scalar = |suffix: &str| format!("cgn_phase_nanos_{suffix}{{phase=\"{phase}\"}}");
            let p50 = cur.get(&scalar("p50")).copied().unwrap_or(0) as f64;
            let p95 = cur.get(&scalar("p95")).copied().unwrap_or(0) as f64;
            let p99 = cur.get(&scalar("p99")).copied().unwrap_or(0) as f64;
            let ops = rate(prev, cur, &scalar("count"), interval_secs);
            let buckets = bucket_counts(cur, "cgn_phase_nanos", "phase", &phase);
            let _ = writeln!(
                out,
                " {phase:<14} {:>8} {:>8} {:>8}  {ops:>8.0}  {}",
                fmt_ns(p50),
                fmt_ns(p95),
                fmt_ns(p99),
                sparkline(&buckets)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(pairs: &[(&str, u64)]) -> Scalars {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ");
        let s = sparkline(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().last(), Some('█'), "max value renders full block");
        assert_eq!(s.chars().next(), Some('▁'), "small nonzero still visible");
    }

    #[test]
    fn bucket_counts_undo_cumulation_in_edge_order() {
        let s = scalars(&[
            ("cgn_phase_nanos_bucket{phase=\"sweep\",le=\"1\"}", 2),
            ("cgn_phase_nanos_bucket{phase=\"sweep\",le=\"+Inf\"}", 10),
            ("cgn_phase_nanos_bucket{phase=\"sweep\",le=\"3\"}", 7),
            ("cgn_phase_nanos_bucket{phase=\"other\",le=\"1\"}", 99),
        ]);
        assert_eq!(
            bucket_counts(&s, "cgn_phase_nanos", "phase", "sweep"),
            vec![2, 5, 3]
        );
    }

    #[test]
    fn dashboard_renders_rates_shards_and_phases() {
        let prev = scalars(&[
            ("cgn_mappings_created_total", 1000),
            ("cgn_shard_flows_total{shard=\"0\"}", 500),
            ("cgn_shard_flows_total{shard=\"1\"}", 400),
            ("cgn_phase_nanos_count{phase=\"generate\"}", 50),
        ]);
        let cur = scalars(&[
            ("cgn_mappings_created_total", 2000),
            ("cgn_mappings_live", 777),
            ("cgn_event_wheel_depth", 42),
            ("cgn_arena_chunks", 20),
            ("cgn_shard_flows_total{shard=\"0\"}", 1500),
            ("cgn_shard_flows_total{shard=\"1\"}", 900),
            ("cgn_phase_nanos_count{phase=\"generate\"}", 150),
            ("cgn_phase_nanos_p50{phase=\"generate\"}", 1500),
            ("cgn_phase_nanos_p95{phase=\"generate\"}", 3000),
            ("cgn_phase_nanos_p99{phase=\"generate\"}", 8000),
            (
                "cgn_phase_nanos_bucket{phase=\"generate\",le=\"1023\"}",
                100,
            ),
            (
                "cgn_phase_nanos_bucket{phase=\"generate\",le=\"+Inf\"}",
                150,
            ),
        ]);
        let text = render_top("cgn top — 127.0.0.1:9", &prev, &cur, 2.0);
        assert!(text.starts_with("cgn top — 127.0.0.1:9"));
        assert!(text.contains("live 777"), "{text}");
        assert!(
            text.contains("admit/s 500"),
            "1000 created over 2 s: {text}"
        );
        assert!(text.contains("wheel 42"));
        assert!(text.contains("arena 20 chunks"));
        // Shard rows: (1500-500)/2 and (900-400)/2.
        assert!(text.contains("500"), "{text}");
        assert!(text.contains("250"), "{text}");
        assert!(text.contains("generate"), "{text}");
        assert!(text.contains("1.5µs"), "p50 renders in µs: {text}");
        assert!(
            text.lines()
                .any(|l| l.contains("generate") && l.contains('█')),
            "phase row carries a sparkline: {text}"
        );
    }

    #[test]
    fn dashboard_tolerates_missing_series() {
        let empty = Scalars::new();
        let text = render_top("hdr", &empty, &empty, 1.0);
        assert!(text.contains("live 0"));
        assert!(!text.contains("phase "), "no phase table without data");
    }
}
