//! Wall-clock phase profiler: where hot-path time goes.
//!
//! Phases are the fixed pipeline regions worth attributing wall-clock
//! to — the driver's per-millisecond passes and barrier duties, and
//! the burst pipeline's three passes inside the engine. Each phase
//! owns a log2 [`Histogram`] of nanoseconds; shards record into their
//! own profiler (no synchronization) and profiles merge in shard
//! order at render time, exactly like snapshots.
//!
//! Wall-clock durations are inherently nondeterministic, so a
//! [`PhaseProfiler`] must never feed anything a run digest covers:
//! callers render it into *published* expositions (`/metrics`, perf
//! artifacts) only. The deterministic windowed metrics path does not
//! see it.

use cgn_metrics::{Histogram, Snapshot, Value};
use serde::{Deserialize, Serialize};

/// One attributed pipeline region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Driver pass 1: draw flow events, build the packet batch.
    Generate,
    /// Driver pass 2: outbound bursts through the engine.
    Translate,
    /// Driver pass 3: apply verdicts in event order, schedule replies.
    Commit,
    /// Driver reply leg: inbound bursts through the engine.
    Inbound,
    /// Sweep barrier: expiry wheel advance + mapping teardown.
    Sweep,
    /// Sample barrier: demand sampling + snapshot merge.
    Sample,
    /// Burst pass 1: out-key packing + index hint resolution.
    BurstResolve,
    /// Burst pass 2: slot-sorted software prefetch sweep.
    BurstPrefetch,
    /// Burst pass 3: in-order translate.
    BurstTranslate,
}

impl Phase {
    /// Every phase, in render order.
    pub const ALL: [Phase; 9] = [
        Phase::Generate,
        Phase::Translate,
        Phase::Commit,
        Phase::Inbound,
        Phase::Sweep,
        Phase::Sample,
        Phase::BurstResolve,
        Phase::BurstPrefetch,
        Phase::BurstTranslate,
    ];

    /// The `phase=` label value.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generate => "generate",
            Phase::Translate => "translate",
            Phase::Commit => "commit",
            Phase::Inbound => "inbound",
            Phase::Sweep => "sweep",
            Phase::Sample => "sample",
            Phase::BurstResolve => "burst_resolve",
            Phase::BurstPrefetch => "burst_prefetch",
            Phase::BurstTranslate => "burst_translate",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Generate => 0,
            Phase::Translate => 1,
            Phase::Commit => 2,
            Phase::Inbound => 3,
            Phase::Sweep => 4,
            Phase::Sample => 5,
            Phase::BurstResolve => 6,
            Phase::BurstPrefetch => 7,
            Phase::BurstTranslate => 8,
        }
    }
}

/// The metric family phase histograms render under.
pub const PHASE_FAMILY: &str = "cgn_phase_nanos";

/// Per-shard wall-clock nanosecond histograms, one per [`Phase`].
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfiler {
    histograms: Vec<Histogram>,
}

impl PhaseProfiler {
    pub fn new() -> Self {
        PhaseProfiler {
            histograms: vec![Histogram::default(); Phase::ALL.len()],
        }
    }

    /// Record one timed region.
    #[inline]
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.histograms[phase.index()].record(nanos);
    }

    /// The histogram for one phase (empty profilers index safely).
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        static EMPTY: Histogram = Histogram {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        self.histograms.get(phase.index()).unwrap_or(&EMPTY)
    }

    /// Fold another profiler in (shard-order merge at render time).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        if self.histograms.len() < other.histograms.len() {
            self.histograms
                .resize(other.histograms.len(), Histogram::default());
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge(theirs);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.histograms.iter().all(Histogram::is_empty)
    }

    /// Push `cgn_phase_nanos{phase="…"}` histogram samples for every
    /// non-empty phase. Only for *published* snapshots — never the
    /// deterministic windowed series.
    pub fn render_into(&self, out: &mut Snapshot) {
        for phase in Phase::ALL {
            let h = self.histogram(phase);
            if h.is_empty() {
                continue;
            }
            out.push(
                format!("{PHASE_FAMILY}{{phase=\"{}\"}}", phase.name()),
                Value::Histogram(h.clone()),
            );
        }
    }

    /// `(phase, p50, p95, p99, count)` rows for every non-empty
    /// phase — the table the perf harness and the `top` TUI print.
    pub fn percentile_rows(&self) -> Vec<(Phase, f64, f64, f64, u64)> {
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                let h = self.histogram(p);
                if h.is_empty() {
                    return None;
                }
                let (p50, p95, p99) = h.percentiles();
                Some((p, p50, p95, p99, h.count))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_unique_names_and_indices() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn profiler_records_merges_and_renders() {
        let mut a = PhaseProfiler::new();
        a.record(Phase::Generate, 1000);
        a.record(Phase::Generate, 2000);
        a.record(Phase::Sweep, 50);
        let mut b = PhaseProfiler::new();
        b.record(Phase::Generate, 4000);
        a.merge(&b);
        assert_eq!(a.histogram(Phase::Generate).count, 3);
        assert_eq!(a.histogram(Phase::Generate).sum, 7000);
        let mut snap = Snapshot::default();
        a.render_into(&mut snap);
        snap.normalize();
        assert_eq!(snap.samples.len(), 2, "only non-empty phases render");
        let text = cgn_metrics::expo::render(&snap);
        assert!(text.contains("cgn_phase_nanos_count{phase=\"generate\"} 3"));
        assert!(text.contains("cgn_phase_nanos_count{phase=\"sweep\"} 1"));
        assert!(
            !text.contains("phase=\"inbound\""),
            "empty phases are omitted:\n{text}"
        );
        let rows = a.percentile_rows();
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0].0, Phase::Generate));
        assert!(rows[0].1 <= rows[0].2 && rows[0].2 <= rows[0].3);
    }

    #[test]
    fn empty_profiler_is_empty() {
        let p = PhaseProfiler::new();
        assert!(p.is_empty());
        let mut snap = Snapshot::default();
        p.render_into(&mut snap);
        assert!(snap.samples.is_empty());
        assert!(p.percentile_rows().is_empty());
    }
}
