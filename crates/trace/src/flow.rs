//! Sampled flow-lifecycle traces and the per-shard flight recorder.
//!
//! Tracing every flow at CGN scale is the log-volume problem §6.2
//! already quantified; the useful middle ground is NetFlow-style
//! deterministic sampling: pick one flow in N by hashing the flow key
//! (the same mix64 discipline as `cgn_telemetry::SampledSink`), and
//! record *everything* that happens to the sampled flows. Because the
//! decision is a pure function of the key, the sampled set — and the
//! recorded per-shard event streams, which are sim-time-stamped — are
//! bit-identical for any worker-thread count.
//!
//! Events land in a bounded per-shard ring (the **flight recorder**):
//! memory stays fixed no matter how long a soak runs, old events fall
//! off the back, and an eviction counter says how much history was
//! lost. The ring can be dumped at any barrier as Chrome-trace JSON
//! (see [`crate::chrome`]) — on demand, or automatically when a soak
//! leak gate trips.

use crate::mix64;
use crate::phase::{Phase, PhaseProfiler};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Default per-shard flight-recorder capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// What to trace. Carried on `DriverConfig`; the all-off default
/// keeps existing configs byte-identical in behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Sample one flow in N for lifecycle tracing (0 = off).
    pub sample_one_in: u32,
    /// Flight-recorder capacity per shard, in events.
    pub ring_capacity: usize,
    /// Record wall-clock phase histograms (annotation layer only).
    pub profile_phases: bool,
}

impl TraceConfig {
    /// Tracing fully disabled — the zero-cost configuration.
    pub fn off() -> Self {
        TraceConfig {
            sample_one_in: 0,
            ring_capacity: DEFAULT_RING_CAPACITY,
            profile_phases: false,
        }
    }

    /// Flow sampling at one-in-N plus phase profiling.
    pub fn sampled(one_in: u32) -> Self {
        TraceConfig {
            sample_one_in: one_in,
            ring_capacity: DEFAULT_RING_CAPACITY,
            profile_phases: true,
        }
    }

    /// Does this config require a tracer to be installed at all?
    pub fn enabled(&self) -> bool {
        self.sample_one_in > 0 || self.profile_phases
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// The identity of a translated flow: what the sampling hash covers.
/// Mirrors the fields of `nat_engine`'s `MappingEvent` (internal and
/// external endpoint plus protocol), packed the same way
/// `SampledSink::keep` packs them, so a trace sampler at `one_in = N`
/// selects exactly the flows a `SampledSink{one_in: N}` would log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub udp: bool,
    pub internal_ip: Ipv4Addr,
    pub internal_port: u16,
    pub external_ip: Ipv4Addr,
    pub external_port: u16,
}

impl FlowKey {
    /// Stable 64-bit flow id: the mix64 avalanche of the packed key.
    /// Doubles as the sampling hash.
    pub fn id(&self) -> u64 {
        let ips = (u32::from(self.internal_ip) as u64) << 32 | u32::from(self.external_ip) as u64;
        let rest =
            (self.internal_port as u64) << 32 | (self.external_port as u64) << 8 | self.udp as u64;
        mix64(ips ^ mix64(rest))
    }

    /// The deterministic one-in-N sampling decision (0 = never).
    pub fn sampled(&self, one_in: u32) -> bool {
        match one_in {
            0 => false,
            1 => true,
            n => self.id() % n as u64 == 0,
        }
    }
}

/// One span event in a sampled flow's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Mapping admitted (`create_mapping` succeeded).
    Admit,
    /// A port block was granted for this flow's subscriber.
    BlockAlloc,
    /// One outbound packet translated through the mapping.
    Translate,
    /// One inbound packet accepted through the mapping.
    TranslateIn,
    /// Mapping expiry pushed out by outbound traffic.
    Refresh,
    /// Mapping torn down (sweep or explicit removal).
    Expire,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::BlockAlloc => "block_alloc",
            SpanKind::Translate => "translate",
            SpanKind::TranslateIn => "translate_in",
            SpanKind::Refresh => "refresh",
            SpanKind::Expire => "expire",
        }
    }
}

/// One flight-recorder entry. Timestamps are sim-time milliseconds —
/// wall-clock never appears here, which is what keeps traced runs
/// digest-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Per-shard monotone sequence number (total order within a shard).
    pub seq: u64,
    /// Sim-time of the event, milliseconds.
    pub at_ms: u64,
    /// Shard that owns the mapping.
    pub shard: u32,
    /// The sampled flow.
    pub key: FlowKey,
    pub kind: SpanKind,
}

/// Bounded ring of [`TraceEvent`]s: push evicts the oldest once full.
#[derive(Debug, Clone, Default)]
struct FlightRecorder {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
    next_seq: u64,
}

/// Per-shard tracer: the object that lives behind the engine's
/// `Option`-slot. Owns the sampling decision, the live-slot table,
/// the flight recorder and (optionally) the wall-clock phase
/// profiler. All methods are plain owned-data mutations — one shard's
/// thread, no synchronization.
#[derive(Debug, Clone)]
pub struct ShardTracer {
    shard: u32,
    one_in: u32,
    profile_phases: bool,
    /// slot id → key of the *sampled* mapping currently in that slot.
    /// Entries are removed at expiry, so slot reuse cannot mislabel a
    /// later unsampled flow.
    live: HashMap<u32, FlowKey>,
    recorder: FlightRecorder,
    phases: PhaseProfiler,
    sampled_flows: u64,
}

impl ShardTracer {
    pub fn new(shard: u32, config: &TraceConfig) -> Self {
        ShardTracer {
            shard,
            one_in: config.sample_one_in,
            profile_phases: config.profile_phases,
            live: HashMap::new(),
            recorder: FlightRecorder {
                capacity: config.ring_capacity.max(1),
                ..FlightRecorder::default()
            },
            phases: PhaseProfiler::new(),
            sampled_flows: 0,
        }
    }

    fn push(&mut self, at_ms: u64, key: FlowKey, kind: SpanKind) {
        let r = &mut self.recorder;
        if r.ring.len() == r.capacity {
            r.ring.pop_front();
            r.evicted += 1;
        }
        r.ring.push_back(TraceEvent {
            seq: r.next_seq,
            at_ms,
            shard: self.shard,
            key,
            kind,
        });
        r.next_seq += 1;
    }

    /// A mapping was admitted into `slot`. Decides sampling; when the
    /// flow is sampled, records the admit span (and the block-grant
    /// span if the admission allocated a port block).
    pub fn on_admit(&mut self, slot: u32, key: FlowKey, at_ms: u64, block_granted: bool) {
        if !key.sampled(self.one_in) {
            return;
        }
        self.sampled_flows += 1;
        self.live.insert(slot, key);
        self.push(at_ms, key, SpanKind::Admit);
        if block_granted {
            self.push(at_ms, key, SpanKind::BlockAlloc);
        }
    }

    /// An outbound packet translated through `slot`; `refreshed` says
    /// whether it pushed the expiry out.
    #[inline]
    pub fn on_translate(&mut self, slot: u32, at_ms: u64, refreshed: bool) {
        if let Some(&key) = self.live.get(&slot) {
            self.push(at_ms, key, SpanKind::Translate);
            if refreshed {
                self.push(at_ms, key, SpanKind::Refresh);
            }
        }
    }

    /// An inbound packet accepted through `slot`.
    #[inline]
    pub fn on_translate_in(&mut self, slot: u32, at_ms: u64) {
        if let Some(&key) = self.live.get(&slot) {
            self.push(at_ms, key, SpanKind::TranslateIn);
        }
    }

    /// The mapping in `slot` was torn down.
    pub fn on_expire(&mut self, slot: u32, at_ms: u64) {
        if let Entry::Occupied(e) = self.live.entry(slot) {
            let key = *e.get();
            e.remove();
            self.push(at_ms, key, SpanKind::Expire);
        }
    }

    /// Record a wall-clock phase duration (no-op unless phase
    /// profiling is on, so fire sites need no extra guard).
    #[inline]
    pub fn record_phase(&mut self, phase: Phase, nanos: u64) {
        if self.profile_phases {
            self.phases.record(phase, nanos);
        }
    }

    /// Whether fire sites should bother reading the clock at all.
    #[inline]
    pub fn profiling_phases(&self) -> bool {
        self.profile_phases
    }

    /// Whether any flow is being sampled (fast pre-check for hot
    /// per-packet fire sites).
    #[inline]
    pub fn sampling_flows(&self) -> bool {
        self.one_in > 0
    }

    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The sampling rate this tracer was built with (one in N; 0 = off).
    pub fn sample_one_in(&self) -> u32 {
        self.one_in
    }

    pub fn phases(&self) -> &PhaseProfiler {
        &self.phases
    }

    /// Flight-recorder contents, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.recorder.ring.iter()
    }

    /// Events evicted from the ring since start.
    pub fn evicted(&self) -> u64 {
        self.recorder.evicted
    }

    /// Flows that passed the sampling decision since start.
    pub fn sampled_flows(&self) -> u64 {
        self.sampled_flows
    }

    /// Mappings currently live *and* sampled (tracked slots).
    pub fn live_sampled(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(host: u8, port: u16) -> FlowKey {
        FlowKey {
            udp: true,
            internal_ip: Ipv4Addr::new(10, 0, 0, host),
            internal_port: port,
            external_ip: Ipv4Addr::new(198, 51, 100, 1),
            external_port: 40000 + port,
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_key() {
        let k = key(1, 1234);
        assert!(!k.sampled(0), "one_in = 0 disables sampling");
        assert!(k.sampled(1), "one_in = 1 keeps everything");
        for one_in in [2u32, 10, 1000] {
            assert_eq!(k.sampled(one_in), k.id() % one_in as u64 == 0);
            assert_eq!(k.sampled(one_in), k.sampled(one_in));
        }
        // Roughly one in N flows selected over a key sweep.
        let kept = (0..10_000u16).filter(|&p| key(1, p).sampled(10)).count();
        assert!(
            (700..=1300).contains(&kept),
            "~1000 of 10000 expected at one-in-10, got {kept}"
        );
    }

    #[test]
    fn lifecycle_events_record_in_order_for_sampled_flows_only() {
        let mut t = ShardTracer::new(3, &TraceConfig::sampled(1));
        let k = key(1, 80);
        t.on_admit(7, k, 100, true);
        t.on_translate(7, 150, false);
        t.on_translate(7, 200, true);
        t.on_translate_in(7, 220);
        t.on_expire(7, 400);
        // Slot reuse by an unsampled flow after expiry records nothing.
        t.on_translate(7, 500, true);
        let kinds: Vec<SpanKind> = t.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Admit,
                SpanKind::BlockAlloc,
                SpanKind::Translate,
                SpanKind::Translate,
                SpanKind::Refresh,
                SpanKind::TranslateIn,
                SpanKind::Expire,
            ]
        );
        assert!(t.events().all(|e| e.shard == 3 && e.key == k));
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq is monotone");
        assert_eq!(t.sampled_flows(), 1);
        assert_eq!(t.live_sampled(), 0, "expiry untracks the slot");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let cfg = TraceConfig {
            sample_one_in: 1,
            ring_capacity: 4,
            profile_phases: false,
        };
        let mut t = ShardTracer::new(0, &cfg);
        t.on_admit(1, key(1, 80), 0, false);
        for ms in 1..=10u64 {
            t.on_translate(1, ms, false);
        }
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.evicted(), 7, "11 events through a 4-slot ring");
        let first = t.events().next().expect("non-empty").seq;
        assert_eq!(first, 7, "oldest retained event is the 8th pushed");
    }

    #[test]
    fn unsampled_flows_cost_no_ring_space() {
        // one_in = 0: nothing records even through the full lifecycle.
        let mut t = ShardTracer::new(0, &TraceConfig::off());
        t.on_admit(1, key(1, 80), 0, true);
        t.on_translate(1, 1, true);
        t.on_expire(1, 2);
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.sampled_flows(), 0);
    }

    #[test]
    fn phase_recording_respects_the_profile_flag() {
        let mut off = ShardTracer::new(0, &TraceConfig::sampled(1));
        let mut t = off.clone();
        off.profile_phases = false;
        off.record_phase(Phase::Generate, 99);
        assert!(off.phases().is_empty());
        t.record_phase(Phase::Generate, 99);
        assert_eq!(t.phases().histogram(Phase::Generate).count, 1);
    }
}
