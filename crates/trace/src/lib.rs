//! # cgn-trace — flow-lifecycle tracing and hot-path profiling
//!
//! The metrics stack (cgn-metrics) answers *how much*: flows/s,
//! allocator fill, sweep cost. This crate answers the two questions
//! metrics cannot: *where does wall-clock time go* inside the burst
//! pipeline and the driver's barriers, and *what did one particular
//! flow experience* from admit to expiry. Three pieces:
//!
//! * [`phase`] — a wall-clock **phase profiler**: log2 [`Histogram`]s
//!   of nanoseconds per pipeline phase (the driver's
//!   generate/translate/commit/inbound/sweep/sample regions and the
//!   burst pipeline's resolve/prefetch/translate passes), rendered as
//!   `cgn_phase_nanos{phase="…"}` families. Wall-clock is strictly an
//!   *annotation* layer: phase histograms are merged into published
//!   expositions and perf artifacts, never into the deterministic
//!   windowed snapshots a run digest covers.
//!
//! * [`flow`] — **sampled flow-lifecycle traces**: a deterministic
//!   one-in-N flow-key sampler (the same mix64 discipline as
//!   `cgn_telemetry::SampledSink`, so the sampled set is identical
//!   for any thread count) feeding a per-shard bounded-ring **flight
//!   recorder** of sim-time-stamped span events
//!   (admit → block alloc → each translate → refresh → expire).
//!
//! * [`chrome`] — a Chrome-trace / Perfetto JSON dump of the merged
//!   flight-recorder contents, and [`top`] — plain-ANSI rendering
//!   helpers for the `repro -- top` live dashboard.
//!
//! The engine-facing discipline is the same `Option`-slot rule as
//! `EventSink` and `EngineMetrics`: a [`ShardTracer`] lives behind an
//! `Option<Box<…>>` on each `Nat`, so a disabled tracer costs one
//! untaken branch per fire site (CI gates the disabled cost at ≤ 2%).
//!
//! [`Histogram`]: cgn_metrics::Histogram

pub mod chrome;
pub mod flow;
pub mod phase;
pub mod top;

pub use chrome::{chrome_trace_json, TraceDump, CHROME_SCHEMA};
pub use flow::{FlowKey, ShardTracer, SpanKind, TraceConfig, TraceEvent};
pub use phase::{Phase, PhaseProfiler};

/// SplitMix64 finalizer — bit-identical to `nat_engine::store::mix64`
/// (duplicated here because the dependency points the other way:
/// `nat-engine` consumes this crate). The cross-crate agreement is
/// pinned by a test in `nat-engine`.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
