//! Chrome-trace / Perfetto JSON dumps of the flight recorder.
//!
//! The JSON object format (`{"traceEvents": […]}`) loads directly in
//! `chrome://tracing` and Perfetto. We emit one process per shard,
//! one thread per sampled flow, a `ph:"X"` complete event for each
//! flow whose admit *and* expire are both still in the ring, and a
//! `ph:"i"` instant per recorded span. Timestamps are sim-time
//! microseconds, so a dump is a deterministic function of the run —
//! wall-clock never appears.
//!
//! The writer is hand-rolled (every field is a number or a string we
//! construct, so no escaping subtleties); tests parse the output with
//! `serde_json` to pin the structure.

use crate::flow::{SpanKind, TraceEvent};
use std::fmt::Write;

/// Schema tag embedded in the dump's `otherData`.
pub const CHROME_SCHEMA: &str = "cgn-trace-chrome/1";

/// A merged, dump-ready view of every shard's flight recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Events from all shards, ordered by `(shard, seq)`.
    pub events: Vec<TraceEvent>,
    /// Total ring evictions across shards (lost history).
    pub evicted: u64,
    /// Total flows that passed the sampling decision.
    pub sampled_flows: u64,
    /// The sampling rate the run used (one in N; 0 = off).
    pub sample_one_in: u32,
}

impl TraceDump {
    /// Build from per-shard event streams (any order; re-sorted).
    pub fn from_shards<I>(shards: I, sample_one_in: u32) -> TraceDump
    where
        I: IntoIterator<Item = (Vec<TraceEvent>, u64, u64)>,
    {
        let mut dump = TraceDump {
            sample_one_in,
            ..TraceDump::default()
        };
        for (events, evicted, sampled) in shards {
            dump.events.extend(events);
            dump.evicted += evicted;
            dump.sampled_flows += sampled;
        }
        dump.events.sort_by_key(|e| (e.shard, e.seq));
        dump
    }
}

/// Truncated flow id for the `tid` field (Chrome wants a plain JSON
/// number; 2^53 precision makes the full 64-bit id unsafe there — the
/// full id travels in `args.flow` as hex).
fn tid(id: u64) -> u32 {
    (id ^ (id >> 32)) as u32
}

/// Render a [`TraceDump`] as Chrome-trace JSON.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(128 + dump.events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"schema\":\"{CHROME_SCHEMA}\",\"evicted\":{},\"sampled_flows\":{},\"sample_one_in\":{}",
        dump.evicted, dump.sampled_flows, dump.sample_one_in
    );
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    let mut comma = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Complete ("X") events: one bar per flow whose admit and expire
    // both survived in the ring.
    let mut open: Vec<(u64, &TraceEvent)> = Vec::new();
    for e in &dump.events {
        match e.kind {
            SpanKind::Admit => open.push((e.key.id(), e)),
            SpanKind::Expire => {
                let id = e.key.id();
                if let Some(pos) = open
                    .iter()
                    .rposition(|(i, a)| *i == id && a.shard == e.shard)
                {
                    let (_, admit) = open.swap_remove(pos);
                    comma(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"flow\",\"cat\":\"lifecycle\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\
                         \"flow\":\"{:016x}\",\"proto\":\"{}\",\
                         \"internal\":\"{}:{}\",\"external\":\"{}:{}\"}}}}",
                        admit.at_ms * 1000,
                        (e.at_ms - admit.at_ms) * 1000,
                        e.shard,
                        tid(id),
                        id,
                        if e.key.udp { "udp" } else { "tcp" },
                        e.key.internal_ip,
                        e.key.internal_port,
                        e.key.external_ip,
                        e.key.external_port,
                    );
                }
            }
            _ => {}
        }
    }

    // Instant ("i") events: every recorded span, thread-scoped.
    for e in &dump.events {
        comma(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{},\"tid\":{}}}",
            e.kind.name(),
            e.at_ms * 1000,
            e.shard,
            tid(e.key.id()),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowKey, ShardTracer, TraceConfig};
    use std::net::Ipv4Addr;

    fn traced_shard(shard: u32) -> (Vec<TraceEvent>, u64, u64) {
        let mut t = ShardTracer::new(shard, &TraceConfig::sampled(1));
        let k = FlowKey {
            udp: shard % 2 == 0,
            internal_ip: Ipv4Addr::new(10, 0, shard as u8, 1),
            internal_port: 5000,
            external_ip: Ipv4Addr::new(198, 51, 100, 1),
            external_port: 40000,
        };
        t.on_admit(1, k, 10 + shard as u64, true);
        t.on_translate(1, 20, true);
        t.on_expire(1, 250);
        (
            t.events().copied().collect(),
            t.evicted(),
            t.sampled_flows(),
        )
    }

    #[test]
    fn dump_merges_shards_in_deterministic_order() {
        let dump = TraceDump::from_shards([traced_shard(1), traced_shard(0)], 1);
        assert_eq!(dump.sampled_flows, 2);
        let shards: Vec<u32> = dump.events.iter().map(|e| e.shard).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "events ordered by shard then seq");
    }

    use serde_json::Value;

    fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        match v {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(v: &Value) -> Option<u64> {
        match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    fn as_str(v: &Value) -> Option<&str> {
        match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    #[test]
    fn chrome_json_is_structurally_valid() {
        let dump = TraceDump::from_shards([traced_shard(0), traced_shard(1)], 10);
        let json = chrome_trace_json(&dump);
        let v: Value = serde_json::from_str(&json).expect("dump parses as JSON");
        let events = match field(&v, "traceEvents") {
            Some(Value::Seq(items)) => items,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // 2 shards × (1 X event + 5 instants: admit/block/translate/refresh/expire).
        assert_eq!(events.len(), 2 * 6);
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| field(e, "ph").and_then(as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2, "one lifetime bar per closed flow");
        for e in &complete {
            let pid = field(e, "pid").and_then(as_u64).expect("pid");
            assert_eq!(
                field(e, "dur").and_then(as_u64),
                Some((250 - 10 - pid) * 1000),
                "durations are sim-time microseconds"
            );
            assert!(
                field(e, "args")
                    .and_then(|a| field(a, "internal"))
                    .is_some(),
                "flow bars carry endpoint args"
            );
        }
        for e in events {
            for name in ["name", "ph", "ts", "pid", "tid"] {
                assert!(field(e, name).is_some(), "every event has {name}: {e:?}");
            }
        }
        let schema = field(&v, "otherData").and_then(|d| field(d, "schema"));
        assert_eq!(schema.and_then(as_str), Some(CHROME_SCHEMA));
    }

    #[test]
    fn empty_dump_still_parses() {
        let json = chrome_trace_json(&TraceDump::default());
        let v: Value = serde_json::from_str(&json).expect("parses");
        match field(&v, "traceEvents") {
            Some(Value::Seq(items)) => assert!(items.is_empty()),
            other => panic!("traceEvents must be an array, got {other:?}"),
        }
    }
}
