//! IPv4 CIDR prefixes.
//!
//! A [`Prefix`] is the unit of address allocation throughout the study: ASes
//! announce prefixes into the [routing table](crate::routing::RoutingTable),
//! CGNs draw their internal realms from reserved prefixes, and the Netalyzr
//! analysis buckets CPE addresses by `/24`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix, e.g. `100.64.0.0/10`.
///
/// Invariant: the host bits of `base` are always zero (enforced by all
/// constructors), so two prefixes are equal iff they denote the same range.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

/// Error produced when parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Create a prefix; host bits of `addr` below `len` are masked off.
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let raw = u32::from(addr);
        Prefix {
            base: raw & Self::mask_bits(len),
            len,
        }
    }

    fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// The netmask as an address, e.g. `255.255.255.0` for a /24.
    pub fn netmask(&self) -> Ipv4Addr {
        Ipv4Addr::from(Self::mask_bits(self.len))
    }

    /// Number of addresses covered. A /0 covers 2^32 which does not fit in
    /// `u32`, hence `u64`.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.len) == self.base
    }

    /// Whether `other` is entirely inside this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.network())
    }

    /// The `i`-th address of the prefix (0 = network address).
    ///
    /// Panics if `i` is out of range.
    pub fn addr(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "host index {i} out of prefix {self}");
        Ipv4Addr::from(self.base + i as u32)
    }

    /// Iterate over all addresses in the prefix (careful with short prefixes).
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.addr(i))
    }

    /// Split this prefix into consecutive sub-prefixes of length `sublen`.
    ///
    /// Used by the topology generator to carve per-AS pools out of larger
    /// allocations. Panics if `sublen < self.len()`.
    pub fn subnets(&self, sublen: u8) -> impl Iterator<Item = Prefix> + '_ {
        assert!(sublen >= self.len, "cannot split {self} into /{sublen}");
        assert!(sublen <= 32);
        let count = 1u64 << (sublen - self.len) as u32;
        let step = 1u64 << (32 - sublen as u32);
        (0..count).map(move |i| Prefix {
            base: self.base + (i * step) as u32,
            len: sublen,
        })
    }

    /// The /24 containing `addr` — the granularity at which the paper
    /// measures CPE-address diversity (Fig. 5).
    pub fn slash24_of(addr: Ipv4Addr) -> Prefix {
        Prefix::new(addr, 24)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;
    use proptest::prelude::*;

    #[test]
    fn masks_host_bits() {
        let p = Prefix::new(ip(192, 168, 1, 77), 24);
        assert_eq!(p.network(), ip(192, 168, 1, 0));
        assert_eq!(p.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn contains_boundaries() {
        let p: Prefix = "100.64.0.0/10".parse().unwrap();
        assert!(p.contains(ip(100, 64, 0, 0)));
        assert!(p.contains(ip(100, 127, 255, 255)));
        assert!(!p.contains(ip(100, 128, 0, 0)));
        assert!(!p.contains(ip(100, 63, 255, 255)));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let p = Prefix::new(ip(0, 0, 0, 0), 0);
        assert!(p.contains(ip(255, 255, 255, 255)));
        assert!(p.contains(ip(0, 0, 0, 0)));
        assert_eq!(p.size(), 1u64 << 32);
    }

    #[test]
    fn host_prefix() {
        let p = Prefix::new(ip(8, 8, 8, 8), 32);
        assert_eq!(p.size(), 1);
        assert!(p.contains(ip(8, 8, 8, 8)));
        assert!(!p.contains(ip(8, 8, 8, 9)));
    }

    #[test]
    fn covers_nesting() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.42.0.0/16".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn addr_indexing() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(p.addr(0), ip(192, 0, 2, 0));
        assert_eq!(p.addr(255), ip(192, 0, 2, 255));
    }

    #[test]
    #[should_panic(expected = "out of prefix")]
    fn addr_out_of_range_panics() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let _ = p.addr(256);
    }

    #[test]
    fn subnets_partition() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let subs: Vec<Prefix> = p.subnets(10).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/10");
        assert_eq!(subs[3].to_string(), "10.192.0.0/10");
        // Subnets tile the parent without overlap.
        for w in subs.windows(2) {
            assert!(!w[0].contains(w[1].network()));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn netmask_values() {
        assert_eq!(
            "0.0.0.0/0".parse::<Prefix>().unwrap().netmask(),
            ip(0, 0, 0, 0)
        );
        assert_eq!(
            "10.0.0.0/8".parse::<Prefix>().unwrap().netmask(),
            ip(255, 0, 0, 0)
        );
        assert_eq!(
            "1.2.3.4/32".parse::<Prefix>().unwrap().netmask(),
            ip(255, 255, 255, 255)
        );
    }

    #[test]
    fn slash24_bucketing() {
        assert_eq!(
            Prefix::slash24_of(ip(100, 64, 3, 200)).to_string(),
            "100.64.3.0/24"
        );
    }

    proptest! {
        /// Round trip: display then parse yields the same prefix.
        #[test]
        fn prop_display_parse_roundtrip(a in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new(Ipv4Addr::from(a), len);
            let back: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        /// Every address produced by `iter` is contained in the prefix.
        #[test]
        fn prop_iter_contained(a in any::<u32>(), len in 20u8..=32) {
            let p = Prefix::new(Ipv4Addr::from(a), len);
            for addr in p.iter().take(64) {
                prop_assert!(p.contains(addr));
            }
        }

        /// Containment agrees with the numeric range check.
        #[test]
        fn prop_contains_matches_range(a in any::<u32>(), len in 0u8..=32, x in any::<u32>()) {
            let p = Prefix::new(Ipv4Addr::from(a), len);
            let lo = u32::from(p.network()) as u64;
            let hi = lo + p.size() - 1;
            let inside = (x as u64) >= lo && (x as u64) <= hi;
            prop_assert_eq!(p.contains(Ipv4Addr::from(x)), inside);
        }

        /// Subnets of a prefix are disjoint, covered, and tile the full size.
        #[test]
        fn prop_subnets_tile(a in any::<u32>(), len in 4u8..=16) {
            let p = Prefix::new(Ipv4Addr::from(a), len);
            let sublen = len + 4;
            let subs: Vec<Prefix> = p.subnets(sublen).collect();
            prop_assert_eq!(subs.len(), 16);
            let total: u64 = subs.iter().map(|s| s.size()).sum();
            prop_assert_eq!(total, p.size());
            for s in &subs {
                prop_assert!(p.covers(s));
            }
        }
    }
}
