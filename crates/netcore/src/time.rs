//! Virtual time for the deterministic simulation.
//!
//! All components of the study share one virtual clock. Time is measured in
//! milliseconds since the start of the simulation. Using virtual time (rather
//! than `std::time::Instant`) makes the TTL-driven NAT-enumeration and
//! mapping-timeout experiments exactly reproducible: a NAT mapping with a
//! 65 s timeout expires after *exactly* 65 000 virtual milliseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Raw milliseconds since epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, since measurement code frequently computes "age" values
    /// for events that may share a timestamp.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    pub const fn as_millis(self) -> u64 {
        self.0
    }

    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Scalar multiply, used when computing keepalive schedules.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_millis(), 3000);
        assert_eq!(t.as_secs(), 3);
        let d = SimDuration::from_millis(1500);
        assert_eq!(d.as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!((t - SimTime::from_millis(100)).as_millis(), 50);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(2);
        assert_eq!(t2.as_secs(), 2);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(late.saturating_since(early).as_millis(), 10);
        assert_eq!(early.saturating_since(late).as_millis(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn duration_scalar_mul() {
        assert_eq!(SimDuration::from_secs(10).mul(3).as_secs(), 30);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(5) < SimTime::from_millis(6));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(65_250).to_string(), "t+65.250s");
        assert_eq!(SimDuration::from_millis(999).to_string(), "0.999s");
    }
}
