//! Autonomous systems, RIR regions and AS populations.
//!
//! The paper reports results against three AS populations (Table 5): all
//! routed ASes, "eyeball" ASes from the Spamhaus PBL, and eyeball ASes from
//! the APNIC Labs population list. Regional breakdowns (Fig. 6) use the five
//! Regional Internet Registries.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The five Regional Internet Registries (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rir {
    Afrinic,
    Apnic,
    Arin,
    Lacnic,
    Ripe,
}

impl Rir {
    /// All RIRs in the paper's alphabetical plotting order.
    pub const ALL: [Rir; 5] = [Rir::Afrinic, Rir::Apnic, Rir::Arin, Rir::Lacnic, Rir::Ripe];

    pub fn name(self) -> &'static str {
        match self {
            Rir::Afrinic => "AFRINIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::Lacnic => "LACNIC",
            Rir::Ripe => "RIPE",
        }
    }

    /// Whether the registry had exhausted its freely-allocatable IPv4 pool at
    /// the time of the study (all but AFRINIC). Drives the scarcity model in
    /// the topology generator: exhausted regions deploy more CGN.
    pub fn ipv4_exhausted(self) -> bool {
        !matches!(self, Rir::Afrinic)
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Broad functional classification of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Residential/fixed-line eyeball network (connects end users).
    EyeballResidential,
    /// Cellular eyeball network.
    EyeballCellular,
    /// Transit/backbone network — no end users of its own.
    Transit,
    /// Content/hosting network (where measurement servers live).
    Content,
}

impl AsKind {
    /// Eyeball ASes are the denominator of the paper's headline rates.
    pub fn is_eyeball(self) -> bool {
        matches!(self, AsKind::EyeballResidential | AsKind::EyeballCellular)
    }

    pub fn is_cellular(self) -> bool {
        matches!(self, AsKind::EyeballCellular)
    }
}

/// Static metadata about one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    pub id: AsId,
    pub name: String,
    pub rir: Rir,
    pub kind: AsKind,
    /// Rough subscriber count; drives sampling weight for eyeball lists.
    pub subscribers: u32,
}

/// Registry of every AS in the simulated Internet.
///
/// Deterministically ordered (BTreeMap) so iteration order — and hence every
/// downstream sample — is stable across runs.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AsRegistry {
    entries: BTreeMap<AsId, AsInfo>,
}

impl AsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an AS. Returns the previous entry if the id was already
    /// registered (callers treat that as a generator bug).
    pub fn insert(&mut self, info: AsInfo) -> Option<AsInfo> {
        self.entries.insert(info.id, info)
    }

    pub fn get(&self, id: AsId) -> Option<&AsInfo> {
        self.entries.get(&id)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.entries.values()
    }

    /// All eyeball ASes (PBL/APNIC-style population lists are sampled from
    /// these in the topology crate).
    pub fn eyeballs(&self) -> impl Iterator<Item = &AsInfo> {
        self.iter().filter(|a| a.kind.is_eyeball())
    }

    pub fn cellular(&self) -> impl Iterator<Item = &AsInfo> {
        self.iter().filter(|a| a.kind.is_cellular())
    }

    /// Count ASes per RIR, restricted by a predicate — the workhorse of the
    /// Fig. 6 per-region breakdowns.
    pub fn count_per_rir<F: Fn(&AsInfo) -> bool>(&self, pred: F) -> BTreeMap<Rir, usize> {
        let mut out: BTreeMap<Rir, usize> = Rir::ALL.iter().map(|r| (*r, 0)).collect();
        for a in self.iter().filter(|a| pred(a)) {
            *out.get_mut(&a.rir).expect("all RIRs pre-seeded") += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u32, rir: Rir, kind: AsKind) -> AsInfo {
        AsInfo {
            id: AsId(id),
            name: format!("AS{id}"),
            rir,
            kind,
            subscribers: 1000,
        }
    }

    #[test]
    fn registry_insert_get() {
        let mut reg = AsRegistry::new();
        assert!(reg
            .insert(info(7922, Rir::Arin, AsKind::EyeballResidential))
            .is_none());
        assert_eq!(reg.get(AsId(7922)).unwrap().rir, Rir::Arin);
        assert!(reg.get(AsId(1)).is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_insert_returns_previous() {
        let mut reg = AsRegistry::new();
        reg.insert(info(1, Rir::Ripe, AsKind::Transit));
        let prev = reg.insert(info(1, Rir::Ripe, AsKind::Content));
        assert!(prev.is_some());
        assert_eq!(reg.get(AsId(1)).unwrap().kind, AsKind::Content);
    }

    #[test]
    fn eyeball_filtering() {
        let mut reg = AsRegistry::new();
        reg.insert(info(1, Rir::Ripe, AsKind::EyeballResidential));
        reg.insert(info(2, Rir::Ripe, AsKind::EyeballCellular));
        reg.insert(info(3, Rir::Ripe, AsKind::Transit));
        reg.insert(info(4, Rir::Ripe, AsKind::Content));
        assert_eq!(reg.eyeballs().count(), 2);
        assert_eq!(reg.cellular().count(), 1);
    }

    #[test]
    fn per_rir_counts_include_empty_regions() {
        let mut reg = AsRegistry::new();
        reg.insert(info(1, Rir::Apnic, AsKind::EyeballResidential));
        reg.insert(info(2, Rir::Apnic, AsKind::EyeballResidential));
        reg.insert(info(3, Rir::Lacnic, AsKind::EyeballCellular));
        let counts = reg.count_per_rir(|a| a.kind.is_eyeball());
        assert_eq!(counts[&Rir::Apnic], 2);
        assert_eq!(counts[&Rir::Lacnic], 1);
        assert_eq!(counts[&Rir::Afrinic], 0);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn iteration_is_ordered_by_as_id() {
        let mut reg = AsRegistry::new();
        reg.insert(info(30, Rir::Ripe, AsKind::Transit));
        reg.insert(info(10, Rir::Ripe, AsKind::Transit));
        reg.insert(info(20, Rir::Ripe, AsKind::Transit));
        let ids: Vec<u32> = reg.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn rir_exhaustion_model() {
        assert!(!Rir::Afrinic.ipv4_exhausted());
        assert!(Rir::Apnic.ipv4_exhausted());
        assert!(Rir::Ripe.ipv4_exhausted());
    }

    #[test]
    fn display_impls() {
        assert_eq!(AsId(12874).to_string(), "AS12874");
        assert_eq!(Rir::Apnic.to_string(), "APNIC");
    }
}
