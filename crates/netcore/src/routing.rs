//! The simulated global routing table.
//!
//! The paper classifies observed addresses against the BGP routing table:
//! an address may be *reserved* (Table 1), *unrouted* (nominally public but
//! absent from the table), or *routed* (present). Routed addresses are then
//! compared to the public address seen by the server ("routed match" /
//! "routed mismatch", Table 4).
//!
//! The implementation is a flat longest-prefix-match table over sorted
//! `(prefix, origin)` entries: simple, deterministic and fast enough for the
//! table sizes of the study (tens of thousands of prefixes). Lookups walk
//! candidate lengths from most- to least-specific using a per-length index,
//! the classic "binary search on prefix lengths" simplification.

use crate::addr::Prefix;
use crate::asn::AsId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// One announcement in the routing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    pub prefix: Prefix,
    /// Origin AS of the announcement.
    pub origin: AsId,
}

/// Longest-prefix-match routing table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct RoutingTable {
    /// Exact-prefix entries per length; `HashMap<masked base, origin>`.
    /// Serialized as a sorted map for determinism.
    #[serde(with = "per_len_serde")]
    per_len: Vec<HashMap<u32, AsId>>,
    len_count: usize,
}

mod per_len_serde {
    use super::*;
    use serde::ser::SerializeSeq;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[HashMap<u32, AsId>], s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(v.len()))?;
        for m in v {
            let ordered: BTreeMap<u32, AsId> = m.iter().map(|(k, v)| (*k, *v)).collect();
            seq.serialize_element(&ordered)?;
        }
        seq.end()
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<Vec<HashMap<u32, AsId>>, D::Error> {
        let v: Vec<BTreeMap<u32, AsId>> = serde::Deserialize::deserialize(d)?;
        Ok(v.into_iter().map(|m| m.into_iter().collect()).collect())
    }
}

impl RoutingTable {
    pub fn new() -> Self {
        RoutingTable {
            per_len: (0..=32).map(|_| HashMap::new()).collect(),
            len_count: 0,
        }
    }

    /// Announce a prefix. Later announcements of the identical prefix
    /// overwrite earlier ones (as a route replacement would).
    pub fn announce(&mut self, prefix: Prefix, origin: AsId) {
        if self.per_len.is_empty() {
            *self = RoutingTable::new();
        }
        let m = &mut self.per_len[prefix.len() as usize];
        if m.insert(u32::from(prefix.network()), origin).is_none() {
            self.len_count += 1;
        }
    }

    /// Withdraw a prefix; returns true if it was present.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        if self.per_len.is_empty() {
            return false;
        }
        let removed = self.per_len[prefix.len() as usize]
            .remove(&u32::from(prefix.network()))
            .is_some();
        if removed {
            self.len_count -= 1;
        }
        removed
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<RouteEntry> {
        if self.per_len.is_empty() {
            return None;
        }
        let raw = u32::from(addr);
        for len in (0..=32u8).rev() {
            let m = &self.per_len[len as usize];
            if m.is_empty() {
                continue;
            }
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            };
            if let Some(origin) = m.get(&(raw & mask)) {
                return Some(RouteEntry {
                    prefix: Prefix::new(addr, len),
                    origin: *origin,
                });
            }
        }
        None
    }

    /// Whether the address appears in the routing table at all.
    pub fn is_routed(&self, addr: Ipv4Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// The origin AS for an address, if routed.
    pub fn origin_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.lookup(addr).map(|e| e.origin)
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.len_count
    }

    pub fn is_empty(&self) -> bool {
        self.len_count == 0
    }

    /// Iterate all entries in (length, base) order — deterministic.
    pub fn entries(&self) -> Vec<RouteEntry> {
        let mut out = Vec::with_capacity(self.len_count);
        for (len, m) in self.per_len.iter().enumerate() {
            let mut keys: Vec<(&u32, &AsId)> = m.iter().collect();
            keys.sort_by_key(|(k, _)| **k);
            for (base, origin) in keys {
                out.push(RouteEntry {
                    prefix: Prefix::new(Ipv4Addr::from(*base), len as u8),
                    origin: *origin,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;
    use proptest::prelude::*;

    fn table() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce("8.0.0.0/8".parse().unwrap(), AsId(3356));
        t.announce("8.8.8.0/24".parse().unwrap(), AsId(15169));
        t.announce("100.0.0.0/8".parse().unwrap(), AsId(100));
        t
    }

    #[test]
    fn longest_prefix_wins() {
        let t = table();
        assert_eq!(t.origin_of(ip(8, 8, 8, 8)), Some(AsId(15169)));
        assert_eq!(t.origin_of(ip(8, 8, 9, 1)), Some(AsId(3356)));
        assert_eq!(t.origin_of(ip(9, 0, 0, 1)), None);
    }

    #[test]
    fn lookup_reports_matching_prefix() {
        let t = table();
        let e = t.lookup(ip(8, 8, 8, 200)).unwrap();
        assert_eq!(e.prefix.to_string(), "8.8.8.0/24");
        let e = t.lookup(ip(8, 1, 2, 3)).unwrap();
        assert_eq!(e.prefix.to_string(), "8.0.0.0/8");
    }

    #[test]
    fn reserved_space_unrouted_unless_announced() {
        // "Technically some reserved addresses are in fact routable" — the
        // table does not special-case them; whoever builds the table decides.
        let mut t = table();
        assert!(!t.is_routed(ip(10, 1, 2, 3)));
        t.announce("10.0.0.0/8".parse().unwrap(), AsId(666));
        assert!(t.is_routed(ip(10, 1, 2, 3)));
    }

    #[test]
    fn withdraw_removes() {
        let mut t = table();
        assert!(t.withdraw("8.8.8.0/24".parse().unwrap()));
        assert_eq!(t.origin_of(ip(8, 8, 8, 8)), Some(AsId(3356)));
        assert!(!t.withdraw("8.8.8.0/24".parse().unwrap()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replacement_keeps_count() {
        let mut t = RoutingTable::new();
        t.announce("1.0.0.0/8".parse().unwrap(), AsId(1));
        t.announce("1.0.0.0/8".parse().unwrap(), AsId(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.origin_of(ip(1, 2, 3, 4)), Some(AsId(2)));
    }

    #[test]
    fn default_route() {
        let mut t = RoutingTable::new();
        t.announce("0.0.0.0/0".parse().unwrap(), AsId(42));
        assert_eq!(t.origin_of(ip(203, 0, 113, 7)), Some(AsId(42)));
    }

    #[test]
    fn entries_sorted_and_complete() {
        let t = table();
        let es = t.entries();
        assert_eq!(es.len(), 3);
        // Sorted by (len, base): /8s first.
        assert_eq!(es[0].prefix.len(), 8);
        assert_eq!(es[2].prefix.len(), 24);
    }

    #[test]
    fn empty_default_table_lookups() {
        let t = RoutingTable::default();
        assert!(t.lookup(ip(1, 1, 1, 1)).is_none());
        assert!(t.is_empty());
    }

    proptest! {
        /// Any address inside an announced prefix (and no more-specific
        /// announcement) resolves to that origin.
        #[test]
        fn prop_lookup_within_prefix(base in any::<u32>(), len in 8u8..=24, host in any::<u32>()) {
            let p = Prefix::new(Ipv4Addr::from(base), len);
            let mut t = RoutingTable::new();
            t.announce(p, AsId(7));
            let addr = Ipv4Addr::from(u32::from(p.network()) | (host & !u32::from(p.netmask())));
            prop_assert_eq!(t.origin_of(addr), Some(AsId(7)));
        }

        /// announce + withdraw is the identity on lookups.
        #[test]
        fn prop_withdraw_restores(base in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
            let p = Prefix::new(Ipv4Addr::from(base), len);
            let mut t = table();
            let before = t.lookup(Ipv4Addr::from(probe));
            t.announce(p, AsId(999));
            t.withdraw(p);
            prop_assert_eq!(t.lookup(Ipv4Addr::from(probe)), before);
        }
    }
}
