//! The simulated IPv4 packet.
//!
//! The simulator forwards [`Packet`]s hop by hop; NATs rewrite source or
//! destination endpoints; routers decrement the TTL and emit ICMP
//! time-exceeded errors — the mechanism the paper's TTL-driven NAT
//! enumeration test (Fig. 10) is built on.
//!
//! Application payloads are opaque byte strings (`Vec<u8>`); the DHT and
//! Netalyzr crates serialize real wire formats (bencode/KRPC, STUN) into
//! them.

use crate::endpoint::{Endpoint, Protocol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default initial TTL used by simulated hosts (Linux-like).
pub const DEFAULT_TTL: u8 = 64;

/// TCP header flags we model (enough for NAT state tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const FIN: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: true,
        rst: false,
    };
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        f.write_str(&parts.join("|"))
    }
}

/// ICMP messages the simulator generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IcmpKind {
    /// TTL expired in transit (type 11). Carries no quoted packet here; the
    /// simulator delivers it to the original sender directly.
    TtlExceeded,
    /// Destination unreachable (type 3) — emitted when no route exists or a
    /// NAT refuses an inbound packet and is configured to signal it.
    DestinationUnreachable,
}

/// Transport-specific part of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketBody {
    Udp {
        payload: Vec<u8>,
    },
    Tcp {
        flags: TcpFlags,
        payload: Vec<u8>,
    },
    Icmp {
        kind: IcmpKind,
        /// The flow the error refers to (src/dst of the original packet).
        original_src: Endpoint,
        original_dst: Endpoint,
    },
}

impl PacketBody {
    pub fn protocol(&self) -> Option<Protocol> {
        match self {
            PacketBody::Udp { .. } => Some(Protocol::Udp),
            PacketBody::Tcp { .. } => Some(Protocol::Tcp),
            PacketBody::Icmp { .. } => None,
        }
    }

    pub fn payload(&self) -> &[u8] {
        match self {
            PacketBody::Udp { payload } | PacketBody::Tcp { payload, .. } => payload,
            PacketBody::Icmp { .. } => &[],
        }
    }
}

/// A simulated IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub ttl: u8,
    pub body: PacketBody,
}

impl Packet {
    /// A UDP packet with the default TTL.
    pub fn udp(src: Endpoint, dst: Endpoint, payload: Vec<u8>) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            body: PacketBody::Udp { payload },
        }
    }

    /// A TCP packet with the default TTL.
    pub fn tcp(src: Endpoint, dst: Endpoint, flags: TcpFlags, payload: Vec<u8>) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            body: PacketBody::Tcp { flags, payload },
        }
    }

    /// Set an explicit TTL (used by TTL-limited keepalive probes).
    pub fn with_ttl(mut self, ttl: u8) -> Packet {
        self.ttl = ttl;
        self
    }

    /// The transport protocol, if not ICMP.
    pub fn protocol(&self) -> Option<Protocol> {
        self.body.protocol()
    }

    /// Decrement the TTL as a router would. Returns `false` if the packet
    /// must be dropped (TTL reached zero).
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl <= 1 {
            self.ttl = 0;
            false
        } else {
            self.ttl -= 1;
            true
        }
    }

    /// Build the ICMP time-exceeded error a router at `router_ip` would send
    /// back to this packet's source.
    pub fn ttl_exceeded_reply(&self, router_ip: std::net::Ipv4Addr) -> Packet {
        Packet {
            src: Endpoint::new(router_ip, 0),
            dst: self.src,
            ttl: DEFAULT_TTL,
            body: PacketBody::Icmp {
                kind: IcmpKind::TtlExceeded,
                original_src: self.src,
                original_dst: self.dst,
            },
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            PacketBody::Udp { payload } => {
                write!(
                    f,
                    "UDP {} -> {} ttl={} ({}B)",
                    self.src,
                    self.dst,
                    self.ttl,
                    payload.len()
                )
            }
            PacketBody::Tcp { flags, payload } => write!(
                f,
                "TCP {} -> {} ttl={} [{}] ({}B)",
                self.src,
                self.dst,
                self.ttl,
                flags,
                payload.len()
            ),
            PacketBody::Icmp { kind, .. } => {
                write!(
                    f,
                    "ICMP {:?} {} -> {} ttl={}",
                    kind, self.src, self.dst, self.ttl
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(ip(10, 0, 0, last), port)
    }

    #[test]
    fn udp_constructor_defaults() {
        let p = Packet::udp(ep(1, 1000), ep(2, 2000), vec![1, 2, 3]);
        assert_eq!(p.ttl, DEFAULT_TTL);
        assert_eq!(p.protocol(), Some(Protocol::Udp));
        assert_eq!(p.body.payload(), &[1, 2, 3]);
    }

    #[test]
    fn ttl_decrement_semantics() {
        let mut p = Packet::udp(ep(1, 1), ep(2, 2), vec![]).with_ttl(2);
        assert!(p.decrement_ttl());
        assert_eq!(p.ttl, 1);
        assert!(!p.decrement_ttl());
        assert_eq!(p.ttl, 0);
        // Further decrements stay at zero and keep failing.
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn ttl_one_dies_at_first_router() {
        let mut p = Packet::udp(ep(1, 1), ep(2, 2), vec![]).with_ttl(1);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn icmp_reply_targets_original_source() {
        let p = Packet::udp(ep(1, 1111), ep(2, 2222), vec![]).with_ttl(1);
        let reply = p.ttl_exceeded_reply(ip(192, 0, 2, 1));
        assert_eq!(reply.dst, p.src);
        assert_eq!(reply.src.ip, ip(192, 0, 2, 1));
        match reply.body {
            PacketBody::Icmp {
                kind,
                original_src,
                original_dst,
            } => {
                assert_eq!(kind, IcmpKind::TtlExceeded);
                assert_eq!(original_src, p.src);
                assert_eq!(original_dst, p.dst);
            }
            _ => panic!("expected ICMP"),
        }
    }

    #[test]
    fn tcp_flag_display() {
        assert_eq!(TcpFlags::SYN.to_string(), "SYN");
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn icmp_has_no_protocol_or_payload() {
        let p = Packet::udp(ep(1, 1), ep(2, 2), vec![9]).ttl_exceeded_reply(ip(1, 1, 1, 1));
        assert_eq!(p.protocol(), None);
        assert!(p.body.payload().is_empty());
    }

    #[test]
    fn display_formats() {
        let p = Packet::tcp(ep(1, 1), ep(2, 80), TcpFlags::SYN, vec![]);
        let s = p.to_string();
        assert!(s.contains("TCP"), "{s}");
        assert!(s.contains("[SYN]"), "{s}");
    }
}
