//! Transport endpoints and flow identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    Udp,
    Tcp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Udp => "UDP",
            Protocol::Tcp => "TCP",
        })
    }
}

/// An `IP:port` pair — the paper's `IPint:portint` / `IPext:portext`
/// notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl Endpoint {
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl From<(Ipv4Addr, u16)> for Endpoint {
    fn from((ip, port): (Ipv4Addr, u16)) -> Self {
        Endpoint { ip, port }
    }
}

/// A directed five-tuple identifying a flow at one observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    pub proto: Protocol,
    pub src: Endpoint,
    pub dst: Endpoint,
}

impl FlowKey {
    pub fn new(proto: Protocol, src: Endpoint, dst: Endpoint) -> Self {
        FlowKey { proto, src, dst }
    }

    /// The same flow seen from the other direction.
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            proto: self.proto,
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} -> {}", self.proto, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::new(ip(10, 0, 0, 1), 6881).to_string(),
            "10.0.0.1:6881"
        );
    }

    #[test]
    fn endpoint_from_tuple() {
        let e: Endpoint = (ip(1, 2, 3, 4), 80).into();
        assert_eq!(e.port, 80);
    }

    #[test]
    fn flow_reversal_is_involution() {
        let k = FlowKey::new(
            Protocol::Tcp,
            Endpoint::new(ip(10, 0, 0, 1), 1234),
            Endpoint::new(ip(8, 8, 8, 8), 80),
        );
        assert_eq!(k.reversed().reversed(), k);
        assert_eq!(k.reversed().src, k.dst);
    }

    #[test]
    fn flow_display() {
        let k = FlowKey::new(
            Protocol::Udp,
            Endpoint::new(ip(10, 0, 0, 1), 53),
            Endpoint::new(ip(9, 9, 9, 9), 53),
        );
        assert_eq!(k.to_string(), "UDP 10.0.0.1:53 -> 9.9.9.9:53");
    }
}
