//! # netcore — core network types for the CGN study
//!
//! Foundation crate for the reproduction of *"A Multi-perspective Analysis of
//! Carrier-Grade NAT Deployment"* (IMC 2016). It provides the vocabulary every
//! other crate speaks:
//!
//! * [`Prefix`] — IPv4 CIDR prefixes with containment and iteration,
//! * [`reserved`] — the reserved address ranges of Table 1 of the paper
//!   (RFC 1918 private space and the RFC 6598 shared space `100.64/10`),
//! * [`RoutingTable`] — a longest-prefix-match "global routing table" used to
//!   classify addresses as routed / unrouted,
//! * [`asn`] — autonomous systems, RIR regions and AS kinds (eyeball,
//!   cellular, transit, content),
//! * [`Packet`] — the simulated IPv4 packet (UDP / TCP / ICMP) with TTL,
//! * [`SimTime`] — virtual time, the clock every component shares.
//!
//! Everything in this crate is deterministic and free of I/O.

pub mod addr;
pub mod asn;
pub mod endpoint;
pub mod packet;
pub mod reserved;
pub mod routing;
pub mod time;

pub use addr::Prefix;
pub use asn::{AsId, AsInfo, AsKind, AsRegistry, Rir};
pub use endpoint::{Endpoint, Protocol};
pub use packet::{IcmpKind, Packet, PacketBody, TcpFlags};
pub use reserved::{classify_reserved, ReservedRange};
pub use routing::{RouteEntry, RoutingTable};
pub use time::{SimDuration, SimTime};

use std::net::Ipv4Addr;

/// Convenience constructor used pervasively in tests and examples.
///
/// ```
/// let a = netcore::ip(10, 0, 0, 1);
/// assert!(netcore::classify_reserved(a).is_some());
/// ```
pub fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

/// Parse a dotted-quad string, panicking with a readable message on error.
/// Intended for statically-known addresses in tests and generators.
pub fn ip_str(s: &str) -> Ipv4Addr {
    s.parse()
        .unwrap_or_else(|_| panic!("invalid IPv4 literal: {s}"))
}
