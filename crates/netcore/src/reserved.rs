//! Reserved address space — Table 1 of the paper.
//!
//! | Range            | Shorthand | RFC  | Comments                 |
//! |------------------|-----------|------|--------------------------|
//! | 192.168.0.0/16   | 192X      | 1918 | Commonly used in CPE     |
//! | 172.16.0.0/12    | 172X      | 1918 |                          |
//! | 10.0.0.0/8       | 10X       | 1918 |                          |
//! | 100.64.0.0/10    | 100X      | 6598 | for CGN deployments      |
//!
//! The paper's detection pipelines bucket *internal* peers and addresses by
//! these four ranges (Figures 4, 5, 7; Tables 3, 4).

use crate::addr::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One of the four reserved ranges the study tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReservedRange {
    /// `192.168.0.0/16` (RFC 1918) — dominant in home CPE deployments.
    R192,
    /// `172.16.0.0/12` (RFC 1918).
    R172,
    /// `10.0.0.0/8` (RFC 1918) — the most common CGN internal range.
    R10,
    /// `100.64.0.0/10` (RFC 6598) — shared address space allocated
    /// specifically for CGN deployments.
    R100,
}

impl ReservedRange {
    /// All four ranges in the paper's canonical order (192X, 172X, 10X, 100X).
    pub const ALL: [ReservedRange; 4] = [
        ReservedRange::R192,
        ReservedRange::R172,
        ReservedRange::R10,
        ReservedRange::R100,
    ];

    /// The CIDR prefix of this range.
    pub fn prefix(self) -> Prefix {
        match self {
            ReservedRange::R192 => Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
            ReservedRange::R172 => Prefix::new(Ipv4Addr::new(172, 16, 0, 0), 12),
            ReservedRange::R10 => Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
            ReservedRange::R100 => Prefix::new(Ipv4Addr::new(100, 64, 0, 0), 10),
        }
    }

    /// The paper's shorthand name ("192X", "172X", "10X", "100X").
    pub fn shorthand(self) -> &'static str {
        match self {
            ReservedRange::R192 => "192X",
            ReservedRange::R172 => "172X",
            ReservedRange::R10 => "10X",
            ReservedRange::R100 => "100X",
        }
    }

    /// The RFC that reserves this range.
    pub fn rfc(self) -> u16 {
        match self {
            ReservedRange::R100 => 6598,
            _ => 1918,
        }
    }

    /// Whether `addr` falls inside this range.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        self.prefix().contains(addr)
    }
}

impl fmt::Display for ReservedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.shorthand())
    }
}

/// Classify an address into one of the four tracked reserved ranges, or
/// `None` if it is nominally public.
///
/// Note the ranges are mutually disjoint, so order does not matter.
pub fn classify_reserved(addr: Ipv4Addr) -> Option<ReservedRange> {
    ReservedRange::ALL.into_iter().find(|r| r.contains(addr))
}

/// Whether the address is *reserved for internal use* per Table 1. The paper
/// calls such addresses "reserved"; all others are "routable" by value
/// (whether they are *routed* is a separate question answered by the
/// routing table).
pub fn is_reserved(addr: Ipv4Addr) -> bool {
    classify_reserved(addr).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;
    use proptest::prelude::*;

    #[test]
    fn table1_prefixes() {
        assert_eq!(ReservedRange::R192.prefix().to_string(), "192.168.0.0/16");
        assert_eq!(ReservedRange::R172.prefix().to_string(), "172.16.0.0/12");
        assert_eq!(ReservedRange::R10.prefix().to_string(), "10.0.0.0/8");
        assert_eq!(ReservedRange::R100.prefix().to_string(), "100.64.0.0/10");
    }

    #[test]
    fn table1_rfcs() {
        assert_eq!(ReservedRange::R192.rfc(), 1918);
        assert_eq!(ReservedRange::R172.rfc(), 1918);
        assert_eq!(ReservedRange::R10.rfc(), 1918);
        assert_eq!(ReservedRange::R100.rfc(), 6598);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(
            classify_reserved(ip(192, 168, 0, 1)),
            Some(ReservedRange::R192)
        );
        assert_eq!(classify_reserved(ip(192, 169, 0, 1)), None);
        assert_eq!(
            classify_reserved(ip(172, 16, 0, 1)),
            Some(ReservedRange::R172)
        );
        assert_eq!(
            classify_reserved(ip(172, 31, 255, 255)),
            Some(ReservedRange::R172)
        );
        assert_eq!(classify_reserved(ip(172, 32, 0, 0)), None);
        assert_eq!(
            classify_reserved(ip(10, 255, 0, 1)),
            Some(ReservedRange::R10)
        );
        assert_eq!(classify_reserved(ip(11, 0, 0, 1)), None);
        assert_eq!(
            classify_reserved(ip(100, 64, 0, 1)),
            Some(ReservedRange::R100)
        );
        assert_eq!(classify_reserved(ip(100, 128, 0, 1)), None);
        // Routable-but-unannounced space used internally by some ISPs
        // (Fig. 7b) is *not* reserved.
        assert_eq!(classify_reserved(ip(25, 0, 0, 1)), None);
        assert_eq!(classify_reserved(ip(1, 0, 0, 1)), None);
    }

    #[test]
    fn shorthand_names() {
        let names: Vec<&str> = ReservedRange::ALL.iter().map(|r| r.shorthand()).collect();
        assert_eq!(names, vec!["192X", "172X", "10X", "100X"]);
    }

    proptest! {
        /// The four ranges are mutually disjoint: at most one matches.
        #[test]
        fn prop_ranges_disjoint(a in any::<u32>()) {
            let addr = Ipv4Addr::from(a);
            let n = ReservedRange::ALL.iter().filter(|r| r.contains(addr)).count();
            prop_assert!(n <= 1);
        }

        /// classify agrees with per-range contains.
        #[test]
        fn prop_classify_consistent(a in any::<u32>()) {
            let addr = Ipv4Addr::from(a);
            match classify_reserved(addr) {
                Some(r) => prop_assert!(r.contains(addr)),
                None => {
                    for r in ReservedRange::ALL {
                        prop_assert!(!r.contains(addr));
                    }
                }
            }
        }
    }
}
