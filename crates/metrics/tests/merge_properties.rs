//! Merge-algebra properties of the metrics exchange types.
//!
//! The driver folds per-shard snapshots in shard order at every sample
//! barrier, and different shard counts / window widths regroup the
//! same observations differently — so merge must be associative and
//! order-independent or the "bit-identical across thread counts"
//! guarantee would silently depend on grouping.

use cgn_metrics::{Histogram, Snapshot, Value};
use proptest::collection;
use proptest::prelude::*;

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// A snapshot over a small fixed name pool; per-name kind is fixed
/// (counter/gauge/max/histogram) so merges are always well-typed.
fn snapshot_of(seeds: &[(u8, u64)]) -> Snapshot {
    let mut s = Snapshot::default();
    for &(which, v) in seeds {
        match which % 4 {
            0 => s.push("flows_total", Value::Counter(v)),
            1 => s.push("live", Value::Gauge(v)),
            2 => s.push("worst", Value::Max(v)),
            _ => s.push("lat", Value::Histogram(histogram_of(&[v % 100_000]))),
        }
    }
    s.normalize();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn histogram_merge_is_associative(
        a in collection::vec(0u64..1_000_000, 0..40),
        b in collection::vec(0u64..1_000_000, 0..40),
        c in collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Equivalent to recording the concatenation directly.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &histogram_of(&all));
    }

    #[test]
    fn histogram_merge_is_order_independent(
        a in collection::vec(0u64..1_000_000, 0..40),
        b in collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_merge_is_associative_and_order_independent(
        a in collection::vec((0u8..8, 0u64..1_000_000), 0..12),
        b in collection::vec((0u8..8, 0u64..1_000_000), 0..12),
        c in collection::vec((0u8..8, 0u64..1_000_000), 0..12),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let mut cba = sc.clone();
        cba.merge(&sb);
        cba.merge(&sa);
        prop_assert_eq!(&left, &cba);
        prop_assert_eq!(left.digest(), cba.digest());
    }
}
