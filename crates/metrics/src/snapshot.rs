//! Point-in-time metric snapshots: the merge/delta exchange format.
//!
//! A [`Snapshot`] is the unit that crosses a sample barrier: each
//! shard renders its instruments into one, and the driver folds them
//! **in shard order** into the fleet-wide view. Samples are kept
//! sorted by name with one entry per name, so two snapshots merge by
//! a deterministic linear merge-join and compare with derived
//! equality — the property the cross-thread bit-identity tests pin.

use crate::instrument::Histogram;
use serde::{Deserialize, Serialize};

/// One metric's value. The variant decides merge and delta semantics:
/// counters and histograms accumulate and subtract; gauges sum across
/// disjoint shards but do not subtract over time; max-gauges take the
/// maximum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// Monotonic count: merges by `+`, deltas by `-`.
    Counter(u64),
    /// Instantaneous level: merges by `+` (disjoint shards), delta
    /// keeps the current level.
    Gauge(u64),
    /// High-water level: merges by `max`, delta keeps the current level.
    Max(u64),
    /// Log2-bucketed distribution: merges bucket-wise, deltas
    /// bucket-wise.
    Histogram(Histogram),
}

impl Value {
    fn merge(&mut self, other: &Value) {
        match (self, other) {
            (Value::Counter(a), Value::Counter(b)) => *a += b,
            (Value::Gauge(a), Value::Gauge(b)) => *a += b,
            (Value::Max(a), Value::Max(b)) => *a = (*a).max(*b),
            (Value::Histogram(a), Value::Histogram(b)) => a.merge(b),
            (a, b) => panic!("metric kind mismatch under one name: {a:?} vs {b:?}"),
        }
    }

    fn delta_since(&self, prev: &Value) -> Value {
        match (self, prev) {
            (Value::Counter(a), Value::Counter(b)) => Value::Counter(a.saturating_sub(*b)),
            (Value::Histogram(a), Value::Histogram(b)) => Value::Histogram(a.delta_since(b)),
            // Levels have no meaningful difference over a window; the
            // end-of-window level is the windowed observation.
            (v, _) => v.clone(),
        }
    }

    /// The scalar behind a counter/gauge/max value (histograms report
    /// their observation count).
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::Counter(v) | Value::Gauge(v) | Value::Max(v) => *v,
            Value::Histogram(h) => h.count,
        }
    }
}

/// One named sample inside a snapshot. Names follow the Prometheus
/// convention, optionally carrying a label set:
/// `cgn_flows_rejected_total{reason="port-exhausted"}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    pub name: String,
    pub value: Value,
}

/// A sorted, name-unique set of samples taken at one sim-time instant.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Append a sample. Callers may push in any order and with
    /// duplicate names; [`Snapshot::normalize`] (or the first merge)
    /// sorts and folds duplicates.
    pub fn push(&mut self, name: impl Into<String>, value: Value) {
        self.samples.push(Sample {
            name: name.into(),
            value,
        });
    }

    /// Sort by name and fold duplicate names with their merge
    /// semantics. Idempotent.
    pub fn normalize(&mut self) {
        self.samples.sort_by(|a, b| a.name.cmp(&b.name));
        let mut folded: Vec<Sample> = Vec::with_capacity(self.samples.len());
        for s in self.samples.drain(..) {
            match folded.last_mut() {
                Some(last) if last.name == s.name => last.value.merge(&s.value),
                _ => folded.push(s),
            }
        }
        self.samples = folded;
    }

    /// Fold another snapshot into this one (both are normalized
    /// first). Shard snapshots carry disjoint-state values, so the
    /// merge is the fleet-wide total; merging in shard order makes the
    /// result independent of which threads produced the inputs.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut other = other.clone();
        other.normalize();
        self.normalize();
        let mut merged: Vec<Sample> =
            Vec::with_capacity(self.samples.len().max(other.samples.len()));
        let mut mine = std::mem::take(&mut self.samples).into_iter().peekable();
        let mut theirs = other.samples.into_iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) => match a.name.cmp(&b.name) {
                    std::cmp::Ordering::Less => merged.push(mine.next().expect("peeked")),
                    std::cmp::Ordering::Greater => merged.push(theirs.next().expect("peeked")),
                    std::cmp::Ordering::Equal => {
                        let mut a = mine.next().expect("peeked");
                        let b = theirs.next().expect("peeked");
                        a.value.merge(&b.value);
                        merged.push(a);
                    }
                },
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, Some(_)) => merged.push(theirs.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.samples = merged;
    }

    /// The per-window view against an earlier cumulative snapshot:
    /// counters and histograms subtract; gauges and max-gauges keep
    /// their end-of-window level. Names absent from `prev` keep their
    /// full value.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for s in &self.samples {
            let value = match prev.get(&s.name) {
                Some(p) => s.value.delta_since(p),
                None => s.value.clone(),
            };
            out.push(s.name.clone(), value);
        }
        out.normalize();
        out
    }

    /// Look up a sample by exact name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.value)
    }

    /// Scalar value of a named sample (0 when absent).
    pub fn scalar(&self, name: &str) -> u64 {
        self.get(name).map(Value::as_u64).unwrap_or(0)
    }

    /// FNV-1a over the `Debug` rendering — the same cheap fingerprint
    /// the run summaries use, for "bit-identical across thread
    /// counts" assertions without hauling full snapshots around.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in format!("{self:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, Value)]) -> Snapshot {
        let mut s = Snapshot::default();
        for (name, v) in pairs {
            s.push(*name, v.clone());
        }
        s.normalize();
        s
    }

    #[test]
    fn normalize_sorts_and_folds_duplicates() {
        let mut s = Snapshot::default();
        s.push("b_total", Value::Counter(1));
        s.push("a_live", Value::Gauge(5));
        s.push("b_total", Value::Counter(2));
        s.normalize();
        assert_eq!(
            s.samples
                .iter()
                .map(|x| x.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a_live", "b_total"]
        );
        assert_eq!(s.scalar("b_total"), 3);
    }

    #[test]
    fn merge_follows_kind_semantics() {
        let mut a = snap(&[
            ("c_total", Value::Counter(10)),
            ("live", Value::Gauge(4)),
            ("worst", Value::Max(7)),
        ]);
        let b = snap(&[
            ("c_total", Value::Counter(5)),
            ("live", Value::Gauge(6)),
            ("worst", Value::Max(3)),
            ("only_b_total", Value::Counter(1)),
        ]);
        a.merge(&b);
        assert_eq!(a.scalar("c_total"), 15, "counters add");
        assert_eq!(a.scalar("live"), 10, "disjoint-shard gauges add");
        assert_eq!(a.scalar("worst"), 7, "max-gauges take the max");
        assert_eq!(a.scalar("only_b_total"), 1, "one-sided names survive");
    }

    #[test]
    fn delta_subtracts_counters_keeps_levels() {
        let earlier = snap(&[("c_total", Value::Counter(10)), ("live", Value::Gauge(4))]);
        let later = snap(&[("c_total", Value::Counter(25)), ("live", Value::Gauge(2))]);
        let d = later.delta_since(&earlier);
        assert_eq!(d.scalar("c_total"), 15);
        assert_eq!(d.scalar("live"), 2, "gauge keeps its end-of-window level");
    }

    #[test]
    fn digest_separates_distinct_snapshots() {
        let a = snap(&[("c_total", Value::Counter(10))]);
        let b = snap(&[("c_total", Value::Counter(11))]);
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    #[should_panic(expected = "metric kind mismatch")]
    fn kind_mismatch_under_one_name_is_a_bug() {
        let mut a = snap(&[("x", Value::Counter(1))]);
        let b = snap(&[("x", Value::Gauge(1))]);
        a.merge(&b);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::default();
        h.record(3);
        h.record(900);
        let s = snap(&[
            ("c_total", Value::Counter(2)),
            ("lat_ns", Value::Histogram(h)),
        ]);
        let text = serde_json::to_string(&s).expect("serialize");
        let back: Snapshot = serde_json::from_str(&text).expect("parse");
        assert_eq!(s, back);
    }
}
