//! Windowed time-series aggregation over cumulative snapshots.
//!
//! The driver pushes the fleet-wide cumulative [`Snapshot`] at every
//! sample barrier; a [`WindowSeries`] groups those instants into
//! fixed-width windows keyed by **sim-time** (wall clock never enters,
//! so the series is bit-identical across thread counts) and derives
//! each window's delta against the previous window's end. The ring
//! keeps the most recent `cap` windows — an always-on harness can run
//! indefinitely at bounded memory.
//!
//! Eviction is **telescoping-safe**: the series remembers how many
//! windows it has let go ([`WindowSeries::evicted_windows`]) and the
//! cumulative snapshot at the close of the newest one
//! ([`WindowSeries::evicted_cumulative`]), so for every counter
//!
//! ```text
//! evicted_cumulative + Σ (retained window deltas) == latest cumulative
//! ```
//!
//! holds at all times (pinned by a proptest). A streaming consumer
//! uses [`WindowSeries::drain_closed`] to take completed windows out
//! as they close — the same bookkeeping applies, so nothing is ever
//! double-counted or lost between the stream and the ring.

use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};

/// One completed (or in-progress) aggregation window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Window start, inclusive, in sim-seconds.
    pub start_secs: u64,
    /// Window end, exclusive, in sim-seconds (`start + width`).
    pub end_secs: u64,
    /// Cumulative snapshot at the latest sample inside the window.
    pub cumulative: Snapshot,
    /// Difference to the previous window's end (counters/histograms
    /// subtract; gauges report their end-of-window level).
    pub delta: Snapshot,
}

/// A bounded ring of per-window aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSeries {
    /// Window width in sim-seconds.
    pub width_secs: u64,
    /// Maximum windows retained (oldest evicted first).
    pub cap: usize,
    /// Retained windows, oldest first.
    pub windows: Vec<Window>,
    /// Cumulative snapshot at the end of the window preceding
    /// `windows.last()` — the subtrahend for the current window's
    /// delta.
    base: Snapshot,
    /// Windows evicted by the ring cap or taken by
    /// [`drain_closed`](WindowSeries::drain_closed) so far.
    evicted_windows: u64,
    /// Cumulative snapshot at the close of the newest evicted/drained
    /// window — the telescoping anchor for the retained deltas.
    evicted_cumulative: Snapshot,
}

impl WindowSeries {
    /// A series of `width_secs`-wide windows keeping at most `cap`
    /// of them. `width_secs` must be non-zero.
    pub fn new(width_secs: u64, cap: usize) -> Self {
        assert!(width_secs > 0, "window width must be non-zero");
        WindowSeries {
            width_secs,
            cap: cap.max(1),
            windows: Vec::new(),
            base: Snapshot::default(),
            evicted_windows: 0,
            evicted_cumulative: Snapshot::default(),
        }
    }

    /// Record the cumulative snapshot observed at sim-time `t_secs`.
    /// Samples inside the same window update it in place; the first
    /// sample past a window boundary closes the old window and opens
    /// the next. Sample times must be non-decreasing.
    pub fn push(&mut self, t_secs: u64, cumulative: Snapshot) {
        let start_secs = (t_secs / self.width_secs) * self.width_secs;
        match self.windows.last_mut() {
            Some(w) if w.start_secs == start_secs => {
                w.delta = cumulative.delta_since(&self.base);
                w.cumulative = cumulative;
            }
            _ => {
                if let Some(prev) = self.windows.last() {
                    self.base = prev.cumulative.clone();
                }
                self.windows.push(Window {
                    start_secs,
                    end_secs: start_secs + self.width_secs,
                    delta: cumulative.delta_since(&self.base),
                    cumulative,
                });
                if self.windows.len() > self.cap {
                    let evicted = self.windows.remove(0);
                    self.evicted_windows += 1;
                    self.evicted_cumulative = evicted.cumulative;
                }
            }
        }
    }

    /// Take every **closed** window out of the ring, oldest first,
    /// leaving only the in-progress last window (the one the next
    /// `push` may still update in place). The taken windows count as
    /// evicted: [`evicted_windows`](WindowSeries::evicted_windows) and
    /// [`evicted_cumulative`](WindowSeries::evicted_cumulative)
    /// advance past them, so the telescoping invariant keeps holding
    /// for what remains. This is the streaming API — an always-on
    /// consumer drains after every sample and the ring never grows
    /// past two windows regardless of `cap`.
    pub fn drain_closed(&mut self) -> Vec<Window> {
        if self.windows.len() <= 1 {
            return Vec::new();
        }
        let keep_from = self.windows.len() - 1;
        let closed: Vec<Window> = self.windows.drain(..keep_from).collect();
        if let Some(last) = closed.last() {
            self.evicted_windows += closed.len() as u64;
            self.evicted_cumulative = last.cumulative.clone();
        }
        closed
    }

    /// Windows evicted by the cap or taken by
    /// [`drain_closed`](WindowSeries::drain_closed) so far.
    pub fn evicted_windows(&self) -> u64 {
        self.evicted_windows
    }

    /// Cumulative snapshot at the close of the newest evicted/drained
    /// window (default-empty while nothing has been evicted). For
    /// every counter, adding the retained windows' deltas to this
    /// snapshot reproduces the latest cumulative exactly.
    pub fn evicted_cumulative(&self) -> &Snapshot {
        &self.evicted_cumulative
    }

    /// Windows observed over the series' lifetime, evicted or not.
    pub fn total_windows(&self) -> u64 {
        self.evicted_windows + self.windows.len() as u64
    }

    /// The most recent cumulative snapshot, if any sample was pushed.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.windows.last().map(|w| &w.cumulative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Value;

    fn cum(n: u64, live: u64) -> Snapshot {
        let mut s = Snapshot::default();
        s.push("flows_total", Value::Counter(n));
        s.push("live", Value::Gauge(live));
        s.normalize();
        s
    }

    #[test]
    fn windows_are_keyed_by_sim_time_and_carry_deltas() {
        let mut series = WindowSeries::new(30, 16);
        series.push(10, cum(100, 5));
        series.push(20, cum(250, 9));
        assert_eq!(series.windows.len(), 1, "same window updated in place");
        assert_eq!(series.windows[0].start_secs, 0);
        assert_eq!(series.windows[0].delta.scalar("flows_total"), 250);
        series.push(40, cum(400, 3));
        assert_eq!(series.windows.len(), 2);
        let w = &series.windows[1];
        assert_eq!((w.start_secs, w.end_secs), (30, 60));
        assert_eq!(
            w.delta.scalar("flows_total"),
            150,
            "delta against the previous window's end"
        );
        assert_eq!(w.delta.scalar("live"), 3, "gauge keeps its level");
        assert_eq!(series.latest().expect("pushed").scalar("flows_total"), 400);
    }

    #[test]
    fn skipped_windows_attribute_the_whole_gap_to_the_next_sample() {
        let mut series = WindowSeries::new(10, 16);
        series.push(5, cum(10, 1));
        // No sample lands in [10, 20); the next window's delta covers
        // everything since the last observed window.
        series.push(25, cum(70, 1));
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[1].start_secs, 20);
        assert_eq!(series.windows[1].delta.scalar("flows_total"), 60);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_delta_bases_honest() {
        let mut series = WindowSeries::new(10, 2);
        for k in 0..5u64 {
            series.push(k * 10, cum((k + 1) * 100, k));
        }
        assert_eq!(series.windows.len(), 2, "capped");
        let starts: Vec<u64> = series.windows.iter().map(|w| w.start_secs).collect();
        assert_eq!(starts, vec![30, 40], "oldest evicted first");
        assert_eq!(
            series.windows[1].delta.scalar("flows_total"),
            100,
            "delta still spans exactly one window after eviction"
        );
        assert_eq!(series.evicted_windows(), 3);
        assert_eq!(
            series.evicted_cumulative().scalar("flows_total"),
            300,
            "anchor is the newest evicted window's close"
        );
        assert_eq!(series.total_windows(), 5);
    }

    #[test]
    fn drain_closed_streams_windows_and_keeps_the_open_one() {
        let mut series = WindowSeries::new(10, 64);
        assert!(series.drain_closed().is_empty(), "nothing to drain yet");
        series.push(5, cum(10, 1));
        assert!(
            series.drain_closed().is_empty(),
            "a lone window may still be updated in place"
        );
        series.push(15, cum(30, 2));
        series.push(25, cum(60, 3));
        let closed = series.drain_closed();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].start_secs, 0);
        assert_eq!(closed[1].start_secs, 10);
        assert_eq!(series.windows.len(), 1, "open window retained");
        assert_eq!(series.evicted_windows(), 2);
        assert_eq!(series.evicted_cumulative().scalar("flows_total"), 30);

        // The retained window keeps absorbing in-place updates, and the
        // next boundary opens a new window with an honest delta.
        series.push(27, cum(80, 4));
        series.push(35, cum(100, 5));
        assert_eq!(series.windows.len(), 2);
        assert_eq!(
            series.windows[1].delta.scalar("flows_total"),
            20,
            "delta against the drained-then-updated previous window"
        );
        assert_eq!(series.total_windows(), 4);
    }

    use proptest::prelude::*;

    proptest! {
        /// The eviction telescoping invariant: for every counter, the
        /// cumulative anchor of everything evicted/drained plus the
        /// deltas of everything retained reproduces the latest
        /// cumulative exactly — no sequence of pushes, cap evictions,
        /// and drains can lose or double-count a window.
        #[test]
        fn prop_eviction_telescoping_invariant(
            cap in 1usize..6,
            steps in proptest::collection::vec(
                (0u64..25, 1u64..1_000, 0u64..100, any::<bool>()),
                1..60,
            ),
        ) {
            let mut series = WindowSeries::new(10, cap);
            let mut t = 0u64;
            let mut total = 0u64;
            for (dt, inc, live, drain) in steps {
                t += dt;
                total += inc;
                series.push(t, cum(total, live));
                if drain {
                    series.drain_closed();
                }
                let retained: u64 = series
                    .windows
                    .iter()
                    .map(|w| w.delta.scalar("flows_total"))
                    .sum();
                let anchor = series.evicted_cumulative().scalar("flows_total");
                prop_assert_eq!(anchor + retained, total);
                prop_assert!(series.windows.len() <= cap);
            }
        }
    }
}
