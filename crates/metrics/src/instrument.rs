//! Fixed-layout instruments: counters, gauges and log2 histograms.
//!
//! Every instrument is plain owned data — a shard's thread increments
//! its own cells with no synchronization, and cross-shard totals are
//! produced by merging [`crate::Snapshot`]s at sample barriers in
//! shard order. That is what keeps metrics both cheap on the hot path
//! and bit-identical across worker-thread counts.

use serde::{Deserialize, Serialize};

/// A monotonic event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    pub fn get(self) -> u64 {
        self.0
    }
}

/// A last-value gauge (set at sample barriers, not on the hot path).
/// Gauges from disjoint shards **sum** under snapshot merge: each
/// shard reports its own live mappings / wheel depth / free slots,
/// and the fleet-wide value is their total.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gauge(u64);

impl Gauge {
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    pub fn get(self) -> u64 {
        self.0
    }
}

/// A high-water gauge: keeps the maximum observed value. Merges by
/// `max`, so the fleet-wide sample is the worst shard's.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxGauge(u64);

impl MaxGauge {
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    pub fn get(self) -> u64 {
        self.0
    }
}

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, i.e. its inclusive upper edge is `2^i - 1`. The
/// bucket vector grows on demand (never beyond 65 cells), so an
/// all-small distribution stays a handful of words. Exact counts and
/// the exact sum are kept alongside, so rates and means are precise;
/// only quantiles are bucket-resolution (a factor-of-2 upper bound —
/// the right fidelity for "did probe latency blow up" questions).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts; index per [`Histogram::bucket_index`].
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// The bucket an observation lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper edge of bucket `i` (`0`, then `2^i - 1`).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Fold another histogram into this one (element-wise bucket
    /// addition; the longer bucket vector wins).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Subtract an earlier cumulative histogram (for per-window
    /// deltas). Saturating, so a reset never underflows. The result
    /// is canonical (no trailing zero buckets), so a delta compares
    /// equal to a histogram recorded directly.
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut buckets: Vec<u64> = self.buckets.clone();
        for (mine, theirs) in buckets.iter_mut().zip(&prev.buckets) {
            *mine = mine.saturating_sub(*theirs);
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram {
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            buckets,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile: the upper edge of the first bucket
    /// whose cumulative count reaches `q * count` (an upper bound on
    /// the exact quantile, tight to a factor of 2). `q` is clamped to
    /// `[0, 1]`; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(self.buckets.len().saturating_sub(1))
    }

    /// Log-linearly interpolated quantile estimate. Locates the bucket
    /// holding rank `⌈q·count⌉` like [`Histogram::quantile`], then
    /// interpolates *geometrically* within it: a log2 bucket spans
    /// `[2^(i-1), 2^i)`, so the within-bucket position `f ∈ (0, 1]`
    /// maps to `2^(i-1) · 2^f` — the right interpolation for buckets
    /// whose width is multiplicative, not additive. Clamped to the
    /// bucket's inclusive edges, so single-value buckets (0 and 1) are
    /// exact. Returns 0 for an empty histogram.
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let cumulative = below + n;
            if cumulative as f64 >= rank {
                if i == 0 {
                    return 0.0;
                }
                let frac = (rank - below as f64) / n as f64;
                let lower = (1u128 << (i - 1)) as f64;
                let estimate = lower * 2f64.powf(frac);
                return estimate.clamp(lower, Self::bucket_upper(i) as f64);
            }
            below = cumulative;
        }
        Self::bucket_upper(self.buckets.len().saturating_sub(1)) as f64
    }

    /// The `(p50, p95, p99)` interpolated quantiles, the triple the
    /// phase profiler and perf harness report.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile_interpolated(0.50),
            self.quantile_interpolated(0.95),
            self.quantile_interpolated(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_max_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
        let mut m = MaxGauge::default();
        m.observe(7);
        m.observe(2);
        assert_eq!(m.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2_half_open() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(10), 1023);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        // Every value sits at or below its bucket's upper edge, above
        // the previous bucket's.
        for v in [0u64, 1, 2, 5, 100, 4097, 1 << 40] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 3, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1111);
        assert_eq!(h.quantile(0.0), 0, "min bucket");
        assert_eq!(h.quantile(0.5), 3, "median lands in the [2,4) bucket");
        assert_eq!(h.quantile(1.0), 1023, "max lands in the [512,1024) bucket");
        assert!((h.mean() - 1111.0 / 8.0).abs() < 1e-9);
        assert_eq!(Histogram::default().quantile(0.99), 0);
    }

    #[test]
    fn interpolated_quantiles_track_exact_quantiles() {
        // Single-value buckets are exact: 0 and 1 each occupy a
        // one-value bucket, so clamping recovers the exact sample.
        let mut h = Histogram::default();
        for v in [0u64, 0, 0, 1, 1, 1, 1, 1] {
            h.record(v);
        }
        assert_eq!(h.quantile_interpolated(0.25), 0.0);
        assert_eq!(h.quantile_interpolated(0.99), 1.0);

        // Log-uniform samples inside one bucket: exact quantiles are
        // known, and geometric interpolation should land within the
        // bucket far tighter than the factor-of-2 edge bound.
        let mut h = Histogram::default();
        let samples: Vec<u64> = (0..64).map(|k| 512 + k * 8).collect(); // [512, 1016]
        for &v in &samples {
            h.record(v);
        }
        let exact_p50 = samples[31] as f64;
        let est = h.quantile_interpolated(0.50);
        assert!((512.0..=1023.0).contains(&est), "stays inside the bucket");
        assert!(
            (est - exact_p50).abs() / exact_p50 < 0.20,
            "p50 estimate {est} within 20% of exact {exact_p50}"
        );
        // The interpolated estimate never exceeds the edge-bound
        // quantile and is monotone in q.
        assert!(est <= h.quantile(0.50) as f64);
        let (p50, p95, p99) = h.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.quantile(0.99) as f64);

        // Empty histogram reports 0.
        assert_eq!(Histogram::default().quantile_interpolated(0.5), 0.0);

        // Multi-bucket distribution: rank walks across buckets.
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        let p90 = h.quantile_interpolated(0.90);
        assert!(
            (256.0..=511.0).contains(&p90),
            "rank 9 of 10 lands in the [256,512) bucket, got {p90}"
        );
    }

    #[test]
    fn histogram_merge_adds_and_delta_subtracts() {
        let mut a = Histogram::default();
        a.record(1);
        a.record(500);
        let mut b = Histogram::default();
        b.record(0);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 501);
        let d = merged.delta_since(&a);
        assert_eq!(d, b, "delta of a merge recovers the other operand");
        assert!(Histogram::default().delta_since(&a).is_empty());
    }
}
