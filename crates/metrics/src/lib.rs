//! # cgn-metrics — runtime metrics for the CGN simulation stack
//!
//! The paper's operator-side story (§6: port demand, allocation-policy
//! trade-offs, log volumes) is about *continuously observed* CGN
//! behaviour: the interesting signals — flows/s, allocator fill,
//! sweep cost, traceability-query latency — are time-windowed, not
//! end-of-run. This crate is the observability substrate the rest of
//! the workspace instruments itself with:
//!
//! * [`instrument`] — cheap fixed-layout instruments: monotonic
//!   [`Counter`]s, [`Gauge`]s, [`MaxGauge`]s and log2-bucketed
//!   [`Histogram`]s. Each is a plain word (or a small vector of
//!   words) owned by exactly one shard's thread, so the hot path is
//!   an unsynchronized integer add — "lock-free" by ownership, not by
//!   atomics. Cross-shard aggregation happens at sample barriers by
//!   merging [`Snapshot`]s in shard order, which keeps every derived
//!   number bit-identical for any worker-thread count.
//!
//! * [`snapshot`] — the point-in-time exchange format: a [`Snapshot`]
//!   is a sorted list of `(name, value)` samples that merges
//!   deterministically ([`Snapshot::merge`]) and subtracts into
//!   per-window deltas ([`Snapshot::delta_since`]).
//!
//! * [`window`] — a ring of per-window aggregates keyed by sim-time
//!   ([`WindowSeries`]): each window carries the cumulative snapshot
//!   at its end and the delta over the window, the shape a
//!   longitudinal "big NAT" study consumes.
//!
//! * [`expo`] — Prometheus-style text exposition of a snapshot
//!   (`# TYPE` lines, `_bucket{le="…"}` histogram series), so the
//!   artifacts drop into standard scrape tooling.
//!
//! The engine-facing discipline mirrors `nat_engine`'s `EventSink`
//! slot: instruments live behind an `Option`, absent by default, so a
//! disabled registry costs one untaken branch per fire site (the CI
//! `metrics` gate pins the disabled-path cost to ≤ 2% of baseline).

pub mod expo;
pub mod instrument;
pub mod snapshot;
pub mod window;

pub use instrument::{Counter, Gauge, Histogram, MaxGauge};
pub use snapshot::{Sample, Snapshot, Value};
pub use window::{Window, WindowSeries};
