//! Prometheus-style text exposition of a [`Snapshot`].
//!
//! Renders the classic text format (version 0.0.4): one `# TYPE` line
//! per metric family, scalar samples as `name value`, histograms as
//! cumulative `_bucket{le="…"}` series plus `_sum`/`_count`. Sample
//! names may carry a label set (`…{reason="port-exhausted"}`); for
//! histograms the `le` label is appended to any existing labels. The
//! output is a plain deterministic function of the snapshot, so the
//! exposition file is as reproducible as the run that produced it.

use crate::instrument::Histogram;
use crate::snapshot::{Snapshot, Value};
use std::fmt::Write;

/// Split `name{label="…"}` into `(family, Some(labels))`, or
/// `(name, None)` when unlabelled.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

fn type_of(value: &Value) -> &'static str {
    match value {
        Value::Counter(_) => "counter",
        Value::Gauge(_) | Value::Max(_) => "gauge",
        Value::Histogram(_) => "histogram",
    }
}

fn render_histogram(out: &mut String, family: &str, labels: Option<&str>, h: &Histogram) {
    let with_le = |le: &str| match labels {
        Some(l) => format!("{{{l},le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let edge = Histogram::bucket_upper(i).to_string();
        let _ = writeln!(out, "{family}_bucket{} {cumulative}", with_le(&edge));
    }
    let _ = writeln!(out, "{family}_bucket{} {}", with_le("+Inf"), h.count);
    let plain = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
    let _ = writeln!(out, "{family}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{family}_count{plain} {}", h.count);
    // Interpolated quantile estimates as companion gauges (rounded to
    // integers so scalar scrapers keep parsing every sample line).
    let (p50, p95, p99) = h.percentiles();
    let _ = writeln!(out, "{family}_p50{plain} {}", p50.round() as u64);
    let _ = writeln!(out, "{family}_p95{plain} {}", p95.round() as u64);
    let _ = writeln!(out, "{family}_p99{plain} {}", p99.round() as u64);
}

/// Render a snapshot as Prometheus text exposition. The snapshot
/// should be normalized (sorted, name-unique); samples sharing a
/// family (same name up to the label set) get one `# TYPE` header.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for sample in &snapshot.samples {
        let (raw_family, labels) = split_labels(&sample.name);
        // Histogram sample lines append _bucket/_sum/_count to the family.
        let family = raw_family.to_string();
        if last_family.as_deref() != Some(family.as_str()) {
            let _ = writeln!(out, "# TYPE {family} {}", type_of(&sample.value));
            last_family = Some(family.clone());
        }
        match &sample.value {
            Value::Histogram(h) => render_histogram(&mut out, &family, labels, h),
            v => {
                let plain = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                let _ = writeln!(out, "{family}{plain} {}", v.as_u64());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_with_one_type_line_per_family() {
        let mut s = Snapshot::default();
        s.push("cgn_mappings_live", Value::Gauge(42));
        s.push(
            "cgn_flows_rejected_total{reason=\"port-exhausted\"}",
            Value::Counter(3),
        );
        s.push(
            "cgn_flows_rejected_total{reason=\"session-limit\"}",
            Value::Counter(1),
        );
        s.normalize();
        let text = render(&s);
        assert_eq!(
            text.matches("# TYPE cgn_flows_rejected_total counter")
                .count(),
            1,
            "labelled series share one family header:\n{text}"
        );
        assert!(text.contains("cgn_flows_rejected_total{reason=\"port-exhausted\"} 3"));
        assert!(text.contains("cgn_flows_rejected_total{reason=\"session-limit\"} 1"));
        assert!(text.contains("# TYPE cgn_mappings_live gauge"));
        assert!(text.contains("cgn_mappings_live 42"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(1);
        h.record(3);
        let mut s = Snapshot::default();
        s.push("cgn_probe_latency_ns", Value::Histogram(h));
        s.normalize();
        let text = render(&s);
        assert!(text.contains("# TYPE cgn_probe_latency_ns histogram"));
        assert!(text.contains("cgn_probe_latency_ns_bucket{le=\"1\"} 2"));
        assert!(
            text.contains("cgn_probe_latency_ns_bucket{le=\"3\"} 3"),
            "bucket counts are cumulative:\n{text}"
        );
        assert!(text.contains("cgn_probe_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cgn_probe_latency_ns_sum 5"));
        assert!(text.contains("cgn_probe_latency_ns_count 3"));
        assert!(
            text.contains("cgn_probe_latency_ns_p50 1"),
            "interpolated quantile companions render:\n{text}"
        );
        assert!(text.contains("cgn_probe_latency_ns_p99 "));
    }
}
