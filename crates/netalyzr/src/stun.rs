//! STUN (Session Traversal Utilities for NAT) — RFC 5389 wire format with
//! the classic RFC 3489 NAT-type classification used in §6.5 / Fig. 13.
//!
//! The server side ([`StunService`]) owns two public hosts (two IP
//! addresses) with two ports each; `CHANGE-REQUEST` asks it to answer from
//! the other address and/or port. The client side ([`classify`]) runs the
//! canonical test sequence:
//!
//! 1. **Test I** — plain binding request; no answer ⇒ UDP blocked.
//! 2. mapped == local ⇒ no NAT: **Test II** (change IP+port) distinguishes
//!    open Internet from a symmetric UDP firewall.
//! 3. **Test II** behind a NAT: answer from the alternate address/port
//!    arrives ⇒ *full cone*.
//! 4. **Test I'** to the alternate address: different mapping ⇒
//!    *symmetric* NAT.
//! 5. **Test III** (change port only): answer ⇒ *address restricted*,
//!    silence ⇒ *port-address restricted*.

use nat_engine::StunNatType;
use netcore::{Endpoint, Packet, PacketBody};
use simnet::{pump, Network, NodeId};
use std::net::Ipv4Addr;

/// The STUN magic cookie (RFC 5389 §6).
pub const MAGIC_COOKIE: u32 = 0x2112_A442;

/// Message types we implement.
pub const BINDING_REQUEST: u16 = 0x0001;
pub const BINDING_RESPONSE: u16 = 0x0101;

/// Attribute types.
pub const ATTR_XOR_MAPPED_ADDRESS: u16 = 0x0020;
pub const ATTR_CHANGE_REQUEST: u16 = 0x0003;
pub const ATTR_OTHER_ADDRESS: u16 = 0x802C;

/// A parsed STUN message (the subset the study needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StunMessage {
    pub msg_type: u16,
    pub transaction: [u8; 12],
    pub xor_mapped: Option<Endpoint>,
    pub change_ip: bool,
    pub change_port: bool,
    pub other_address: Option<Endpoint>,
}

impl StunMessage {
    pub fn request(transaction: [u8; 12], change_ip: bool, change_port: bool) -> StunMessage {
        StunMessage {
            msg_type: BINDING_REQUEST,
            transaction,
            xor_mapped: None,
            change_ip,
            change_port,
            other_address: None,
        }
    }

    pub fn response(transaction: [u8; 12], mapped: Endpoint, other: Endpoint) -> StunMessage {
        StunMessage {
            msg_type: BINDING_RESPONSE,
            transaction,
            xor_mapped: Some(mapped),
            change_ip: false,
            change_port: false,
            other_address: Some(other),
        }
    }

    fn push_attr(out: &mut Vec<u8>, attr_type: u16, value: &[u8]) {
        out.extend_from_slice(&attr_type.to_be_bytes());
        out.extend_from_slice(&(value.len() as u16).to_be_bytes());
        out.extend_from_slice(value);
        // Pad to 32-bit boundary.
        while out.len() % 4 != 0 {
            out.push(0);
        }
    }

    fn xor_endpoint_bytes(ep: Endpoint) -> [u8; 8] {
        let mut v = [0u8; 8];
        v[0] = 0;
        v[1] = 0x01; // IPv4 family
        let xport = ep.port ^ (MAGIC_COOKIE >> 16) as u16;
        v[2..4].copy_from_slice(&xport.to_be_bytes());
        let xaddr = u32::from(ep.ip) ^ MAGIC_COOKIE;
        v[4..8].copy_from_slice(&xaddr.to_be_bytes());
        v
    }

    fn plain_endpoint_bytes(ep: Endpoint) -> [u8; 8] {
        let mut v = [0u8; 8];
        v[1] = 0x01;
        v[2..4].copy_from_slice(&ep.port.to_be_bytes());
        v[4..8].copy_from_slice(&u32::from(ep.ip).to_be_bytes());
        v
    }

    /// Serialize (RFC 5389 header + attributes).
    pub fn encode(&self) -> Vec<u8> {
        let mut attrs = Vec::new();
        if self.change_ip || self.change_port {
            let flags: u32 = (u32::from(self.change_ip) << 2) | (u32::from(self.change_port) << 1);
            Self::push_attr(&mut attrs, ATTR_CHANGE_REQUEST, &flags.to_be_bytes());
        }
        if let Some(ep) = self.xor_mapped {
            Self::push_attr(
                &mut attrs,
                ATTR_XOR_MAPPED_ADDRESS,
                &Self::xor_endpoint_bytes(ep),
            );
        }
        if let Some(ep) = self.other_address {
            Self::push_attr(
                &mut attrs,
                ATTR_OTHER_ADDRESS,
                &Self::plain_endpoint_bytes(ep),
            );
        }
        let mut out = Vec::with_capacity(20 + attrs.len());
        out.extend_from_slice(&self.msg_type.to_be_bytes());
        out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
        out.extend_from_slice(&MAGIC_COOKIE.to_be_bytes());
        out.extend_from_slice(&self.transaction);
        out.extend_from_slice(&attrs);
        out
    }

    /// Parse from wire bytes; `None` for anything that is not valid STUN.
    pub fn decode(data: &[u8]) -> Option<StunMessage> {
        if data.len() < 20 {
            return None;
        }
        let msg_type = u16::from_be_bytes([data[0], data[1]]);
        let length = u16::from_be_bytes([data[2], data[3]]) as usize;
        let cookie = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        if cookie != MAGIC_COOKIE || data.len() != 20 + length {
            return None;
        }
        let mut transaction = [0u8; 12];
        transaction.copy_from_slice(&data[8..20]);
        let mut msg = StunMessage {
            msg_type,
            transaction,
            xor_mapped: None,
            change_ip: false,
            change_port: false,
            other_address: None,
        };
        let mut pos = 20;
        while pos + 4 <= data.len() {
            let attr_type = u16::from_be_bytes([data[pos], data[pos + 1]]);
            let attr_len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
            let val_start = pos + 4;
            if val_start + attr_len > data.len() {
                return None;
            }
            let val = &data[val_start..val_start + attr_len];
            match attr_type {
                ATTR_CHANGE_REQUEST if attr_len == 4 => {
                    let flags = u32::from_be_bytes([val[0], val[1], val[2], val[3]]);
                    msg.change_ip = flags & 0x4 != 0;
                    msg.change_port = flags & 0x2 != 0;
                }
                ATTR_XOR_MAPPED_ADDRESS if attr_len == 8 && val[1] == 0x01 => {
                    let xport = u16::from_be_bytes([val[2], val[3]]);
                    let port = xport ^ (MAGIC_COOKIE >> 16) as u16;
                    let xaddr = u32::from_be_bytes([val[4], val[5], val[6], val[7]]);
                    let ip = Ipv4Addr::from(xaddr ^ MAGIC_COOKIE);
                    msg.xor_mapped = Some(Endpoint::new(ip, port));
                }
                ATTR_OTHER_ADDRESS if attr_len == 8 && val[1] == 0x01 => {
                    let port = u16::from_be_bytes([val[2], val[3]]);
                    let ip = Ipv4Addr::from(u32::from_be_bytes([val[4], val[5], val[6], val[7]]));
                    msg.other_address = Some(Endpoint::new(ip, port));
                }
                _ => {}
            }
            pos = val_start + attr_len;
            while pos % 4 != 0 {
                pos += 1;
            }
        }
        Some(msg)
    }
}

/// The STUN service: two hosts (primary/alternate IP), two ports each.
#[derive(Debug, Clone)]
pub struct StunService {
    pub primary_node: NodeId,
    pub alternate_node: NodeId,
    pub primary_ip: Ipv4Addr,
    pub alternate_ip: Ipv4Addr,
    pub port_a: u16,
    pub port_b: u16,
}

impl StunService {
    pub const DEFAULT_PORT_A: u16 = 3478;
    pub const DEFAULT_PORT_B: u16 = 3479;

    pub fn new(
        primary_node: NodeId,
        primary_ip: Ipv4Addr,
        alternate_node: NodeId,
        alternate_ip: Ipv4Addr,
    ) -> StunService {
        StunService {
            primary_node,
            alternate_node,
            primary_ip,
            alternate_ip,
            port_a: Self::DEFAULT_PORT_A,
            port_b: Self::DEFAULT_PORT_B,
        }
    }

    /// The endpoint clients contact first.
    pub fn primary_endpoint(&self) -> Endpoint {
        Endpoint::new(self.primary_ip, self.port_a)
    }

    pub fn alternate_endpoint(&self) -> Endpoint {
        Endpoint::new(self.alternate_ip, self.port_a)
    }

    fn is_service_endpoint(&self, node: NodeId, dst: Endpoint) -> bool {
        let ip_ok = (node == self.primary_node && dst.ip == self.primary_ip)
            || (node == self.alternate_node && dst.ip == self.alternate_ip);
        ip_ok && (dst.port == self.port_a || dst.port == self.port_b)
    }

    /// Handle a packet delivered to either service host. Returns
    /// `(origin node, packet)` emissions — the response may originate from
    /// the *other* host when CHANGE-REQUEST asks for it.
    pub fn handle_packet(&self, node: NodeId, pkt: &Packet) -> Vec<(NodeId, Packet)> {
        let payload = match &pkt.body {
            PacketBody::Udp { payload } => payload,
            _ => return Vec::new(),
        };
        if !self.is_service_endpoint(node, pkt.dst) {
            return Vec::new();
        }
        let Some(req) = StunMessage::decode(payload) else {
            return Vec::new();
        };
        if req.msg_type != BINDING_REQUEST {
            return Vec::new();
        }
        // Pick the response origin per CHANGE-REQUEST.
        let (resp_node, resp_ip) = if req.change_ip {
            if node == self.primary_node {
                (self.alternate_node, self.alternate_ip)
            } else {
                (self.primary_node, self.primary_ip)
            }
        } else {
            (node, pkt.dst.ip)
        };
        let resp_port = if req.change_port {
            if pkt.dst.port == self.port_a {
                self.port_b
            } else {
                self.port_a
            }
        } else {
            pkt.dst.port
        };
        let other = if node == self.primary_node {
            Endpoint::new(self.alternate_ip, self.port_b)
        } else {
            Endpoint::new(self.primary_ip, self.port_b)
        };
        let resp = StunMessage::response(req.transaction, pkt.src, other);
        vec![(
            resp_node,
            Packet::udp(Endpoint::new(resp_ip, resp_port), pkt.src, resp.encode()),
        )]
    }
}

/// Outcome of the classic STUN classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StunClass {
    /// No answer to Test I at all.
    UdpBlocked,
    /// No translation and unsolicited-origin answers arrive.
    OpenInternet,
    /// No translation but a stateful firewall filters.
    SymmetricFirewall,
    /// Behind NAT of the given type.
    Nat(StunNatType),
}

impl StunClass {
    /// The NAT type, if the result indicates address translation.
    pub fn nat_type(self) -> Option<StunNatType> {
        match self {
            StunClass::Nat(t) => Some(t),
            _ => None,
        }
    }
}

/// Result of one classification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StunOutcome {
    pub class: StunClass,
    /// The mapping observed in Test I (the client's public endpoint).
    pub mapped: Option<Endpoint>,
}

/// One STUN transaction: send `req` from the client and await the response.
fn transact(
    net: &mut Network,
    service: &StunService,
    client_node: NodeId,
    client_ep: Endpoint,
    dst: Endpoint,
    req: StunMessage,
) -> Option<StunMessage> {
    let mut response = None;
    let txn = req.transaction;
    pump(
        net,
        vec![(client_node, Packet::udp(client_ep, dst, req.encode()))],
        |node, pkt| {
            if node == client_node {
                if let PacketBody::Udp { payload } = &pkt.body {
                    if let Some(m) = StunMessage::decode(payload) {
                        if m.msg_type == BINDING_RESPONSE && m.transaction == txn {
                            response = Some(m);
                        }
                    }
                }
                Vec::new()
            } else {
                service.handle_packet(node, pkt)
            }
        },
        10_000,
    );
    response
}

fn txn_from(seed: &mut u32) -> [u8; 12] {
    *seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
    let mut t = [0u8; 12];
    t[..4].copy_from_slice(&seed.to_be_bytes());
    t[4..8].copy_from_slice(&seed.rotate_left(13).to_be_bytes());
    t
}

/// Run the RFC 3489 classification for a client socket.
pub fn classify(
    net: &mut Network,
    service: &StunService,
    client_node: NodeId,
    client_ep: Endpoint,
) -> StunOutcome {
    let mut seed = u32::from(client_ep.ip) ^ (client_ep.port as u32) | 1;

    // Test I: plain binding request to the primary endpoint.
    let t1 = transact(
        net,
        service,
        client_node,
        client_ep,
        service.primary_endpoint(),
        StunMessage::request(txn_from(&mut seed), false, false),
    );
    let Some(t1) = t1 else {
        return StunOutcome {
            class: StunClass::UdpBlocked,
            mapped: None,
        };
    };
    let mapped = t1
        .xor_mapped
        .expect("server always includes XOR-MAPPED-ADDRESS");

    // Test II: ask for an answer from the other IP *and* port.
    let t2 = transact(
        net,
        service,
        client_node,
        client_ep,
        service.primary_endpoint(),
        StunMessage::request(txn_from(&mut seed), true, true),
    );

    if mapped == client_ep {
        // No translation on the path.
        let class = if t2.is_some() {
            StunClass::OpenInternet
        } else {
            StunClass::SymmetricFirewall
        };
        return StunOutcome {
            class,
            mapped: Some(mapped),
        };
    }

    if t2.is_some() {
        return StunOutcome {
            class: StunClass::Nat(StunNatType::FullCone),
            mapped: Some(mapped),
        };
    }

    // Test I': binding request to the alternate address; a different
    // mapping means destination-dependent mapping — symmetric.
    let t1b = transact(
        net,
        service,
        client_node,
        client_ep,
        service.alternate_endpoint(),
        StunMessage::request(txn_from(&mut seed), false, false),
    );
    if let Some(t1b) = t1b {
        if t1b.xor_mapped != Some(mapped) {
            return StunOutcome {
                class: StunClass::Nat(StunNatType::Symmetric),
                mapped: Some(mapped),
            };
        }
    }

    // Test III: change port only (same IP): admitted ⇒ address-restricted.
    let t3 = transact(
        net,
        service,
        client_node,
        client_ep,
        service.primary_endpoint(),
        StunMessage::request(txn_from(&mut seed), false, true),
    );
    let class = if t3.is_some() {
        StunClass::Nat(StunNatType::AddressRestricted)
    } else {
        StunClass::Nat(StunNatType::PortAddressRestricted)
    };
    StunOutcome {
        class,
        mapped: Some(mapped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::{FilteringBehavior, MappingBehavior, NatConfig};
    use netcore::ip;
    use simnet::RealmId;

    fn lab(net: &mut Network) -> StunService {
        let p = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 50), vec![]);
        let a = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 51), vec![]);
        StunService::new(p, ip(203, 0, 113, 50), a, ip(203, 0, 113, 51))
    }

    #[test]
    fn wire_roundtrip_request() {
        let req = StunMessage::request([7; 12], true, false);
        let enc = req.encode();
        assert_eq!(StunMessage::decode(&enc), Some(req));
    }

    #[test]
    fn wire_roundtrip_response() {
        let resp = StunMessage::response(
            [9; 12],
            Endpoint::new(ip(198, 51, 100, 7), 54321),
            Endpoint::new(ip(203, 0, 113, 51), 3479),
        );
        let enc = resp.encode();
        let dec = StunMessage::decode(&enc).unwrap();
        assert_eq!(
            dec.xor_mapped,
            Some(Endpoint::new(ip(198, 51, 100, 7), 54321))
        );
        assert_eq!(
            dec.other_address,
            Some(Endpoint::new(ip(203, 0, 113, 51), 3479))
        );
    }

    #[test]
    fn decode_rejects_non_stun() {
        assert_eq!(StunMessage::decode(b"hello"), None);
        assert_eq!(StunMessage::decode(&[0u8; 19]), None);
        // Wrong cookie.
        let mut msg = StunMessage::request([1; 12], false, false).encode();
        msg[4] = 0;
        assert_eq!(StunMessage::decode(&msg), None);
        // Truncated length.
        let msg = StunMessage::request([1; 12], true, false).encode();
        assert_eq!(StunMessage::decode(&msg[..msg.len() - 1]), None);
    }

    #[test]
    fn xor_encoding_actually_xors() {
        let mapped = Endpoint::new(ip(192, 0, 2, 1), 8000);
        let other = Endpoint::new(ip(203, 0, 113, 51), 3479);
        let resp = StunMessage::response([0; 12], mapped, other).encode();
        // The raw bytes must NOT contain the plain mapped address (that is
        // the point of XOR-MAPPED-ADDRESS: NATs can't rewrite what they
        // can't find). OTHER-ADDRESS is deliberately plain.
        let raw = u32::from(mapped.ip).to_be_bytes();
        assert!(!resp.windows(4).any(|w| w == raw));
        let other_raw = u32::from(other.ip).to_be_bytes();
        assert!(resp.windows(4).any(|w| w == other_raw));
    }

    #[test]
    fn public_client_is_open_internet() {
        let mut net = Network::new();
        let service = lab(&mut net);
        let c = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 9), vec![]);
        let out = classify(
            &mut net,
            &service,
            c,
            Endpoint::new(ip(198, 51, 100, 9), 5000),
        );
        assert_eq!(out.class, StunClass::OpenInternet);
        assert_eq!(out.mapped, Some(Endpoint::new(ip(198, 51, 100, 9), 5000)));
    }

    fn natted_client(
        net: &mut Network,
        mapping: MappingBehavior,
        filtering: FilteringBehavior,
    ) -> (NodeId, Endpoint) {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = mapping;
        cfg.filtering = filtering;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            3,
        );
        let c = net.add_host(realm, ip(100, 64, 0, 10), vec![]);
        (c, Endpoint::new(ip(100, 64, 0, 10), 5000))
    }

    #[test]
    fn classify_full_cone() {
        let mut net = Network::new();
        let service = lab(&mut net);
        let (c, ep) = natted_client(
            &mut net,
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::EndpointIndependent,
        );
        let out = classify(&mut net, &service, c, ep);
        assert_eq!(out.class, StunClass::Nat(StunNatType::FullCone));
        assert_ne!(out.mapped, Some(ep), "must observe a translated mapping");
    }

    #[test]
    fn classify_address_restricted() {
        let mut net = Network::new();
        let service = lab(&mut net);
        let (c, ep) = natted_client(
            &mut net,
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressDependent,
        );
        let out = classify(&mut net, &service, c, ep);
        assert_eq!(out.class, StunClass::Nat(StunNatType::AddressRestricted));
    }

    #[test]
    fn classify_port_restricted() {
        let mut net = Network::new();
        let service = lab(&mut net);
        let (c, ep) = natted_client(
            &mut net,
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressAndPortDependent,
        );
        let out = classify(&mut net, &service, c, ep);
        assert_eq!(
            out.class,
            StunClass::Nat(StunNatType::PortAddressRestricted)
        );
    }

    #[test]
    fn classify_symmetric() {
        let mut net = Network::new();
        let service = lab(&mut net);
        let (c, ep) = natted_client(
            &mut net,
            MappingBehavior::AddressAndPortDependent,
            FilteringBehavior::AddressAndPortDependent,
        );
        let out = classify(&mut net, &service, c, ep);
        assert_eq!(out.class, StunClass::Nat(StunNatType::Symmetric));
    }

    #[test]
    fn classification_agrees_with_ground_truth_for_canonical_types() {
        use nat_engine::{FilteringBehavior as F, MappingBehavior as M};
        // The four canonical RFC 3489 combinations (mapping and filtering
        // correlated as deployed NATs do).
        let cases = [
            (M::EndpointIndependent, F::EndpointIndependent),
            (M::EndpointIndependent, F::AddressDependent),
            (M::EndpointIndependent, F::AddressAndPortDependent),
            (M::AddressDependent, F::AddressAndPortDependent),
            (M::AddressAndPortDependent, F::AddressAndPortDependent),
        ];
        for (m, f) in cases {
            let mut net = Network::new();
            let service = lab(&mut net);
            let (c, ep) = natted_client(&mut net, m, f);
            let truth = {
                let mut cfg = NatConfig::cgn_default();
                cfg.mapping = m;
                cfg.filtering = f;
                cfg.stun_type()
            };
            let out = classify(&mut net, &service, c, ep);
            assert_eq!(
                out.class,
                StunClass::Nat(truth),
                "mapping {m:?} filtering {f:?} must classify as {truth:?}"
            );
        }
    }

    #[test]
    fn classic_stun_limitation_symmetric_mapping_with_open_filtering() {
        // A NAT with destination-dependent mapping but endpoint-independent
        // filtering is misclassified as full cone by the classic RFC 3489
        // sequence (Test II succeeds before the symmetric check runs).
        // Such devices are not among the canonical deployed types; we keep
        // the classifier faithful to the algorithm the paper used and
        // document the limitation here.
        use nat_engine::{FilteringBehavior as F, MappingBehavior as M};
        let mut net = Network::new();
        let service = lab(&mut net);
        let (c, ep) = natted_client(&mut net, M::AddressAndPortDependent, F::EndpointIndependent);
        let out = classify(&mut net, &service, c, ep);
        assert_eq!(out.class, StunClass::Nat(StunNatType::FullCone));
    }

    #[test]
    fn cascaded_nats_report_most_restrictive() {
        // NAT444: permissive home CPE behind a symmetric CGN — STUN sees
        // symmetric (§6.5: the most restrictive on-path behaviour wins).
        let mut net = Network::new();
        let service = lab(&mut net);
        let mut cgn = NatConfig::cgn_default();
        cgn.mapping = MappingBehavior::AddressAndPortDependent;
        let (_, cgn_realm) = net.add_nat(
            cgn,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            4,
        );
        let mut cpe = NatConfig::home_cpe();
        cpe.filtering = FilteringBehavior::EndpointIndependent; // permissive CPE
        let (_, home) = net.add_nat(
            cpe,
            vec![ip(100, 64, 0, 30)],
            cgn_realm,
            vec![],
            ip(192, 168, 1, 1),
            true,
            5,
        );
        let c = net.add_host(home, ip(192, 168, 1, 50), vec![]);
        let out = classify(
            &mut net,
            &service,
            c,
            Endpoint::new(ip(192, 168, 1, 50), 5000),
        );
        assert_eq!(out.class, StunClass::Nat(StunNatType::Symmetric));
    }
}
