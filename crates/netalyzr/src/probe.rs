//! Campaign-scale active probes.
//!
//! The full [`crate::session`] suite (10 TCP flows, STUN, TTL
//! enumeration with idle phases) is what the paper's client runs; at
//! detection-campaign scale (hundreds of vantage points against
//! 100k-subscriber worlds) the campaign needs the same observables at
//! a fraction of the cost. This module provides the two primitives the
//! `cgn-detect` feature extractor composes:
//!
//! * [`udp_mapped`] — one UDP PING/PONG exchange against the echo
//!   server, returning the externally observed source endpoint (the
//!   `IPpub`/port oracle, one packet each way);
//! * [`traceroute`] — the TTL walk of the client–server path,
//!   returning every answering hop address in order (the input of the
//!   reserved-hop realm analysis, Fig. 11's distance observable).

use crate::servers::{EchoServer, MeasurementLab};
use netcore::{Endpoint, Packet, PacketBody};
use simnet::{pump, Network, NodeId};
use std::net::Ipv4Addr;

/// One UDP PING from `local`; returns the source endpoint the echo
/// server observed, or `None` when the exchange failed in either
/// direction (no mapping admitted, reply filtered, …).
pub fn udp_mapped(
    net: &mut Network,
    lab: &MeasurementLab,
    client: NodeId,
    local: Endpoint,
) -> Option<Endpoint> {
    let mut observed = None;
    pump(
        net,
        vec![(
            client,
            Packet::udp(local, lab.echo.udp_endpoint(), b"PING".to_vec()),
        )],
        |node, p| {
            if node == client {
                if let PacketBody::Udp { payload } = &p.body {
                    if payload.starts_with(b"PONG ") {
                        observed = EchoServer::parse_addr_reply(&payload[5..]);
                    }
                }
                Vec::new()
            } else {
                lab.dispatch(node, p)
            }
        },
        1_000,
    );
    observed
}

/// TTL walk toward the echo server: probe TTL `1..` and collect the
/// ICMP time-exceeded sources until the first TTL whose PING is
/// answered. Returns `(hops, reached)` — the answering middle-hop
/// addresses in path order, and whether the server was reached within
/// `max_hops`.
pub fn traceroute(
    net: &mut Network,
    lab: &MeasurementLab,
    client: NodeId,
    local: Endpoint,
    max_hops: usize,
) -> (Vec<Ipv4Addr>, bool) {
    let mut hops = Vec::new();
    for ttl in 1..=max_hops as u8 {
        let probe = Packet::udp(
            Endpoint::new(local.ip, local.port.wrapping_add(ttl as u16)),
            lab.echo.udp_endpoint(),
            b"PING".to_vec(),
        )
        .with_ttl(ttl);
        let mut icmp_src = None;
        let mut answered = false;
        pump(
            net,
            vec![(client, probe)],
            |node, p| {
                if node == client {
                    match &p.body {
                        PacketBody::Icmp { .. } => icmp_src = Some(p.src.ip),
                        PacketBody::Udp { payload } if payload.starts_with(b"PONG ") => {
                            answered = true;
                        }
                        _ => {}
                    }
                    Vec::new()
                } else {
                    lab.dispatch(node, p)
                }
            },
            1_000,
        );
        if answered {
            return (hops, true);
        }
        match icmp_src {
            Some(a) => hops.push(a),
            // Dead hop (e.g. a NAT drop): the walk cannot see further.
            None => return (hops, false),
        }
    }
    (hops, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::{FilteringBehavior, NatConfig};
    use netcore::ip;
    use simnet::RealmId;

    #[test]
    fn mapped_and_traceroute_match_ground_truth() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![ip(198, 18, 0, 1)],
            ip(100, 64, 0, 1),
            false,
            7,
        );
        let c = net.add_host(realm, ip(100, 64, 0, 20), vec![ip(198, 18, 0, 9)]);
        let local = Endpoint::new(ip(100, 64, 0, 20), 41_000);
        let mapped = udp_mapped(&mut net, &lab, c, local).expect("exchange works");
        assert_eq!(mapped.ip, ip(198, 51, 100, 1));

        let truth: Vec<Ipv4Addr> = net
            .path_hops(c, lab.echo.ip)
            .expect("routable")
            .iter()
            .map(|h| h.addr)
            .collect();
        let (hops, reached) = traceroute(&mut net, &lab, c, local, 20);
        assert!(reached);
        assert_eq!(hops, truth);
        // The CGN's internal gateway is visible in shared space.
        assert!(hops.contains(&ip(100, 64, 0, 1)));
    }

    #[test]
    fn public_client_sees_no_reserved_hops() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let c = net.add_host(
            RealmId::PUBLIC,
            ip(198, 51, 100, 9),
            vec![ip(198, 18, 4, 1)],
        );
        let local = Endpoint::new(ip(198, 51, 100, 9), 41_000);
        let mapped = udp_mapped(&mut net, &lab, c, local).expect("works");
        assert_eq!(mapped, local, "no translation on the path");
        let (hops, reached) = traceroute(&mut net, &lab, c, local, 20);
        assert!(reached);
        assert!(hops
            .iter()
            .all(|h| netcore::classify_reserved(*h).is_none()));
    }
}
