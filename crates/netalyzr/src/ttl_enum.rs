//! TTL-driven NAT enumeration — the reachability experiment of Fig. 10.
//!
//! The test localizes stateful middleboxes on the client–server path and
//! bounds their mapping timeouts:
//!
//! 1. the client opens a UDP flow to the echo server (stage *a*), learning
//!    its externally visible endpoint;
//! 2. for an idle period `tidle`, both endpoints send **TTL-limited
//!    keepalives** every 10 s (stage *b*): the client's die at the hop
//!    under test `j` (refreshing hops `1..j-1`), the server's die at `j`
//!    from the other side (refreshing hops `j+1..m`) — so every hop
//!    *except* `j` sees traffic;
//! 3. after `tidle`, the server sends a full-TTL probe to the client's
//!    external endpoint (stage *c*). If it no longer arrives, hop `j` is a
//!    stateful middlebox whose mapping expired: `timeout ≤ tidle`.
//!
//! Sweeping `j` over the path localizes every NAT no further than 200 s of
//! idle time can reveal (the paper's crowdsourced-runtime bound); a binary
//! search over `tidle` then brackets each NAT's timeout to 10 s.

use crate::servers::MeasurementLab;
use netcore::{Endpoint, Packet, PacketBody, SimDuration};
use simnet::{pump, Network, NodeId};

/// Test parameters (paper defaults).
#[derive(Debug, Clone)]
pub struct TtlEnumConfig {
    /// Keepalive interval — the measurement granularity (10 s).
    pub probe_interval: SimDuration,
    /// Maximum idle time tested (200 s: "the maximum possible value
    /// without prolonging the overall runtime").
    pub max_idle: SimDuration,
    /// Cap on the number of hops enumerated.
    pub max_hops: usize,
}

impl Default for TtlEnumConfig {
    fn default() -> Self {
        TtlEnumConfig {
            probe_interval: SimDuration::from_secs(10),
            max_idle: SimDuration::from_secs(200),
            max_hops: 20,
        }
    }
}

/// A stateful middlebox found on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedNat {
    /// 1-based hop index from the client.
    pub hop: usize,
    /// Largest tested idle time the mapping survived (lower bound,
    /// exclusive). Zero when even the shortest idle expired it.
    pub timeout_gt: SimDuration,
    /// Smallest tested idle time at which the mapping was gone (inclusive
    /// upper bound).
    pub timeout_le: SimDuration,
}

impl DetectedNat {
    /// Midpoint estimate of the timeout, in seconds.
    pub fn timeout_estimate_secs(&self) -> u64 {
        (self.timeout_gt.as_secs() + self.timeout_le.as_secs()) / 2
    }
}

/// Result of the enumeration for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtlEnumResult {
    /// Whether the baseline UDP exchange worked at all.
    pub udp_reachable: bool,
    /// Number of middle hops between client and server (traceroute count).
    pub path_len: usize,
    /// The client's endpoint as the server saw it.
    pub observed_public: Option<Endpoint>,
    /// Whether the observed address differs from the device address.
    pub ip_mismatch: bool,
    /// Stateful middleboxes found, ordered by hop.
    pub detected: Vec<DetectedNat>,
}

impl TtlEnumResult {
    /// Hop distance of the most distant middlebox (Fig. 11).
    pub fn most_distant_nat(&self) -> Option<usize> {
        self.detected.last().map(|d| d.hop)
    }
}

/// State shared by the driver: the client under test.
struct Ctx<'a> {
    net: &'a mut Network,
    lab: &'a MeasurementLab,
    client_node: NodeId,
}

impl Ctx<'_> {
    /// Send `pkt` from the client, pump the lab's replies, and return the
    /// payloads delivered back to the client.
    fn client_exchange(&mut self, pkt: Packet) -> Vec<Packet> {
        let mut received = Vec::new();
        let client = self.client_node;
        let lab = self.lab;
        pump(
            self.net,
            vec![(client, pkt)],
            |node, p| {
                if node == client {
                    received.push(p.clone());
                    Vec::new()
                } else {
                    lab.dispatch(node, p)
                }
            },
            10_000,
        );
        received
    }

    /// Send `pkt` from the echo server; report whether anything reached
    /// the client.
    fn server_send(&mut self, pkt: Packet) -> bool {
        let mut reached = false;
        let client = self.client_node;
        let lab = self.lab;
        pump(
            self.net,
            vec![(lab.echo.node, pkt)],
            |node, p| {
                if node == client {
                    if matches!(p.body, PacketBody::Udp { .. }) {
                        reached = true;
                    }
                    Vec::new()
                } else {
                    lab.dispatch(node, p)
                }
            },
            10_000,
        );
        reached
    }
}

/// Run the full enumeration for a client socket at `client_ep`.
///
/// `port_base` seeds the client-side ephemeral ports; every reachability
/// experiment uses a fresh flow (fresh port) as the paper's test does.
pub fn run_ttl_enumeration(
    net: &mut Network,
    lab: &MeasurementLab,
    client_node: NodeId,
    client_ep: Endpoint,
    config: &TtlEnumConfig,
) -> TtlEnumResult {
    let mut ctx = Ctx {
        net,
        lab,
        client_node,
    };
    let udp_dst = lab.echo.udp_endpoint();

    // Baseline: does a plain exchange work, and what does the server see?
    let observed_public = ping_observed(&mut ctx, client_ep, udp_dst);
    let Some(observed_public) = observed_public else {
        return TtlEnumResult {
            udp_reachable: false,
            path_len: 0,
            observed_public: None,
            ip_mismatch: false,
            detected: Vec::new(),
        };
    };
    let ip_mismatch = observed_public.ip != client_ep.ip;

    // Traceroute: find the path length m (packets with TTL t die at hop t;
    // the first TTL whose PING is answered is m + 1).
    let mut path_len = 0;
    for t in 1..=config.max_hops as u8 {
        let probe = Packet::udp(
            Endpoint::new(client_ep.ip, 19_000 + (client_ep.port % 512) + t as u16),
            udp_dst,
            b"PING".to_vec(),
        )
        .with_ttl(t);
        let replies = ctx.client_exchange(probe);
        let answered = replies.iter().any(
            |p| matches!(&p.body, PacketBody::Udp { payload } if payload.starts_with(b"PONG")),
        );
        if answered {
            path_len = (t - 1) as usize;
            break;
        }
    }
    if path_len == 0 {
        // Path longer than max_hops — give up on enumeration.
        return TtlEnumResult {
            udp_reachable: true,
            path_len: 0,
            observed_public: Some(observed_public),
            ip_mismatch,
            detected: Vec::new(),
        };
    }

    // Localize stateful hops at the maximum idle time, then bracket each
    // timeout by binary search over multiples of the probe interval.
    // Fresh flows draw from a private counter folded into a safe port
    // band so high OS ephemeral ports cannot overflow.
    let mut flow_counter: u32 = client_ep.port as u32;
    let mut fresh_port = move || {
        flow_counter += 1;
        20_000 + (flow_counter.wrapping_mul(7919) % 40_000) as u16
    };
    let mut detected = Vec::new();
    for hop in 1..=path_len {
        let port_seq = fresh_port();
        let expired = reachability_experiment(
            &mut ctx,
            Endpoint::new(client_ep.ip, port_seq),
            udp_dst,
            hop,
            path_len,
            config.max_idle,
            config.probe_interval,
        );
        let Some(true) = expired else { continue };

        // Mapping expired within max_idle: bracket the timeout.
        let steps = config.max_idle.as_millis() / config.probe_interval.as_millis();
        let (mut lo, mut hi) = (0u64, steps); // timeout in (lo, hi] steps
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let port_seq = fresh_port();
            let tidle = SimDuration::from_millis(mid * config.probe_interval.as_millis());
            match reachability_experiment(
                &mut ctx,
                Endpoint::new(client_ep.ip, port_seq),
                udp_dst,
                hop,
                path_len,
                tidle,
                config.probe_interval,
            ) {
                Some(true) => hi = mid,
                Some(false) => lo = mid,
                None => break, // flow setup failed; keep current bracket
            }
        }
        detected.push(DetectedNat {
            hop,
            timeout_gt: SimDuration::from_millis(lo * config.probe_interval.as_millis()),
            timeout_le: SimDuration::from_millis(hi * config.probe_interval.as_millis()),
        });
    }

    TtlEnumResult {
        udp_reachable: true,
        path_len,
        observed_public: Some(observed_public),
        ip_mismatch,
        detected,
    }
}

/// Stage (a) helper: one PING exchange; returns the server-observed source.
fn ping_observed(ctx: &mut Ctx<'_>, client_ep: Endpoint, udp_dst: Endpoint) -> Option<Endpoint> {
    let replies = ctx.client_exchange(Packet::udp(client_ep, udp_dst, b"PING".to_vec()));
    replies.iter().find_map(|p| match &p.body {
        PacketBody::Udp { payload } if payload.starts_with(b"PONG ADDR ") => {
            crate::servers::EchoServer::parse_addr_reply(&payload[5..])
        }
        _ => None,
    })
}

/// One reachability experiment (Fig. 10) for `hop` with idle time `tidle`.
///
/// Returns `Some(true)` if the hop's state expired (server probe failed),
/// `Some(false)` if the probe still got through, `None` if the flow could
/// not even be established.
fn reachability_experiment(
    ctx: &mut Ctx<'_>,
    flow_ep: Endpoint,
    udp_dst: Endpoint,
    hop: usize,
    path_len: usize,
    tidle: SimDuration,
    probe_interval: SimDuration,
) -> Option<bool> {
    // (a) Initialization: open the flow and learn its external endpoint.
    let ext = ping_observed(ctx, flow_ep, udp_dst)?;

    // (b) Idle with TTL-limited keepalives. Client TTL = hop (dies at the
    // hop under test, refreshing everything before it); server TTL =
    // path_len + 1 - hop (dies there from the other side).
    let client_ttl = hop as u8;
    let server_ttl = (path_len + 1 - hop) as u8;
    let mut elapsed = SimDuration::ZERO;
    while elapsed < tidle {
        let step = if tidle - elapsed < probe_interval {
            tidle - elapsed
        } else {
            probe_interval
        };
        ctx.net.advance(step);
        elapsed = elapsed + step;
        if elapsed >= tidle {
            break; // the final interval ends with the probe, not keepalives
        }
        let ka_c = Packet::udp(flow_ep, udp_dst, b"KA".to_vec()).with_ttl(client_ttl);
        let _ = ctx.client_exchange(ka_c);
        let ka_s = Packet::udp(udp_dst, ext, b"KA".to_vec()).with_ttl(server_ttl);
        let _ = ctx.server_send(ka_s);
    }

    // (c) The server probes the client's external endpoint.
    let probe = Packet::udp(udp_dst, ext, b"PROBE".to_vec());
    Some(!ctx.server_send(probe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::NatConfig;
    use netcore::{ip, SimDuration};
    use simnet::RealmId;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// Public client: reachable, no mismatch, no NATs found.
    #[test]
    fn public_client_clean_path() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let c = net.add_host(
            RealmId::PUBLIC,
            ip(198, 51, 100, 9),
            vec![ip(198, 19, 0, 1)],
        );
        let r = run_ttl_enumeration(
            &mut net,
            &lab,
            c,
            Endpoint::new(ip(198, 51, 100, 9), 40000),
            &TtlEnumConfig::default(),
        );
        assert!(r.udp_reachable);
        assert!(!r.ip_mismatch);
        // Path: client router + server core router = 2 middle hops.
        assert_eq!(r.path_len, 2);
        assert!(r.detected.is_empty());
    }

    /// Single CGN at a known hop with a known timeout: found and bracketed.
    #[test]
    fn cgn_localized_and_timeout_bracketed() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = secs(65);
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![ip(198, 19, 2, 1)],
            ip(100, 64, 0, 1),
            false,
            7,
        );
        // Device two aggregation routers from the CGN: CGN is hop 3.
        let c = net.add_host(
            realm,
            ip(100, 64, 0, 20),
            vec![ip(100, 64, 255, 1), ip(100, 64, 255, 2)],
        );
        let r = run_ttl_enumeration(
            &mut net,
            &lab,
            c,
            Endpoint::new(ip(100, 64, 0, 20), 40000),
            &TtlEnumConfig::default(),
        );
        assert!(r.udp_reachable);
        assert!(r.ip_mismatch);
        // Path: r1, r2, CGN, ext router, server core router = 5 hops.
        assert_eq!(r.path_len, 5);
        assert_eq!(
            r.detected.len(),
            1,
            "exactly one stateful hop: {:?}",
            r.detected
        );
        let d = r.detected[0];
        assert_eq!(d.hop, 3, "CGN sits at hop 3");
        // True timeout 65 s must be bracketed by (60, 70].
        assert_eq!(d.timeout_gt, secs(60));
        assert_eq!(d.timeout_le, secs(70));
        assert_eq!(d.timeout_estimate_secs(), 65);
        assert_eq!(r.most_distant_nat(), Some(3));
    }

    /// NAT444: both the CPE (hop 1) and the CGN are found with their own
    /// timeouts.
    #[test]
    fn nat444_finds_both_layers() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cgn_cfg = NatConfig::cgn_default();
        cgn_cfg.udp_timeout = secs(35);
        let (_, cgn_realm) = net.add_nat(
            cgn_cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![ip(198, 19, 2, 1)],
            ip(100, 64, 0, 1),
            false,
            7,
        );
        let mut cpe_cfg = NatConfig::home_cpe(); // 65 s
        cpe_cfg.filtering = nat_engine::FilteringBehavior::AddressAndPortDependent;
        let (_, home) = net.add_nat(
            cpe_cfg,
            vec![ip(100, 64, 0, 30)],
            cgn_realm,
            vec![ip(100, 64, 255, 3)],
            ip(192, 168, 1, 1),
            true,
            8,
        );
        let c = net.add_host(home, ip(192, 168, 1, 50), vec![]);
        let r = run_ttl_enumeration(
            &mut net,
            &lab,
            c,
            Endpoint::new(ip(192, 168, 1, 50), 40000),
            &TtlEnumConfig::default(),
        );
        // Path: CPE, agg router, CGN, ext router, core router = 5 hops.
        assert_eq!(r.path_len, 5);
        assert_eq!(r.detected.len(), 2, "{:?}", r.detected);
        assert_eq!(r.detected[0].hop, 1, "CPE at hop 1");
        assert_eq!(r.detected[0].timeout_estimate_secs(), 65);
        assert_eq!(r.detected[1].hop, 3, "CGN at hop 3");
        assert_eq!(r.detected[1].timeout_estimate_secs(), 35);
    }

    /// A NAT whose timeout exceeds the 200 s test budget goes unnoticed —
    /// the 30.9% row of Table 7.
    #[test]
    fn long_timeout_nat_missed() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = secs(300);
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            7,
        );
        let c = net.add_host(realm, ip(100, 64, 0, 20), vec![]);
        let r = run_ttl_enumeration(
            &mut net,
            &lab,
            c,
            Endpoint::new(ip(100, 64, 0, 20), 40000),
            &TtlEnumConfig::default(),
        );
        assert!(r.ip_mismatch, "translation is still visible");
        assert!(r.detected.is_empty(), "no expired mapping within 200 s");
    }

    /// A stateful firewall (no translation) is detected as a stateful hop
    /// while the addresses match — the 0.5% row of Table 7.
    #[test]
    fn stateful_firewall_detected_without_mismatch() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let client_ip = ip(198, 51, 100, 9);
        let (_, realm) = net.add_nat(
            NatConfig::stateful_firewall(),
            vec![client_ip],
            RealmId::PUBLIC,
            vec![],
            ip(198, 51, 100, 254),
            false,
            7,
        );
        let c = net.add_host(realm, client_ip, vec![]);
        let r = run_ttl_enumeration(
            &mut net,
            &lab,
            c,
            Endpoint::new(client_ip, 40000),
            &TtlEnumConfig::default(),
        );
        assert!(!r.ip_mismatch, "a firewall does not translate");
        assert_eq!(r.detected.len(), 1, "{:?}", r.detected);
        // True timeout 60 s: expired at exactly 60 s of idle → (50, 60].
        assert_eq!(r.detected[0].timeout_gt, secs(50));
        assert_eq!(r.detected[0].timeout_le, secs(60));
    }
}
