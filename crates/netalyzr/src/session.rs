//! One full Netalyzr session.
//!
//! A "session" is one execution of the client test suite from a subscriber
//! device (§4.2, §6.2–6.5):
//!
//! * collect `IPdev` (the device address) and, where available via UPnP,
//!   `IPcpe` (the CPE router's WAN address);
//! * open **10 sequential TCP flows** to the echo server's high port and
//!   record the source endpoint the server observed per flow — the port
//!   translation and IP pooling oracle (Figs 8/9, Table 6);
//! * run the STUN classification (§6.5, Fig. 13);
//! * run the TTL-driven NAT enumeration (§6.3–6.4, Figs 11/12, Table 7).

use crate::servers::{EchoServer, MeasurementLab};
use crate::stun::{classify, StunOutcome};
use crate::ttl_enum::{run_ttl_enumeration, TtlEnumConfig, TtlEnumResult};
use netcore::{Endpoint, Packet, PacketBody, SimDuration, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{pump, Network, NodeId};
use std::net::Ipv4Addr;

/// How the client operating system picks ephemeral source ports — visible
/// in Fig. 8(a)'s "OS ephemeral ports" histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsPortPolicy {
    /// The OS ephemeral range, e.g. Linux `32768..=60999`.
    pub range: (u16, u16),
    /// Sequential (Linux-style counter) vs random-in-range selection.
    pub sequential: bool,
}

impl OsPortPolicy {
    /// Linux-style: sequential within `32768..=60999`.
    pub fn linux() -> OsPortPolicy {
        OsPortPolicy {
            range: (32_768, 60_999),
            sequential: true,
        }
    }

    /// Windows-style: random within `49152..=65535`.
    pub fn windows() -> OsPortPolicy {
        OsPortPolicy {
            range: (49_152, 65_535),
            sequential: false,
        }
    }

    /// Draw `n` source ports.
    pub fn draw(&self, n: usize, rng: &mut StdRng) -> Vec<u16> {
        let span = (self.range.1 - self.range.0) as u32 + 1;
        if self.sequential {
            let start = rng.gen_range(0..span);
            (0..n as u32)
                .map(|i| self.range.0 + ((start + i) % span) as u16)
                .collect()
        } else {
            (0..n)
                .map(|_| rng.gen_range(self.range.0..=self.range.1))
                .collect()
        }
    }
}

/// The client under test.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    pub node: NodeId,
    pub addr: Ipv4Addr,
    pub os_ports: OsPortPolicy,
    /// The CPE's WAN address if the CPE answers UPnP (None: no CPE or no
    /// UPnP). Netalyzr obtains this via an IGD `GetExternalIPAddress`
    /// call inside the home network; the topology provides it out of band.
    pub upnp_cpe_external: Option<Ipv4Addr>,
    /// Identifier of the CPE model as reported via UPnP (Fig. 8b groups
    /// port-preservation behaviour per model).
    pub upnp_model: Option<String>,
    pub run_stun: bool,
    pub run_ttl: bool,
    /// TCP flows in the port test (10 in the paper).
    pub port_flows: usize,
}

/// One TCP flow of the port test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortFlow {
    /// The ephemeral port the device chose.
    pub local_port: u16,
    /// The source endpoint the server observed (None: flow failed).
    pub observed: Option<Endpoint>,
}

/// The 10-flow port test outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortTestResult {
    pub flows: Vec<PortFlow>,
}

impl PortTestResult {
    /// Flows that completed.
    pub fn observed_flows(&self) -> impl Iterator<Item = (u16, Endpoint)> + '_ {
        self.flows
            .iter()
            .filter_map(|f| f.observed.map(|o| (f.local_port, o)))
    }

    /// Count of flows whose source port survived translation.
    pub fn preserved_count(&self) -> usize {
        self.observed_flows().filter(|(l, o)| *l == o.port).count()
    }

    /// Distinct public IPs observed across flows (IP pooling signal).
    pub fn distinct_public_ips(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self.observed_flows().map(|(_, o)| o.ip).collect();
        ips.sort();
        ips.dedup();
        ips
    }
}

/// Everything one session produces.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The device's local address (`IPdev`).
    pub ip_dev: Ipv4Addr,
    /// The CPE WAN address via UPnP (`IPcpe`), when available.
    pub ip_cpe: Option<Ipv4Addr>,
    /// The CPE model string via UPnP, when available.
    pub cpe_model: Option<String>,
    pub port_test: PortTestResult,
    pub stun: Option<StunOutcome>,
    pub ttl: Option<TtlEnumResult>,
}

impl SessionReport {
    /// The session's primary public address (`IPpub`): the first observed
    /// flow source.
    pub fn ip_pub(&self) -> Option<Ipv4Addr> {
        self.port_test.observed_flows().next().map(|(_, o)| o.ip)
    }

    /// Whether multiple public addresses appeared within the session
    /// (arbitrary pooling indicator, §6.2).
    pub fn saw_multiple_public_ips(&self) -> bool {
        self.port_test.distinct_public_ips().len() > 1
    }
}

/// Run one TCP flow: handshake, `WHOAMI`, collect the `ADDR` report.
fn run_tcp_flow(
    net: &mut Network,
    lab: &MeasurementLab,
    client_node: NodeId,
    local: Endpoint,
) -> Option<Endpoint> {
    let dst = lab.echo.tcp_endpoint();
    let mut observed = None;
    pump(
        net,
        vec![(client_node, Packet::tcp(local, dst, TcpFlags::SYN, vec![]))],
        |node, pkt| {
            if node == client_node {
                if let PacketBody::Tcp { flags, payload } = &pkt.body {
                    if flags.syn && flags.ack {
                        return vec![(
                            client_node,
                            Packet::tcp(local, dst, TcpFlags::ACK, b"WHOAMI".to_vec()),
                        )];
                    }
                    if let Some(ep) = EchoServer::parse_addr_reply(payload) {
                        observed = Some(ep);
                        // Close politely.
                        return vec![(client_node, Packet::tcp(local, dst, TcpFlags::FIN, vec![]))];
                    }
                }
                Vec::new()
            } else {
                lab.dispatch(node, pkt)
            }
        },
        1_000,
    );
    observed
}

/// Execute the full test suite for one client.
pub fn run_session(
    net: &mut Network,
    lab: &MeasurementLab,
    spec: &ClientSpec,
    seed: u64,
) -> SessionReport {
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Port test: sequential TCP flows. ---
    let ports = spec.os_ports.draw(spec.port_flows, &mut rng);
    let mut flows = Vec::with_capacity(ports.len());
    for p in ports {
        let observed = run_tcp_flow(net, lab, spec.node, Endpoint::new(spec.addr, p));
        flows.push(PortFlow {
            local_port: p,
            observed,
        });
        // Flows are sequential, not simultaneous: a short pause between
        // them (keeps NAT state realistic without expiring anything).
        net.advance(SimDuration::from_millis(500));
    }
    let port_test = PortTestResult { flows };

    // --- STUN classification. ---
    let stun = if spec.run_stun {
        let sport = spec.os_ports.draw(1, &mut rng)[0];
        Some(classify(
            net,
            &lab.stun,
            spec.node,
            Endpoint::new(spec.addr, sport),
        ))
    } else {
        None
    };

    // --- TTL-driven NAT enumeration. ---
    let ttl = if spec.run_ttl {
        let tport = spec.os_ports.draw(1, &mut rng)[0];
        Some(run_ttl_enumeration(
            net,
            lab,
            spec.node,
            Endpoint::new(spec.addr, tport),
            &TtlEnumConfig::default(),
        ))
    } else {
        None
    };

    SessionReport {
        ip_dev: spec.addr,
        ip_cpe: spec.upnp_cpe_external,
        cpe_model: spec.upnp_model.clone(),
        port_test,
        stun,
        ttl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::{NatConfig, PortAllocation};
    use netcore::ip;
    use simnet::RealmId;

    fn spec(node: NodeId, addr: Ipv4Addr) -> ClientSpec {
        ClientSpec {
            node,
            addr,
            os_ports: OsPortPolicy::linux(),
            upnp_cpe_external: None,
            upnp_model: None,
            run_stun: true,
            run_ttl: false,
            port_flows: 10,
        }
    }

    #[test]
    fn os_port_policies() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = OsPortPolicy::linux().draw(10, &mut rng);
        for w in seq.windows(2) {
            // Sequential modulo wrap.
            assert!(w[1] == w[0] + 1 || w[1] == 32_768);
        }
        for p in &seq {
            assert!((32_768..=60_999).contains(p));
        }
        let rnd = OsPortPolicy::windows().draw(100, &mut rng);
        for p in &rnd {
            assert!((49_152..=65_535).contains(p));
        }
    }

    #[test]
    fn public_client_session() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let c = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 9), vec![]);
        let report = run_session(&mut net, &lab, &spec(c, ip(198, 51, 100, 9)), 42);
        assert_eq!(report.port_test.flows.len(), 10);
        assert_eq!(
            report.port_test.preserved_count(),
            10,
            "no NAT, all ports preserved"
        );
        assert_eq!(report.ip_pub(), Some(ip(198, 51, 100, 9)));
        assert!(!report.saw_multiple_public_ips());
        assert_eq!(
            report.stun.unwrap().class,
            crate::stun::StunClass::OpenInternet
        );
    }

    #[test]
    fn cgn_client_sees_translated_ports_full_space() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = PortAllocation::Random;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            3,
        );
        let c = net.add_host(realm, ip(100, 64, 0, 20), vec![]);
        let report = run_session(&mut net, &lab, &spec(c, ip(100, 64, 0, 20)), 42);
        assert_eq!(report.ip_pub(), Some(ip(198, 51, 100, 1)));
        // Random allocation: virtually no flow keeps its port.
        assert!(report.port_test.preserved_count() <= 1);
        assert!(!report.saw_multiple_public_ips(), "paired pooling");
    }

    #[test]
    fn arbitrary_pooling_detected() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let mut cfg = NatConfig::cgn_default();
        cfg.pooling = nat_engine::Pooling::Arbitrary;
        cfg.mapping = nat_engine::MappingBehavior::AddressAndPortDependent;
        let (_, realm) = net.add_nat(
            cfg,
            vec![
                ip(198, 51, 100, 1),
                ip(198, 51, 100, 2),
                ip(198, 51, 100, 3),
                ip(198, 51, 100, 4),
            ],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            3,
        );
        let c = net.add_host(realm, ip(100, 64, 0, 20), vec![]);
        let report = run_session(&mut net, &lab, &spec(c, ip(100, 64, 0, 20)), 42);
        assert!(
            report.saw_multiple_public_ips(),
            "arbitrary pooling should surface multiple public IPs: {:?}",
            report.port_test.distinct_public_ips()
        );
    }

    #[test]
    fn preserving_cpe_keeps_ports() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let (_, home) = net.add_nat(
            NatConfig::home_cpe(),
            vec![ip(198, 51, 100, 77)],
            RealmId::PUBLIC,
            vec![],
            ip(192, 168, 1, 1),
            true,
            3,
        );
        let c = net.add_host(home, ip(192, 168, 1, 100), vec![]);
        let mut s = spec(c, ip(192, 168, 1, 100));
        s.upnp_cpe_external = Some(ip(198, 51, 100, 77));
        s.upnp_model = Some("AcmeRouter 3000".into());
        let report = run_session(&mut net, &lab, &s, 42);
        assert_eq!(
            report.port_test.preserved_count(),
            10,
            "CPE preserves ports"
        );
        assert_eq!(report.ip_cpe, Some(ip(198, 51, 100, 77)));
        assert_eq!(report.ip_pub(), Some(ip(198, 51, 100, 77)));
    }

    #[test]
    fn session_deterministic_for_seed() {
        let run = |seed| {
            let mut net = Network::new();
            let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
            let c = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 9), vec![]);
            let r = run_session(&mut net, &lab, &spec(c, ip(198, 51, 100, 9)), seed);
            r.port_test
                .flows
                .iter()
                .map(|f| f.local_port)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
