//! # netalyzr — the active measurement suite of the study
//!
//! Re-implements the Netalyzr-based methodology of §4.2 and §6 against the
//! simulated network:
//!
//! * [`stun`] — STUN (RFC 5389 wire format) with the classic RFC 3489
//!   NAT-type classification driven by CHANGE-REQUEST probes against a
//!   two-address/two-port server (§6.3, Fig. 13);
//! * [`servers`] — the measurement servers: a TCP echo service that
//!   reports the observed source endpoint (the `IPpub`/port-test oracle)
//!   and a UDP responder;
//! * [`ttl_enum`] — the TTL-driven NAT enumeration test of Fig. 10:
//!   TTL-limited keepalives hold state alive at every hop except the hop
//!   under test; a post-idle server probe reveals whether that hop is a
//!   stateful middlebox and bounds its mapping timeout (§6.3–§6.5);
//! * [`session`] — one full Netalyzr session: device/CPE/public address
//!   collection (Table 4), the 10-flow sequential TCP port test (Fig. 8),
//!   IP pooling observation (§6.2), STUN, and TTL enumeration.

pub mod probe;
pub mod servers;
pub mod session;
pub mod stun;
pub mod ttl_enum;

pub use probe::{traceroute, udp_mapped};
pub use servers::{EchoServer, MeasurementLab};
pub use session::{run_session, ClientSpec, OsPortPolicy, PortTestResult, SessionReport};
pub use stun::{StunClass, StunMessage, StunService};
pub use ttl_enum::{DetectedNat, TtlEnumConfig, TtlEnumResult};
