//! Measurement servers.
//!
//! [`EchoServer`] is the custom test server the Netalyzr suite talks to:
//!
//! * **TCP echo** on a high port "unlikely to be proxied" (§6.2): the
//!   client completes a handshake and sends `WHOAMI`; the server answers
//!   with the source endpoint it observed — that is how the client learns
//!   `IPpub` and the translated source port of each flow.
//! * **UDP responder**: answers `PING` with `PONG <observed endpoint>`;
//!   ignores `KA` keepalives (so TTL-limited keepalives never generate
//!   reverse traffic that would refresh the hop under test from the wrong
//!   side).
//!
//! [`MeasurementLab`] bundles the echo server and the two-host
//! [STUN service](crate::stun::StunService) and provides the packet
//! dispatch used by drivers.

use crate::stun::StunService;
use netcore::{Endpoint, Packet, PacketBody, TcpFlags};
use simnet::{Network, NodeId, RealmId};
use std::net::Ipv4Addr;

/// The TCP/UDP echo server.
#[derive(Debug, Clone)]
pub struct EchoServer {
    pub node: NodeId,
    pub ip: Ipv4Addr,
    /// High TCP port for the port test.
    pub tcp_port: u16,
    /// UDP port for reachability experiments.
    pub udp_port: u16,
}

impl EchoServer {
    pub const DEFAULT_TCP_PORT: u16 = 49_402;
    pub const DEFAULT_UDP_PORT: u16 = 49_403;

    pub fn new(node: NodeId, ip: Ipv4Addr) -> EchoServer {
        EchoServer {
            node,
            ip,
            tcp_port: Self::DEFAULT_TCP_PORT,
            udp_port: Self::DEFAULT_UDP_PORT,
        }
    }

    pub fn tcp_endpoint(&self) -> Endpoint {
        Endpoint::new(self.ip, self.tcp_port)
    }

    pub fn udp_endpoint(&self) -> Endpoint {
        Endpoint::new(self.ip, self.udp_port)
    }

    /// Render the observed-endpoint report.
    pub fn format_addr_reply(src: Endpoint) -> Vec<u8> {
        format!("ADDR {}:{}", src.ip, src.port).into_bytes()
    }

    /// Parse an `ADDR ip:port` report.
    pub fn parse_addr_reply(payload: &[u8]) -> Option<Endpoint> {
        let text = std::str::from_utf8(payload).ok()?;
        let rest = text.strip_prefix("ADDR ")?;
        let (ip, port) = rest.rsplit_once(':')?;
        Some(Endpoint::new(ip.parse().ok()?, port.parse().ok()?))
    }

    /// Handle a delivered packet, emitting replies from this server.
    pub fn handle_packet(&self, pkt: &Packet) -> Vec<Packet> {
        match &pkt.body {
            PacketBody::Tcp { flags, payload } if pkt.dst == self.tcp_endpoint() => {
                if flags.syn && !flags.ack {
                    return vec![Packet::tcp(
                        self.tcp_endpoint(),
                        pkt.src,
                        TcpFlags::SYN_ACK,
                        vec![],
                    )];
                }
                if payload == b"WHOAMI" {
                    return vec![Packet::tcp(
                        self.tcp_endpoint(),
                        pkt.src,
                        TcpFlags::ACK,
                        Self::format_addr_reply(pkt.src),
                    )];
                }
                if flags.fin {
                    return vec![Packet::tcp(
                        self.tcp_endpoint(),
                        pkt.src,
                        TcpFlags::FIN,
                        vec![],
                    )];
                }
                Vec::new()
            }
            PacketBody::Udp { payload } if pkt.dst == self.udp_endpoint() => {
                if payload == b"PING" {
                    let mut reply = b"PONG ".to_vec();
                    reply.extend_from_slice(&Self::format_addr_reply(pkt.src));
                    return vec![Packet::udp(self.udp_endpoint(), pkt.src, reply)];
                }
                // Keepalives ("KA") and anything else: silence.
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

/// The whole measurement infrastructure: echo server + STUN service.
#[derive(Debug, Clone)]
pub struct MeasurementLab {
    pub echo: EchoServer,
    pub stun: StunService,
}

impl MeasurementLab {
    /// Consecutive service addresses [`MeasurementLab::install`]
    /// occupies starting at `base` (echo + two STUN hosts). The
    /// `base + 200` core router is a hop label only, never a realm
    /// address. Callers reserving lab space must skip exactly this
    /// many addresses.
    pub const SERVICE_ADDRS: u64 = 3;

    /// Install the lab's hosts in the public realm behind short core
    /// chains (so server-side hop counts are realistic).
    pub fn install(net: &mut Network, base: Ipv4Addr) -> MeasurementLab {
        let o = u32::from(base);
        let echo_ip = Ipv4Addr::from(o);
        let stun1_ip = Ipv4Addr::from(o + 1);
        let stun2_ip = Ipv4Addr::from(o + 2);
        let core_router = Ipv4Addr::from(o + 200);
        let echo_node = net.add_host(RealmId::PUBLIC, echo_ip, vec![core_router]);
        let stun1 = net.add_host(RealmId::PUBLIC, stun1_ip, vec![core_router]);
        let stun2 = net.add_host(RealmId::PUBLIC, stun2_ip, vec![core_router]);
        MeasurementLab {
            echo: EchoServer::new(echo_node, echo_ip),
            stun: StunService::new(stun1, stun1_ip, stun2, stun2_ip),
        }
    }

    /// Dispatch a delivered packet to whichever server owns the node.
    pub fn dispatch(&self, node: NodeId, pkt: &Packet) -> Vec<(NodeId, Packet)> {
        if node == self.echo.node {
            return self
                .echo
                .handle_packet(pkt)
                .into_iter()
                .map(|p| (node, p))
                .collect();
        }
        self.stun.handle_packet(node, pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use simnet::pump;

    #[test]
    fn addr_reply_roundtrip() {
        let ep = Endpoint::new(ip(198, 51, 100, 7), 54321);
        let reply = EchoServer::format_addr_reply(ep);
        assert_eq!(EchoServer::parse_addr_reply(&reply), Some(ep));
        assert_eq!(EchoServer::parse_addr_reply(b"garbage"), None);
        assert_eq!(EchoServer::parse_addr_reply(b"ADDR nope"), None);
    }

    #[test]
    fn tcp_flow_reports_observed_source() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let client = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 9), vec![]);
        let cep = Endpoint::new(ip(198, 51, 100, 9), 40000);

        let mut reported = None;
        pump(
            &mut net,
            vec![(
                client,
                Packet::tcp(cep, lab.echo.tcp_endpoint(), TcpFlags::SYN, vec![]),
            )],
            |node, pkt| {
                if node == client {
                    match &pkt.body {
                        PacketBody::Tcp { flags, payload } => {
                            if flags.syn && flags.ack {
                                return vec![(
                                    client,
                                    Packet::tcp(
                                        cep,
                                        lab.echo.tcp_endpoint(),
                                        TcpFlags::ACK,
                                        b"WHOAMI".to_vec(),
                                    ),
                                )];
                            }
                            if let Some(ep) = EchoServer::parse_addr_reply(payload) {
                                reported = Some(ep);
                            }
                            Vec::new()
                        }
                        _ => Vec::new(),
                    }
                } else {
                    lab.dispatch(node, pkt)
                }
            },
            100,
        );
        assert_eq!(reported, Some(cep), "public client sees its own endpoint");
    }

    #[test]
    fn udp_ping_pong_and_silent_keepalive() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let client = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 9), vec![]);
        let cep = Endpoint::new(ip(198, 51, 100, 9), 40001);

        let mut pongs = 0;
        pump(
            &mut net,
            vec![
                (
                    client,
                    Packet::udp(cep, lab.echo.udp_endpoint(), b"PING".to_vec()),
                ),
                (
                    client,
                    Packet::udp(cep, lab.echo.udp_endpoint(), b"KA".to_vec()),
                ),
            ],
            |node, pkt| {
                if node == client {
                    if pkt.body.payload().starts_with(b"PONG ") {
                        pongs += 1;
                    }
                    Vec::new()
                } else {
                    lab.dispatch(node, pkt)
                }
            },
            100,
        );
        assert_eq!(pongs, 1, "PING answered once, KA ignored");
    }

    #[test]
    fn wrong_port_ignored() {
        let mut net = Network::new();
        let lab = MeasurementLab::install(&mut net, ip(203, 0, 113, 10));
        let src = Endpoint::new(ip(9, 9, 9, 9), 1);
        let to_wrong = Packet::udp(src, Endpoint::new(lab.echo.ip, 1234), b"PING".to_vec());
        assert!(lab.echo.handle_packet(&to_wrong).is_empty());
    }
}
