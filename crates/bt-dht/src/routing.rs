//! Kademlia k-bucket routing tables.
//!
//! Each node keeps up to `k = 8` contacts per distance bucket. `find_node`
//! answers with the 8 contacts closest (XOR metric) to the target — which is
//! how internal endpoints, once validated into a table, propagate to the
//! paper's crawler.

use crate::krpc::CompactNode;
use crate::node_id::NodeId160;
use netcore::Endpoint;

/// Contacts per bucket (BEP-05's K).
pub const K: usize = 8;

/// A routing table keyed by XOR distance from `own_id`.
#[derive(Debug, Clone)]
pub struct RoutingTable160 {
    own_id: NodeId160,
    buckets: Vec<Vec<CompactNode>>,
}

impl RoutingTable160 {
    pub fn new(own_id: NodeId160) -> Self {
        RoutingTable160 {
            own_id,
            buckets: vec![Vec::new(); 160],
        }
    }

    pub fn own_id(&self) -> NodeId160 {
        self.own_id
    }

    /// Total number of stored contacts.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or update a contact.
    ///
    /// * Our own ID is never stored.
    /// * A contact with a known ID has its endpoint updated in place (the
    ///   most recently validated endpoint wins — this is how an internal
    ///   endpoint learned via LPD or hairpin replaces the external one).
    /// * A new contact joins its bucket unless the bucket is full, in which
    ///   case it is discarded (the BEP-05 simplification without eviction
    ///   pings).
    ///
    /// Returns true if the table changed.
    pub fn upsert(&mut self, node: CompactNode) -> bool {
        if node.id == self.own_id {
            return false;
        }
        let d = self.own_id.distance(&node.id);
        let idx = d.bucket_index().expect("distance nonzero");
        let bucket = &mut self.buckets[idx];
        if let Some(existing) = bucket.iter_mut().find(|c| c.id == node.id) {
            if existing.endpoint == node.endpoint {
                return false;
            }
            existing.endpoint = node.endpoint;
            return true;
        }
        if bucket.len() >= K {
            return false;
        }
        bucket.push(node);
        true
    }

    /// Remove a contact (e.g. it stopped responding).
    pub fn remove(&mut self, id: NodeId160) -> bool {
        if id == self.own_id {
            return false;
        }
        let d = self.own_id.distance(&id);
        let idx = match d.bucket_index() {
            Some(i) => i,
            None => return false,
        };
        let bucket = &mut self.buckets[idx];
        let before = bucket.len();
        bucket.retain(|c| c.id != id);
        bucket.len() != before
    }

    /// Whether any contact is stored at `endpoint` (any node ID).
    pub fn knows_endpoint(&self, endpoint: Endpoint) -> bool {
        self.iter().any(|c| c.endpoint == endpoint)
    }

    /// The endpoint stored for `id`, if any.
    pub fn endpoint_of(&self, id: NodeId160) -> Option<Endpoint> {
        let d = self.own_id.distance(&id);
        let idx = d.bucket_index()?;
        self.buckets[idx]
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.endpoint)
    }

    /// The `n` contacts closest to `target` — the content of a `find_node`
    /// response.
    pub fn closest(&self, target: NodeId160, n: usize) -> Vec<CompactNode> {
        let mut all: Vec<CompactNode> = self.buckets.iter().flatten().copied().collect();
        all.sort_by_key(|c| c.id.distance(&target));
        all.truncate(n);
        all
    }

    /// Iterate all contacts (bucket order — deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &CompactNode> {
        self.buckets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use proptest::prelude::*;

    fn node(n: u64) -> CompactNode {
        CompactNode::new(
            NodeId160::from_u64(n),
            Endpoint::new(ip(10, 0, (n >> 8) as u8, n as u8), 6881),
        )
    }

    fn table() -> RoutingTable160 {
        RoutingTable160::new(NodeId160::from_u64(0))
    }

    #[test]
    fn upsert_and_lookup() {
        let mut t = table();
        assert!(t.upsert(node(5)));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.endpoint_of(NodeId160::from_u64(5)),
            Some(node(5).endpoint)
        );
        assert_eq!(t.endpoint_of(NodeId160::from_u64(6)), None);
    }

    #[test]
    fn own_id_never_stored() {
        let mut t = table();
        assert!(!t.upsert(CompactNode::new(NodeId160::from_u64(0), node(1).endpoint)));
        assert!(t.is_empty());
    }

    #[test]
    fn endpoint_update_in_place() {
        let mut t = table();
        t.upsert(node(5));
        // The same node is later validated at an internal endpoint.
        let internal = CompactNode::new(
            NodeId160::from_u64(5),
            Endpoint::new(ip(100, 64, 0, 9), 6881),
        );
        assert!(t.upsert(internal));
        assert_eq!(t.len(), 1, "update must not duplicate");
        assert_eq!(
            t.endpoint_of(NodeId160::from_u64(5)),
            Some(internal.endpoint)
        );
        // Idempotent.
        assert!(!t.upsert(internal));
    }

    #[test]
    fn bucket_capacity_enforced() {
        let mut t = table();
        // Node IDs 8..16 share bucket 3 (distance 8..15 from 0).
        for n in 8..16 {
            assert!(t.upsert(node(n)));
        }
        assert_eq!(t.len(), 8);
        // Bucket 3 is full: one more in the same range is refused...
        // (ids 8..16 fill it; no more ids exist in that bucket range, so
        // use bucket 4: 16..32 has 16 candidates for 8 slots.)
        for n in 16..24 {
            assert!(t.upsert(node(n)));
        }
        for n in 24..32 {
            assert!(!t.upsert(node(n)), "bucket overflow must be refused");
        }
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn closest_orders_by_xor_distance() {
        let mut t = table();
        for n in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            t.upsert(node(n));
        }
        let target = NodeId160::from_u64(5);
        let res = t.closest(target, 3);
        // d(4,5)=1, d(1,5)=4, d(2,5)=7 → closest three are 4, 1, 2... check:
        // d(8,5)=13, d(16,5)=21 — so [4,1,2].
        let ids: Vec<u64> = res
            .iter()
            .map(|c| {
                let b = c.id.as_bytes();
                u64::from_be_bytes(b[12..20].try_into().unwrap())
            })
            .collect();
        assert_eq!(ids, vec![4, 1, 2]);
    }

    #[test]
    fn closest_truncates_to_available() {
        let mut t = table();
        t.upsert(node(1));
        assert_eq!(t.closest(NodeId160::from_u64(9), 8).len(), 1);
        assert!(table().closest(NodeId160::from_u64(9), 8).is_empty());
    }

    #[test]
    fn remove_contact() {
        let mut t = table();
        t.upsert(node(5));
        assert!(t.remove(NodeId160::from_u64(5)));
        assert!(!t.remove(NodeId160::from_u64(5)));
        assert!(t.is_empty());
        assert!(!t.remove(t.own_id()));
    }

    proptest! {
        /// closest() returns contacts sorted by distance, without
        /// duplicates, and no more than requested.
        #[test]
        fn prop_closest_sorted(ids in proptest::collection::hash_set(1u64..10_000, 1..64), target in 1u64..10_000) {
            let mut t = table();
            for id in &ids {
                t.upsert(node(*id));
            }
            let target = NodeId160::from_u64(target);
            let res = t.closest(target, K);
            prop_assert!(res.len() <= K);
            for w in res.windows(2) {
                prop_assert!(w[0].id.distance(&target) <= w[1].id.distance(&target));
            }
            let mut seen = std::collections::HashSet::new();
            for c in &res {
                prop_assert!(seen.insert(c.id));
            }
        }

        /// Table size never exceeds 160 * K and upsert is idempotent.
        #[test]
        fn prop_upsert_idempotent(ids in proptest::collection::vec(1u64..500, 0..128)) {
            let mut t = table();
            for id in &ids {
                t.upsert(node(*id));
            }
            let size = t.len();
            for id in &ids {
                t.upsert(node(*id));
            }
            prop_assert_eq!(t.len(), size);
            prop_assert!(t.len() <= 160 * K);
        }
    }
}
