//! The external observer: what a BitTorrent/DHT crawler can derive
//! about an address-sharing deployment **without any internal vantage
//! point** (§4.1 turned into a feature extractor).
//!
//! Input is a stream of [`Sighting`]s — one per observed peer flow,
//! carrying the peer's stable identity (derived from its BitTorrent
//! peer id), the internal address it announces in handshakes, and the
//! translated source endpoint the observer actually saw. From these,
//! [`observe`] aggregates per external IP:
//!
//! * **distinct peers** behind the address — more than a home's worth
//!   of peers sharing one address is the carrier-NAT signal;
//! * **port churn** — how many distinct external ports a single peer
//!   burned, and how widely they spread;
//! * an **allocation signature** ([`AllocationSignature`]): ports of
//!   one peer confined to a single aligned block (deterministic NAT /
//!   RFC 7422 provisioning), spanning a few blocks (bulk port-block
//!   allocation), or scattered over the range (per-connection
//!   allocation) — the §6.2 policies as seen from outside.

use netcore::Endpoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One observed flow of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sighting {
    /// Stable peer identity (hash of the BitTorrent peer id).
    pub peer: u64,
    /// Internal address the peer announced (the §4.1 leak).
    pub internal: Ipv4Addr,
    /// Source endpoint the observer saw (post-translation).
    pub external: Endpoint,
    pub at_ms: u64,
}

/// The §6.2 allocation policy as inferred from one external IP's
/// port-usage pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationSignature {
    /// Every multi-flow peer stayed inside one aligned block, and the
    /// blocks of different peers do not collide — deterministic
    /// provisioning.
    Confined { block: u16 },
    /// Peers occupy a small number of aligned blocks each — bulk
    /// port-block allocation.
    Blocky { block: u16 },
    /// Ports spread over the space — per-connection allocation.
    Scattered,
    /// Not enough multi-flow peers to call it.
    Insufficient,
}

impl AllocationSignature {
    pub fn name(self) -> &'static str {
        match self {
            AllocationSignature::Confined { .. } => "confined",
            AllocationSignature::Blocky { .. } => "blocky",
            AllocationSignature::Scattered => "scattered",
            AllocationSignature::Insufficient => "insufficient",
        }
    }
}

/// Aggregate view of one external address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalIpView {
    pub ip: Ipv4Addr,
    pub sightings: u64,
    pub distinct_peers: usize,
    pub distinct_internal_ips: usize,
    /// Max over peers of distinct external ports observed.
    pub max_ports_per_peer: usize,
    /// Max over peers of (highest − lowest) observed port.
    pub max_port_spread: u16,
    pub signature: AllocationSignature,
}

/// Block sizes the signature detector tests, smallest first.
const BLOCK_GRID: [u16; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

fn blocks_of(ports: &[u16], block: u16) -> Vec<u16> {
    let mut b: Vec<u16> = ports.iter().map(|p| p / block).collect();
    b.sort_unstable();
    b.dedup();
    b
}

/// Infer the allocation signature from per-peer port sets (peers with
/// at least `min_flows` observed flows).
fn signature(per_peer_ports: &[Vec<u16>], min_flows: usize) -> AllocationSignature {
    let multi: Vec<&Vec<u16>> = per_peer_ports
        .iter()
        .filter(|p| p.len() >= min_flows)
        .collect();
    if multi.len() < 2 {
        return AllocationSignature::Insufficient;
    }
    // Smallest grid block that confines every multi-flow peer to one
    // aligned block.
    for block in BLOCK_GRID {
        if multi.iter().all(|p| blocks_of(p, block).len() == 1) {
            // Disjoint blocks across peers = deterministic-style
            // provisioning; shared blocks would mean plain reuse.
            let mut all: Vec<u16> = multi.iter().map(|p| blocks_of(p, block)[0]).collect();
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            return if all.len() == n {
                AllocationSignature::Confined { block }
            } else {
                AllocationSignature::Blocky { block }
            };
        }
    }
    // A couple of aligned blocks per peer still reads as bulk blocks.
    for block in BLOCK_GRID {
        if multi.iter().all(|p| blocks_of(p, block).len() <= 2) {
            return AllocationSignature::Blocky { block };
        }
    }
    AllocationSignature::Scattered
}

/// Aggregate sightings per external IP, in address order.
pub fn observe(sightings: &[Sighting]) -> Vec<ExternalIpView> {
    let mut per_ip: BTreeMap<Ipv4Addr, Vec<&Sighting>> = BTreeMap::new();
    for s in sightings {
        per_ip.entry(s.external.ip).or_default().push(s);
    }
    per_ip
        .into_iter()
        .map(|(ip, ss)| {
            let mut per_peer: BTreeMap<u64, Vec<u16>> = BTreeMap::new();
            let mut internals: Vec<Ipv4Addr> = Vec::new();
            for s in &ss {
                per_peer.entry(s.peer).or_default().push(s.external.port);
                internals.push(s.internal);
            }
            internals.sort_unstable();
            internals.dedup();
            let per_peer_ports: Vec<Vec<u16>> = per_peer
                .into_values()
                .map(|mut p| {
                    p.sort_unstable();
                    p.dedup();
                    p
                })
                .collect();
            let max_ports_per_peer = per_peer_ports.iter().map(Vec::len).max().unwrap_or(0);
            let max_port_spread = per_peer_ports
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| p[p.len() - 1] - p[0])
                .max()
                .unwrap_or(0);
            ExternalIpView {
                ip,
                sightings: ss.len() as u64,
                distinct_peers: per_peer_ports.len(),
                distinct_internal_ips: internals.len(),
                max_ports_per_peer,
                max_port_spread,
                signature: signature(&per_peer_ports, 3),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn sight(peer: u64, ext_port: u16) -> Sighting {
        Sighting {
            peer,
            internal: ip(100, 64, 0, peer as u8),
            external: Endpoint::new(ip(198, 51, 100, 1), ext_port),
            at_ms: 0,
        }
    }

    #[test]
    fn shared_address_counts_distinct_peers() {
        let s: Vec<Sighting> = (0..20u64)
            .flat_map(|p| (0..2).map(move |k| sight(p, 10_000 + (p as u16) * 100 + k)))
            .collect();
        let views = observe(&s);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].distinct_peers, 20);
        assert_eq!(views[0].distinct_internal_ips, 20);
    }

    #[test]
    fn deterministic_blocks_read_as_confined() {
        // Peer p owns block [p*512, (p+1)*512).
        let mut s = Vec::new();
        for p in 0..6u64 {
            for k in 0..4u16 {
                s.push(sight(p, 2048 + (p as u16) * 512 + k * 37));
            }
        }
        let v = observe(&s);
        assert!(
            matches!(v[0].signature, AllocationSignature::Confined { block } if block <= 512),
            "{:?}",
            v[0].signature
        );
    }

    #[test]
    fn block_reuse_reads_as_blocky() {
        // Two peers drawing from the same 1024-block (block handed
        // back and re-granted), one peer in another block.
        let mut s = Vec::new();
        for k in 0..4u16 {
            s.push(sight(1, 1024 + k * 113));
            s.push(sight(2, 1024 + 500 + k * 61));
            s.push(sight(3, 4096 + k * 97));
        }
        let v = observe(&s);
        assert!(
            matches!(v[0].signature, AllocationSignature::Blocky { .. }),
            "{:?}",
            v[0].signature
        );
    }

    #[test]
    fn random_ports_read_as_scattered() {
        let mut s = Vec::new();
        let mut z: u32 = 9;
        for p in 0..5u64 {
            for _ in 0..5 {
                z = z.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                s.push(sight(p, 1024 + (z % 60_000) as u16));
            }
        }
        let v = observe(&s);
        assert_eq!(v[0].signature, AllocationSignature::Scattered);
    }

    #[test]
    fn too_few_flows_is_insufficient() {
        let s = vec![sight(1, 2000), sight(2, 3000)];
        assert_eq!(observe(&s)[0].signature, AllocationSignature::Insufficient);
    }
}
