//! The paper's BitTorrent DHT crawler (§4.1).
//!
//! The crawler is a public host that walks the DHT: starting from the
//! bootstrap server it issues batches of `find_nodes` queries with random
//! targets, learns contact information — `(IP:port, nodeid)` tuples — and
//! records *internal address leakage*: contacts whose IP lies in a reserved
//! range (Table 1). When a peer leaks internal contacts, the crawler issues
//! follow-up batches "for as long as we continue to harvest internal
//! peers". It finally `bt_ping`s every learned peer to measure
//! responsiveness (the Table 2 "responded" row).

use crate::krpc::{CompactNode, KrpcMessage};
use crate::node_id::NodeId160;
use crate::world::DhtWorld;
use netcore::{classify_reserved, Endpoint, Packet, PacketBody, ReservedRange};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{pump, Network, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// Crawl parameters, mirroring §4.1.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Queries per newly discovered peer ("We issue five queries").
    pub initial_queries_per_peer: usize,
    /// Follow-up batch size on internal-peer discovery ("batches of ten").
    pub leak_followup_queries: usize,
    /// Maximum follow-up batches per peer (the paper continues while new
    /// internal peers appear; this bounds pathological cases).
    pub max_followup_batches: usize,
    /// Upper bound on distinct peers to query.
    pub max_peers: usize,
    /// Whether to `bt_ping` learned peers afterwards.
    pub ping_learned: bool,
    pub max_pump_steps: usize,
    pub seed: u64,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            initial_queries_per_peer: 5,
            leak_followup_queries: 10,
            max_followup_batches: 8,
            max_peers: 1_000_000,
            ping_learned: true,
            max_pump_steps: 1_000_000,
            seed: 0xC4A11,
        }
    }
}

/// One observed leak edge: `leaker` (queried at a routable endpoint)
/// reported `internal` (a contact with a reserved address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeakRecord {
    /// The endpoint the crawler queried.
    pub leaker_endpoint: Endpoint,
    /// The responder's node ID.
    pub leaker_id: NodeId160,
    /// The leaked internal contact.
    pub internal: CompactNode,
    /// Which reserved range the internal address falls in.
    pub range: ReservedRange,
}

/// The raw dataset a crawl produces (the input to Tables 2/3 and Figs 3/4).
#[derive(Debug, Default, Clone)]
pub struct CrawlReport {
    /// Peers that were sent queries and answered at least once
    /// (Table 2 "Queried").
    pub queried: HashSet<(Endpoint, NodeId160)>,
    /// Peers that were queried but never answered.
    pub unresponsive: HashSet<Endpoint>,
    /// Every learned peer tuple (Table 2 "Learned").
    pub learned: HashSet<(Endpoint, NodeId160)>,
    /// Learned-tuple multiplicity (a peer can be reported many times).
    pub learned_records: u64,
    /// All leak edges.
    pub leaks: Vec<LeakRecord>,
    /// Peers that answered the final `bt_ping`.
    pub ping_responders: HashSet<(Endpoint, NodeId160)>,
    /// find_nodes queries sent.
    pub queries_sent: u64,
}

impl CrawlReport {
    pub fn queried_unique_ips(&self) -> usize {
        self.queried
            .iter()
            .map(|(e, _)| e.ip)
            .collect::<HashSet<_>>()
            .len()
    }

    pub fn learned_unique_ips(&self) -> usize {
        self.learned
            .iter()
            .map(|(e, _)| e.ip)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Internal peers per reserved range: (total tuples, unique IPs) —
    /// the left half of Table 3.
    pub fn internal_peers_by_range(&self) -> HashMap<ReservedRange, (usize, usize)> {
        let mut tuples: HashMap<ReservedRange, HashSet<(Endpoint, NodeId160)>> = HashMap::new();
        let mut ips: HashMap<ReservedRange, HashSet<Ipv4Addr>> = HashMap::new();
        for l in &self.leaks {
            tuples
                .entry(l.range)
                .or_default()
                .insert((l.internal.endpoint, l.internal.id));
            ips.entry(l.range)
                .or_default()
                .insert(l.internal.endpoint.ip);
        }
        ReservedRange::ALL
            .into_iter()
            .map(|r| {
                (
                    r,
                    (
                        tuples.get(&r).map(|s| s.len()).unwrap_or(0),
                        ips.get(&r).map(|s| s.len()).unwrap_or(0),
                    ),
                )
            })
            .collect()
    }

    /// Leaking peers per reserved range: (total tuples, unique IPs) — the
    /// right half of Table 3.
    pub fn leaking_peers_by_range(&self) -> HashMap<ReservedRange, (usize, usize)> {
        let mut tuples: HashMap<ReservedRange, HashSet<(Endpoint, NodeId160)>> = HashMap::new();
        let mut ips: HashMap<ReservedRange, HashSet<Ipv4Addr>> = HashMap::new();
        for l in &self.leaks {
            tuples
                .entry(l.range)
                .or_default()
                .insert((l.leaker_endpoint, l.leaker_id));
            ips.entry(l.range).or_default().insert(l.leaker_endpoint.ip);
        }
        ReservedRange::ALL
            .into_iter()
            .map(|r| {
                (
                    r,
                    (
                        tuples.get(&r).map(|s| s.len()).unwrap_or(0),
                        ips.get(&r).map(|s| s.len()).unwrap_or(0),
                    ),
                )
            })
            .collect()
    }
}

/// The crawler host.
#[derive(Debug)]
pub struct Crawler {
    pub sim_node: NodeId,
    pub endpoint: Endpoint,
    pub id: NodeId160,
    config: CrawlConfig,
    rng: StdRng,
    next_txn: u64,
}

impl Crawler {
    pub fn new(sim_node: NodeId, addr: Ipv4Addr, config: CrawlConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        Crawler {
            sim_node,
            endpoint: Endpoint::new(addr, 64_000),
            id: NodeId160::random(&mut rng),
            config,
            rng,
            next_txn: 0,
        }
    }

    fn txn(&mut self) -> Vec<u8> {
        let t = self.next_txn;
        self.next_txn += 1;
        t.to_be_bytes().to_vec()
    }

    /// Send a batch of `find_nodes` queries (random targets) to `target`,
    /// pump the exchange, and return the decoded responses addressed to us.
    fn query_batch(
        &mut self,
        net: &mut Network,
        world: &mut DhtWorld,
        target: Endpoint,
        count: usize,
        report: &mut CrawlReport,
    ) -> Vec<KrpcMessage> {
        let mut initial = Vec::new();
        for _ in 0..count {
            let t = self.txn();
            let q = KrpcMessage::find_node(&t, self.id, NodeId160::random(&mut self.rng));
            initial.push((
                self.sim_node,
                Packet::udp(self.endpoint, target, q.encode()),
            ));
            report.queries_sent += 1;
        }
        let mut responses = Vec::new();
        let crawler_node = self.sim_node;
        let crawler_port = self.endpoint.port;
        pump(
            net,
            initial,
            |node, pkt| {
                if node == crawler_node {
                    if let PacketBody::Udp { payload } = &pkt.body {
                        if pkt.dst.port == crawler_port {
                            if let Ok(m) = KrpcMessage::decode(payload) {
                                responses.push(m);
                            }
                        }
                    }
                    Vec::new()
                } else {
                    world.dispatch(node, pkt)
                }
            },
            self.config.max_pump_steps,
        );
        responses
    }

    /// Record learned nodes from a response; returns the internal contacts.
    fn harvest(
        &mut self,
        queried_ep: Endpoint,
        responder: NodeId160,
        nodes: &[CompactNode],
        report: &mut CrawlReport,
        frontier: &mut VecDeque<Endpoint>,
        enqueued: &mut HashSet<Endpoint>,
    ) -> usize {
        let mut internal_found = 0;
        for n in nodes {
            report.learned_records += 1;
            report.learned.insert((n.endpoint, n.id));
            match classify_reserved(n.endpoint.ip) {
                Some(range) => {
                    internal_found += 1;
                    report.leaks.push(LeakRecord {
                        leaker_endpoint: queried_ep,
                        leaker_id: responder,
                        internal: *n,
                        range,
                    });
                }
                None => {
                    // Routable contacts join the crawl frontier.
                    if enqueued.insert(n.endpoint) {
                        frontier.push_back(n.endpoint);
                    }
                }
            }
        }
        internal_found
    }

    /// Run a full crawl. `world` keeps answering queries while the crawl
    /// walks it (its peers are the DHT).
    pub fn crawl(&mut self, net: &mut Network, world: &mut DhtWorld) -> CrawlReport {
        let mut report = CrawlReport::default();
        let mut frontier: VecDeque<Endpoint> = VecDeque::new();
        let mut enqueued: HashSet<Endpoint> = HashSet::new();

        frontier.push_back(world.bootstrap.endpoint);
        enqueued.insert(world.bootstrap.endpoint);

        let mut queried_count = 0usize;
        while let Some(target) = frontier.pop_front() {
            if queried_count >= self.config.max_peers {
                break;
            }
            queried_count += 1;
            let n_queries = self.config.initial_queries_per_peer;
            let responses = self.query_batch(net, world, target, n_queries, &mut report);
            if responses.is_empty() {
                report.unresponsive.insert(target);
                continue;
            }
            let mut internal_total = 0;
            let mut responder = None;
            for r in &responses {
                if let KrpcMessage::Response { sender, nodes, .. } = r {
                    responder = Some(*sender);
                    internal_total += self.harvest(
                        target,
                        *sender,
                        nodes,
                        &mut report,
                        &mut frontier,
                        &mut enqueued,
                    );
                }
            }
            let Some(responder) = responder else {
                report.unresponsive.insert(target);
                continue;
            };
            report.queried.insert((target, responder));

            // Leak follow-up: keep issuing batches of ten while new
            // internal peers appear.
            let mut batches = 0;
            while internal_total > 0 && batches < self.config.max_followup_batches {
                batches += 1;
                let responses = self.query_batch(
                    net,
                    world,
                    target,
                    self.config.leak_followup_queries,
                    &mut report,
                );
                internal_total = 0;
                for r in &responses {
                    if let KrpcMessage::Response { sender, nodes, .. } = r {
                        internal_total += self.harvest(
                            target,
                            *sender,
                            nodes,
                            &mut report,
                            &mut frontier,
                            &mut enqueued,
                        );
                    }
                }
            }
        }

        // Responsiveness: bt_ping every learned, routable peer once.
        if self.config.ping_learned {
            let targets: Vec<(Endpoint, NodeId160)> = report
                .learned
                .iter()
                .filter(|(e, _)| classify_reserved(e.ip).is_none())
                .copied()
                .collect();
            for (ep, id) in targets {
                let t = self.txn();
                let ping = KrpcMessage::ping(&t, self.id);
                let mut got_pong = false;
                let crawler_node = self.sim_node;
                let crawler_port = self.endpoint.port;
                pump(
                    net,
                    vec![(self.sim_node, Packet::udp(self.endpoint, ep, ping.encode()))],
                    |node, pkt| {
                        if node == crawler_node {
                            if let PacketBody::Udp { payload } = &pkt.body {
                                if pkt.dst.port == crawler_port
                                    && KrpcMessage::decode(payload)
                                        .map(|m| matches!(m, KrpcMessage::Response { .. }))
                                        .unwrap_or(false)
                                {
                                    got_pong = true;
                                }
                            }
                            Vec::new()
                        } else {
                            world.dispatch(node, pkt)
                        }
                    },
                    self.config.max_pump_steps,
                );
                if got_pong {
                    report.ping_responders.insert((ep, id));
                }
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerConfig;
    use crate::world::WorldConfig;
    use nat_engine::{FilteringBehavior, NatConfig};
    use netcore::ip;
    use simnet::RealmId;

    /// Build a small world: 6 public peers, plus 4 peers behind one
    /// full-cone CGN with multicast (so internal endpoints circulate).
    fn build() -> (Network, DhtWorld) {
        let mut net = Network::new();
        let bs = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let mut world = DhtWorld::new(WorldConfig::default(), bs, ip(203, 0, 113, 1));
        for i in 0..6u8 {
            let a = ip(198, 51, 100, 10 + i);
            let h = net.add_host(RealmId::PUBLIC, a, vec![]);
            world.add_peer(h, a, PeerConfig::default());
        }
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            RealmId::PUBLIC,
            vec![ip(198, 19, 0, 1)],
            ip(100, 64, 0, 1),
            true,
            9,
        );
        for i in 0..4u8 {
            let a = ip(100, 64, 0, 10 + i);
            let h = net.add_host(realm, a, vec![]);
            world.add_peer(h, a, PeerConfig::default());
        }
        world.run(&mut net);
        (net, world)
    }

    #[test]
    fn crawl_learns_and_detects_leakage() {
        let (mut net, mut world) = build();
        let cnode = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 100), vec![]);
        let mut crawler = Crawler::new(cnode, ip(203, 0, 113, 100), CrawlConfig::default());
        let report = crawler.crawl(&mut net, &mut world);

        assert!(report.queries_sent > 0);
        assert!(!report.queried.is_empty(), "crawler must reach peers");
        assert!(report.learned.len() >= 6, "most peers should be learned");
        // The CGN peers know each other internally (LPD) and answer the
        // crawler (full cone): internal 100X leakage must be observed.
        assert!(
            report.leaks.iter().any(|l| l.range == ReservedRange::R100),
            "expected 100X leakage, got {:?}",
            report.leaks
        );
        // Leakers are observed at CGN pool addresses.
        for l in &report.leaks {
            assert!(
                l.leaker_endpoint.ip == ip(198, 51, 100, 1)
                    || l.leaker_endpoint.ip == ip(198, 51, 100, 2),
                "leaker must be seen at a pool address, got {}",
                l.leaker_endpoint
            );
        }
        // Table 3 accessors agree with the raw leak list.
        let by_range = report.internal_peers_by_range();
        assert!(by_range[&ReservedRange::R100].0 > 0);
        assert_eq!(by_range[&ReservedRange::R192].0, 0);
    }

    #[test]
    fn ping_responders_subset_of_learned() {
        let (mut net, mut world) = build();
        let cnode = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 100), vec![]);
        let mut crawler = Crawler::new(cnode, ip(203, 0, 113, 100), CrawlConfig::default());
        let report = crawler.crawl(&mut net, &mut world);
        assert!(!report.ping_responders.is_empty());
        for r in &report.ping_responders {
            assert!(report.learned.contains(r));
        }
        // Public peers respond to pings; so the responder count is at
        // least the public peer count.
        assert!(report.ping_responders.len() >= 6);
    }

    #[test]
    fn max_peers_bound_respected() {
        let (mut net, mut world) = build();
        let cnode = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 100), vec![]);
        let mut crawler = Crawler::new(
            cnode,
            ip(203, 0, 113, 100),
            CrawlConfig {
                max_peers: 2,
                ping_learned: false,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(&mut net, &mut world);
        let attempted = report.queried.len() + report.unresponsive.len();
        assert!(attempted <= 2, "attempted {attempted} > max_peers");
    }

    #[test]
    fn crawl_is_deterministic() {
        let run = || {
            let (mut net, mut world) = build();
            let cnode = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 100), vec![]);
            let mut crawler = Crawler::new(cnode, ip(203, 0, 113, 100), CrawlConfig::default());
            let r = crawler.crawl(&mut net, &mut world);
            (
                r.queried.len(),
                r.learned.len(),
                r.leaks.len(),
                r.queries_sent,
            )
        };
        assert_eq!(run(), run());
    }
}
