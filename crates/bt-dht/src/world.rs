//! Driving a population of DHT peers over the simulated network.
//!
//! [`DhtWorld`] owns the peer state machines and a bootstrap server, and
//! advances the swarm through *rounds*: every round each peer validates
//! pending candidates, refreshes its routing table with lookups, and
//! periodically multicasts a local-peer-discovery announcement. Between
//! rounds the virtual clock advances, so NAT mappings refresh or expire
//! exactly as they would under real traffic.

use crate::krpc::{CompactNode, KrpcMessage, QueryKind};
use crate::node_id::NodeId160;
use crate::peer::{DhtPeer, PeerConfig, LPD_PORT};
use netcore::{Endpoint, Packet, PacketBody, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{pump, Network, NodeId};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Swarm-driving parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Rounds in which every peer (re-)contacts the bootstrap server.
    pub bootstrap_rounds: usize,
    /// Maintenance rounds after bootstrap.
    pub maintenance_rounds: usize,
    /// Virtual time between rounds.
    pub round_gap: SimDuration,
    /// Send LPD announcements every this many rounds (0 = never).
    pub lpd_every: usize,
    /// Safety bound on packet exchanges per round.
    pub max_pump_steps: usize,
    /// Number of tracker swarms per 100 peers (content diversity).
    pub swarms_per_100_peers: usize,
    /// P(a peer joins the swarm popular in its locality) — same-ISP peers
    /// cluster on locally popular content.
    pub p_local_swarm: f64,
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            bootstrap_rounds: 2,
            maintenance_rounds: 12,
            round_gap: SimDuration::from_secs(20),
            lpd_every: 2,
            max_pump_steps: 2_000_000,
            swarms_per_100_peers: 6,
            p_local_swarm: 0.6,
            seed: 0x000B_1770,
        }
    }
}

/// The DHT bootstrap node: a public host that accumulates the peers that
/// contact it and hands out random samples of them.
#[derive(Debug)]
pub struct BootstrapServer {
    pub sim_node: NodeId,
    pub endpoint: Endpoint,
    pub id: NodeId160,
    known: Vec<CompactNode>,
    by_endpoint: HashMap<Endpoint, usize>,
    /// Long-lived stable nodes always included in handouts. Stable,
    /// always-on participants (like a measurement crawler running for
    /// weeks) end up in virtually every routing table; pinning models
    /// that without simulating weeks of uptime.
    pinned: Vec<CompactNode>,
}

impl BootstrapServer {
    pub fn new(sim_node: NodeId, addr: Ipv4Addr, port: u16, id: NodeId160) -> Self {
        BootstrapServer {
            sim_node,
            endpoint: Endpoint::new(addr, port),
            id,
            known: Vec::new(),
            by_endpoint: HashMap::new(),
            pinned: Vec::new(),
        }
    }

    /// Pin a stable node into every future handout.
    pub fn pin(&mut self, node: CompactNode) {
        self.pinned.push(node);
    }

    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    fn learn(&mut self, node: CompactNode) {
        match self.by_endpoint.get(&node.endpoint) {
            Some(i) => self.known[*i] = node,
            None => {
                self.by_endpoint.insert(node.endpoint, self.known.len());
                self.known.push(node);
            }
        }
    }

    /// Handle a delivered packet, emitting replies.
    pub fn handle_packet(&mut self, pkt: &Packet, rng: &mut StdRng) -> Vec<Packet> {
        let payload = match &pkt.body {
            PacketBody::Udp { payload } => payload,
            _ => return Vec::new(),
        };
        if pkt.dst.port != self.endpoint.port {
            return Vec::new();
        }
        let msg = match KrpcMessage::decode(payload) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };
        match msg {
            KrpcMessage::Query {
                transaction,
                kind,
                sender,
                ..
            } => {
                // Record the contact at its observed (translated) source.
                self.learn(CompactNode::new(sender, pkt.src));
                let reply = match kind {
                    QueryKind::Ping => KrpcMessage::pong(&transaction, self.id),
                    QueryKind::FindNode => {
                        // Hand out stable nodes plus random known peers
                        // (not the asker).
                        let mut sample: Vec<CompactNode> = self
                            .pinned
                            .iter()
                            .filter(|c| c.endpoint != pkt.src)
                            .copied()
                            .collect();
                        let candidates: Vec<&CompactNode> = self
                            .known
                            .iter()
                            .filter(|c| c.endpoint != pkt.src)
                            .collect();
                        if !candidates.is_empty() {
                            for _ in 0..(candidates.len() * 2) {
                                let c = candidates[rng.gen_range(0..candidates.len())];
                                if !sample.contains(c) {
                                    sample.push(*c);
                                }
                                if sample.len() >= 8 {
                                    break;
                                }
                            }
                        }
                        KrpcMessage::nodes_response(&transaction, self.id, sample)
                    }
                };
                vec![Packet::udp(self.endpoint, pkt.src, reply.encode())]
            }
            _ => Vec::new(),
        }
    }
}

/// A swarm tracker: peers announce a swarm id, the tracker records the
/// observed (translated) source endpoint and answers with a random sample
/// of the swarm's members. This is the content-locality discovery channel
/// real BitTorrent has besides the DHT — and the reason peers behind the
/// same CGN find each other quickly (popular local content).
#[derive(Debug)]
pub struct TrackerServer {
    pub sim_node: NodeId,
    pub endpoint: Endpoint,
    swarms: HashMap<u32, Vec<Endpoint>>,
}

impl TrackerServer {
    pub fn new(sim_node: NodeId, addr: Ipv4Addr, port: u16) -> Self {
        TrackerServer {
            sim_node,
            endpoint: Endpoint::new(addr, port),
            swarms: HashMap::new(),
        }
    }

    pub fn swarm_count(&self) -> usize {
        self.swarms.len()
    }

    /// Handle an announce; reply with up to 8 random swarm members.
    pub fn handle_packet(&mut self, pkt: &Packet, rng: &mut StdRng) -> Vec<Packet> {
        let payload = match &pkt.body {
            PacketBody::Udp { payload } => payload,
            _ => return Vec::new(),
        };
        if pkt.dst.port != self.endpoint.port {
            return Vec::new();
        }
        let Some(text) = std::str::from_utf8(payload).ok() else {
            return Vec::new();
        };
        let Some(swarm) = text
            .strip_prefix("BTT ANNOUNCE ")
            .and_then(|s| s.trim().parse::<u32>().ok())
        else {
            return Vec::new();
        };
        let members = self.swarms.entry(swarm).or_default();
        if !members.contains(&pkt.src) {
            members.push(pkt.src);
        }
        let candidates: Vec<Endpoint> = members.iter().copied().filter(|e| *e != pkt.src).collect();
        let mut sample: Vec<Endpoint> = Vec::new();
        if !candidates.is_empty() {
            for _ in 0..(candidates.len() * 2) {
                let c = candidates[rng.gen_range(0..candidates.len())];
                if !sample.contains(&c) {
                    sample.push(c);
                }
                if sample.len() >= 8 {
                    break;
                }
            }
        }
        let body = format!(
            "BTT PEERS {}",
            sample
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        vec![Packet::udp(self.endpoint, pkt.src, body.into_bytes())]
    }
}

/// The peer population plus the bootstrap server and the swarm tracker.
#[derive(Debug)]
pub struct DhtWorld {
    pub config: WorldConfig,
    pub peers: Vec<DhtPeer>,
    by_node: HashMap<NodeId, usize>,
    pub bootstrap: BootstrapServer,
    pub tracker: TrackerServer,
    /// Swarm membership per peer index.
    swarm_of: Vec<u32>,
    rng: StdRng,
}

impl DhtWorld {
    /// Create a world around an existing bootstrap host (a public host in
    /// the network).
    pub fn new(config: WorldConfig, bootstrap_node: NodeId, bootstrap_addr: Ipv4Addr) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let id = NodeId160::random(&mut rng);
        DhtWorld {
            config,
            peers: Vec::new(),
            by_node: HashMap::new(),
            bootstrap: BootstrapServer::new(bootstrap_node, bootstrap_addr, 6881, id),
            tracker: TrackerServer::new(bootstrap_node, bootstrap_addr, 6969),
            swarm_of: Vec::new(),
            rng,
        }
    }

    /// Register a peer running on simulated host `sim_node` with address
    /// `addr`. The node ID and DHT port are drawn from the world RNG
    /// (BitTorrent clients randomize their listening port). `locality`
    /// keys the peer's preferred tracker swarm — peers sharing a locality
    /// (e.g. the same ISP's CGN zone) cluster on locally popular content.
    pub fn add_peer_with_locality(
        &mut self,
        sim_node: NodeId,
        addr: Ipv4Addr,
        config: PeerConfig,
        locality: u64,
    ) -> usize {
        let id = NodeId160::random(&mut self.rng);
        let port = self.rng.gen_range(6881..=6999);
        let idx = self.peers.len();
        self.peers
            .push(DhtPeer::new(sim_node, addr, port, id, config));
        self.by_node.insert(sim_node, idx);
        // Swarm assignment is finalized lazily because the swarm count
        // depends on the final population; store the locality for now.
        self.swarm_of.push(locality as u32);
        idx
    }

    /// Register a peer with a unique locality (no swarm clustering bias).
    pub fn add_peer(&mut self, sim_node: NodeId, addr: Ipv4Addr, config: PeerConfig) -> usize {
        let unique = 0xFFFF_0000u64 + self.peers.len() as u64;
        self.add_peer_with_locality(sim_node, addr, config, unique)
    }

    /// Register a *service* peer at a fixed port — the crawler's DHT
    /// presence. The paper's crawler "participates in the DHT and
    /// therefore accepts incoming requests"; peers validate and store it,
    /// and their outbound validation pings punch holes through restrictive
    /// NATs that later let the crawler query them back.
    pub fn add_service_peer(&mut self, sim_node: NodeId, addr: Ipv4Addr, port: u16) -> usize {
        let id = NodeId160::random(&mut self.rng);
        let idx = self.peers.len();
        self.peers.push(DhtPeer::new(
            sim_node,
            addr,
            port,
            id,
            PeerConfig::default(),
        ));
        self.by_node.insert(sim_node, idx);
        // Unique locality: the service host announces no swarms.
        self.swarm_of.push(0xFFFF_FF00u64 as u32 ^ idx as u32);
        // A stable always-on node: the bootstrap hands it out to everyone.
        self.bootstrap
            .pin(CompactNode::new(id, Endpoint::new(addr, port)));
        idx
    }

    /// Retire a fraction of the population: retired peers stop answering
    /// (BitTorrent churn — clients go offline between the swarm activity
    /// and the crawl; the paper saw only 56% of learned peers respond).
    /// Returns how many peers were retired. Service peers (index in
    /// `keep`) are never retired.
    pub fn retire_peers(&mut self, fraction: f64, keep: &[usize]) -> usize {
        let mut retired = 0;
        let n = self.peers.len();
        for idx in 0..n {
            if keep.contains(&idx) {
                continue;
            }
            if self.rng.gen_bool(fraction) {
                self.by_node.remove(&self.peers[idx].sim_node);
                retired += 1;
            }
        }
        retired
    }

    /// Resolve localities into concrete swarm ids.
    fn assign_swarms(&mut self) {
        let n_swarms = ((self.peers.len() * self.config.swarms_per_100_peers) / 100).max(2) as u32;
        let p_local = self.config.p_local_swarm;
        for i in 0..self.swarm_of.len() {
            let locality = self.swarm_of[i];
            let local_swarm = locality.wrapping_mul(2_654_435_761) % n_swarms;
            self.swarm_of[i] = if self.rng.gen_bool(p_local) {
                local_swarm
            } else {
                self.rng.gen_range(0..n_swarms)
            };
        }
    }

    pub fn peer_by_node(&self, node: NodeId) -> Option<&DhtPeer> {
        self.by_node.get(&node).map(|i| &self.peers[*i])
    }

    /// Dispatch a delivered packet to its owner (peer or bootstrap),
    /// collecting the emissions as (origin, packet) pairs.
    pub fn dispatch(&mut self, node: NodeId, pkt: &Packet) -> Vec<(NodeId, Packet)> {
        if node == self.tracker.sim_node && pkt.dst.port == self.tracker.endpoint.port {
            let out = self.tracker.handle_packet(pkt, &mut self.rng);
            return out.into_iter().map(|p| (node, p)).collect();
        }
        if node == self.bootstrap.sim_node {
            let out = self.bootstrap.handle_packet(pkt, &mut self.rng);
            return out.into_iter().map(|p| (node, p)).collect();
        }
        match self.by_node.get(&node) {
            Some(i) => {
                let out = self.peers[*i].handle_packet(pkt);
                out.into_iter().map(|p| (node, p)).collect()
            }
            None => Vec::new(),
        }
    }

    /// Run the configured bootstrap + maintenance schedule.
    pub fn run(&mut self, net: &mut Network) {
        self.assign_swarms();
        let rounds = self.config.bootstrap_rounds + self.config.maintenance_rounds;
        for round in 0..rounds {
            self.run_round(net, round);
        }
    }

    /// One round: LPD (periodically), bootstrap contact (early rounds),
    /// candidate validation and table refresh, then packet exchange until
    /// quiescence, then a clock step.
    pub fn run_round(&mut self, net: &mut Network, round: usize) {
        let mut initial: Vec<(NodeId, Packet)> = Vec::new();

        // Local peer discovery: multicast announcements; deliveries are
        // dispatched immediately and any reactions join the initial batch.
        if self.config.lpd_every > 0 && round % self.config.lpd_every == 0 {
            let announcements: Vec<(NodeId, u16, Vec<u8>)> = self
                .peers
                .iter()
                .filter(|p| p.config.lpd_enabled)
                .map(|p| (p.sim_node, p.port, p.lpd_payload()))
                .collect();
            for (node, src_port, payload) in announcements {
                let deliveries = net.send_multicast(node, src_port, LPD_PORT, payload);
                for d in deliveries {
                    initial.extend(self.dispatch(d.node, &d.pkt));
                }
            }
        }

        // Bootstrap contact, tracker announce and per-peer maintenance.
        let bootstrap_ep = self.bootstrap.endpoint;
        let tracker_ep = self.tracker.endpoint;
        let bootstrapping = round < self.config.bootstrap_rounds;
        for i in 0..self.peers.len() {
            if bootstrapping {
                let own = self.peers[i].id;
                let q = self.peers[i].find_node_query(bootstrap_ep, own);
                initial.push((self.peers[i].sim_node, q));
            }
            let swarm = self.swarm_of.get(i).copied().unwrap_or(0);
            let ann = self.peers[i].tracker_announce(tracker_ep, swarm);
            initial.push((self.peers[i].sim_node, ann));
            let node = self.peers[i].sim_node;
            for p in self.peers[i].tick(&mut self.rng) {
                initial.push((node, p));
            }
        }

        // Exchange packets until the swarm quiesces.
        let max_steps = self.config.max_pump_steps;
        let mut world = std::mem::take(&mut self.by_node);
        // Split borrows: move the index map back after the pump.
        let peers = &mut self.peers;
        let bootstrap = &mut self.bootstrap;
        let tracker = &mut self.tracker;
        let rng = &mut self.rng;
        pump(
            net,
            initial,
            |node, pkt| {
                if node == tracker.sim_node && pkt.dst.port == tracker.endpoint.port {
                    return tracker
                        .handle_packet(pkt, rng)
                        .into_iter()
                        .map(|p| (node, p))
                        .collect();
                }
                if node == bootstrap.sim_node {
                    return bootstrap
                        .handle_packet(pkt, rng)
                        .into_iter()
                        .map(|p| (node, p))
                        .collect();
                }
                match world.get(&node) {
                    Some(i) => peers[*i]
                        .handle_packet(pkt)
                        .into_iter()
                        .map(|p| (node, p))
                        .collect(),
                    None => Vec::new(),
                }
            },
            max_steps,
        );
        std::mem::swap(&mut self.by_node, &mut world);

        net.advance(self.config.round_gap);
    }

    /// Total contacts across all peer routing tables — convergence
    /// diagnostic.
    pub fn total_contacts(&self) -> usize {
        self.peers.iter().map(|p| p.table.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::{FilteringBehavior, NatConfig};
    use netcore::ip;
    use simnet::RealmId;

    /// Ten public peers + bootstrap: everyone discovers several others.
    #[test]
    fn public_swarm_converges() {
        let mut net = Network::new();
        let bs = net.add_host(
            RealmId::PUBLIC,
            ip(203, 0, 113, 1),
            vec![ip(203, 0, 113, 254)],
        );
        let mut world = DhtWorld::new(WorldConfig::default(), bs, ip(203, 0, 113, 1));
        for i in 0..10u8 {
            let h = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, i + 1), vec![]);
            world.add_peer(h, ip(198, 51, 100, i + 1), PeerConfig::default());
        }
        world.run(&mut net);
        assert!(world.bootstrap.known_count() >= 10);
        let avg = world.total_contacts() as f64 / 10.0;
        assert!(avg >= 4.0, "peers should learn several contacts, avg={avg}");
        // Every peer has been validated into someone's table.
        for p in &world.peers {
            assert!(p.contacts_validated > 0, "peer validated nothing");
        }
    }

    /// Two peers behind the same full-cone CGN learn each other's internal
    /// endpoints via LPD multicast.
    #[test]
    fn cgn_peers_learn_internal_endpoints_via_lpd() {
        let mut net = Network::new();
        let bs = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            true, // multicast-enabled internal realm
            1,
        );
        let a = net.add_host(realm, ip(100, 64, 0, 10), vec![]);
        let b = net.add_host(realm, ip(100, 64, 0, 11), vec![]);
        let mut world = DhtWorld::new(WorldConfig::default(), bs, ip(203, 0, 113, 1));
        world.add_peer(a, ip(100, 64, 0, 10), PeerConfig::default());
        world.add_peer(b, ip(100, 64, 0, 11), PeerConfig::default());
        world.run(&mut net);
        // Each peer's table holds the other at its *internal* endpoint.
        let pa = &world.peers[0];
        let pb = &world.peers[1];
        assert_eq!(
            pa.table.endpoint_of(pb.id).map(|e| e.ip),
            Some(ip(100, 64, 0, 11)),
            "A must know B internally"
        );
        assert_eq!(
            pb.table.endpoint_of(pa.id).map(|e| e.ip),
            Some(ip(100, 64, 0, 10)),
            "B must know A internally"
        );
    }

    /// Without multicast, the hairpin channel (internal source preserved)
    /// still leaks internal endpoints once peers know each other's
    /// external endpoints.
    #[test]
    fn cgn_peers_learn_internal_endpoints_via_hairpin() {
        let mut net = Network::new();
        let bs = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        cfg.hairpinning = true;
        cfg.hairpin_internal_source = true;
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false, // no multicast: hairpin is the only internal channel
            1,
        );
        let a = net.add_host(realm, ip(100, 64, 0, 10), vec![]);
        let b = net.add_host(realm, ip(100, 64, 0, 11), vec![]);
        let mut world = DhtWorld::new(
            WorldConfig {
                maintenance_rounds: 10,
                ..WorldConfig::default()
            },
            bs,
            ip(203, 0, 113, 1),
        );
        world.add_peer(a, ip(100, 64, 0, 10), PeerConfig::default());
        world.add_peer(b, ip(100, 64, 0, 11), PeerConfig::default());
        world.run(&mut net);
        let pa = &world.peers[0];
        let pb = &world.peers[1];
        let a_knows_b_internal =
            pa.table.endpoint_of(pb.id).map(|e| e.ip) == Some(ip(100, 64, 0, 11));
        let b_knows_a_internal =
            pb.table.endpoint_of(pa.id).map(|e| e.ip) == Some(ip(100, 64, 0, 10));
        assert!(
            a_knows_b_internal || b_knows_a_internal,
            "hairpin with preserved source must leak at least one internal endpoint; \
             A sees B at {:?}, B sees A at {:?}",
            pa.table.endpoint_of(pb.id),
            pb.table.endpoint_of(pa.id)
        );
    }

    /// Peers behind a port-address-restricted CGN still reach the
    /// bootstrap and learn contacts (their outbound works), even though
    /// they are not queryable from outside.
    #[test]
    fn restricted_cgn_peers_bootstrap_fine() {
        let mut net = Network::new();
        let bs = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let (_, realm) = net.add_nat(
            NatConfig::cgn_default(), // APDF filtering
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            1,
        );
        let a = net.add_host(realm, ip(100, 64, 0, 10), vec![]);
        let pub_peer = net.add_host(RealmId::PUBLIC, ip(198, 51, 100, 77), vec![]);
        let mut world = DhtWorld::new(WorldConfig::default(), bs, ip(203, 0, 113, 1));
        world.add_peer(a, ip(100, 64, 0, 10), PeerConfig::default());
        world.add_peer(pub_peer, ip(198, 51, 100, 77), PeerConfig::default());
        world.run(&mut net);
        assert!(
            !world.peers[0].table.is_empty(),
            "NATed peer must learn contacts"
        );
    }
}
