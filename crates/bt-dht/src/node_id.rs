//! 160-bit DHT node identifiers and the Kademlia XOR metric.

use rand::Rng;
use std::fmt;

/// A 160-bit node identifier (BEP-05). Nodes choose these at random; the
/// probability of collision is negligible, which is why the paper can use
/// `(IP:port, nodeid)` as the peer identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId160(pub [u8; 20]);

impl NodeId160 {
    pub const ZERO: NodeId160 = NodeId160([0; 20]);

    /// Generate a uniformly random identifier.
    pub fn random<R: Rng>(rng: &mut R) -> NodeId160 {
        let mut id = [0u8; 20];
        rng.fill(&mut id);
        NodeId160(id)
    }

    /// Deterministic identifier from a counter — handy in tests.
    pub fn from_u64(n: u64) -> NodeId160 {
        let mut id = [0u8; 20];
        id[12..20].copy_from_slice(&n.to_be_bytes());
        NodeId160(id)
    }

    /// The XOR distance to `other`, itself a 160-bit value.
    pub fn distance(&self, other: &NodeId160) -> NodeId160 {
        let mut d = [0u8; 20];
        for (i, b) in d.iter_mut().enumerate() {
            *b = self.0[i] ^ other.0[i];
        }
        NodeId160(d)
    }

    /// Index of the k-bucket for a node at this distance: the position of
    /// the highest set bit (0..=159), or `None` for distance zero (self).
    pub fn bucket_index(&self) -> Option<usize> {
        for (byte_idx, byte) in self.0.iter().enumerate() {
            if *byte != 0 {
                let bit = 7 - byte.leading_zeros() as usize;
                return Some((19 - byte_idx) * 8 + bit);
            }
        }
        None
    }

    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    pub fn from_bytes(b: &[u8]) -> Option<NodeId160> {
        if b.len() != 20 {
            return None;
        }
        let mut id = [0u8; 20];
        id.copy_from_slice(b);
        Some(NodeId160(id))
    }
}

fn fmt_short_hex(id: &NodeId160, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for b in &id.0[..4] {
        write!(f, "{b:02x}")?;
    }
    write!(f, "…")?;
    for b in &id.0[18..] {
        write!(f, "{b:02x}")?;
    }
    Ok(())
}

impl fmt::Debug for NodeId160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_short_hex(self, f)
    }
}

impl fmt::Display for NodeId160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_short_hex(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_properties() {
        let a = NodeId160::from_u64(0b1010);
        let b = NodeId160::from_u64(0b0110);
        assert_eq!(a.distance(&a), NodeId160::ZERO);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&b), NodeId160::from_u64(0b1100));
    }

    #[test]
    fn bucket_index_values() {
        assert_eq!(NodeId160::ZERO.bucket_index(), None);
        assert_eq!(NodeId160::from_u64(1).bucket_index(), Some(0));
        assert_eq!(NodeId160::from_u64(2).bucket_index(), Some(1));
        assert_eq!(NodeId160::from_u64(255).bucket_index(), Some(7));
        assert_eq!(NodeId160::from_u64(256).bucket_index(), Some(8));
        let mut top = [0u8; 20];
        top[0] = 0x80;
        assert_eq!(NodeId160(top).bucket_index(), Some(159));
    }

    #[test]
    fn random_ids_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = NodeId160::random(&mut rng);
        let b = NodeId160::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn from_bytes_validation() {
        assert!(NodeId160::from_bytes(&[0u8; 19]).is_none());
        assert!(NodeId160::from_bytes(&[0u8; 21]).is_none());
        let id = NodeId160::from_u64(77);
        assert_eq!(NodeId160::from_bytes(id.as_bytes()), Some(id));
    }

    #[test]
    fn ordering_matches_distance_comparison() {
        // Distances compare as big-endian 160-bit integers, which the
        // derived Ord on [u8; 20] provides.
        let target = NodeId160::from_u64(100);
        let near = NodeId160::from_u64(101); // distance 1
        let far = NodeId160::from_u64(228); // distance 128
        assert!(target.distance(&near) < target.distance(&far));
    }

    proptest! {
        /// XOR metric axioms: identity, symmetry, and the triangle
        /// inequality (which XOR satisfies in the strong form
        /// d(a,c) <= d(a,b) ^ ... — we check the standard form).
        #[test]
        fn prop_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (NodeId160::from_u64(a), NodeId160::from_u64(b), NodeId160::from_u64(c));
            prop_assert_eq!(a.distance(&b), b.distance(&a));
            prop_assert_eq!(a.distance(&a), NodeId160::ZERO);
            // Unidirectional: for any point there is exactly one at each
            // distance: d(a,b) == d(a,c) implies b == c.
            if a.distance(&b) == a.distance(&c) {
                prop_assert_eq!(b, c);
            }
        }

        /// bucket_index is the floor of log2 of the distance.
        #[test]
        fn prop_bucket_index_log2(n in 1u64..) {
            let id = NodeId160::from_u64(n);
            let expected = 63 - n.leading_zeros() as usize;
            prop_assert_eq!(id.bucket_index(), Some(expected));
        }
    }
}
