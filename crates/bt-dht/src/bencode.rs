//! Bencoding (BEP-03): the wire format of all BitTorrent DHT traffic.
//!
//! Four types: integers `i42e`, byte strings `4:spam`, lists `l...e` and
//! dictionaries `d...e` with lexicographically sorted raw-byte-string keys.
//! The decoder is strict (canonical form only) so it doubles as a message
//! validator: malformed or non-canonical input is rejected, as a defensive
//! DHT implementation should.

use std::collections::BTreeMap;
use std::fmt;

/// A bencoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Int(i64),
    Bytes(Vec<u8>),
    List(Vec<Value>),
    /// Keys are raw byte strings; `BTreeMap` keeps them sorted, which is
    /// exactly the canonical encoding order.
    Dict(BTreeMap<Vec<u8>, Value>),
}

/// Decoding error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bencode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// Convenience constructors.
    pub fn bytes(b: &[u8]) -> Value {
        Value::Bytes(b.to_vec())
    }

    pub fn str(s: &str) -> Value {
        Value::Bytes(s.as_bytes().to_vec())
    }

    /// Dictionary field access.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        match self {
            Value::Dict(d) => d.get(key),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(b'i');
                out.extend_from_slice(i.to_string().as_bytes());
                out.push(b'e');
            }
            Value::Bytes(b) => {
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(b);
            }
            Value::List(items) => {
                out.push(b'l');
                for v in items {
                    v.encode_into(out);
                }
                out.push(b'e');
            }
            Value::Dict(map) => {
                out.push(b'd');
                for (k, v) in map {
                    out.extend_from_slice(k.len().to_string().as_bytes());
                    out.push(b':');
                    out.extend_from_slice(k);
                    v.encode_into(out);
                }
                out.push(b'e');
            }
        }
    }

    /// Decode a single value; trailing bytes are an error.
    pub fn decode(data: &[u8]) -> Result<Value, DecodeError> {
        let mut d = Decoder { data, pos: 0 };
        let v = d.value(0)?;
        if d.pos != data.len() {
            return Err(DecodeError {
                offset: d.pos,
                message: "trailing bytes",
            });
        }
        Ok(v)
    }
}

/// Build a dictionary from (key, value) pairs — the usual way messages are
/// assembled.
pub fn dict(pairs: Vec<(&[u8], Value)>) -> Value {
    Value::Dict(pairs.into_iter().map(|(k, v)| (k.to_vec(), v)).collect())
}

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 16;

impl<'a> Decoder<'a> {
    fn err(&self, message: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    fn take(&mut self) -> Result<u8, DecodeError> {
        let b = self.peek().ok_or_else(|| self.err("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    fn value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'i' => self.int(),
            b'l' => self.list(depth),
            b'd' => self.dictionary(depth),
            b'0'..=b'9' => Ok(Value::Bytes(self.byte_string()?)),
            _ => Err(self.err("invalid type prefix")),
        }
    }

    fn int(&mut self) -> Result<Value, DecodeError> {
        self.take()?; // 'i'
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.take()?;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("integer with no digits"));
        }
        // Canonical form: no leading zeros (except "0" itself), no "-0".
        let digits = &self.data[digits_start..self.pos];
        if digits.len() > 1 && digits[0] == b'0' {
            return Err(DecodeError {
                offset: digits_start,
                message: "leading zero",
            });
        }
        if negative && digits == b"0" {
            return Err(DecodeError {
                offset: start,
                message: "negative zero",
            });
        }
        let text = std::str::from_utf8(&self.data[start..self.pos]).expect("digits are ASCII");
        let n: i64 = text.parse().map_err(|_| self.err("integer overflow"))?;
        if self.take()? != b'e' {
            return Err(self.err("expected 'e' after integer"));
        }
        Ok(Value::Int(n))
    }

    fn byte_string(&mut self) -> Result<Vec<u8>, DecodeError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected string length"));
        }
        let len_digits = &self.data[start..self.pos];
        if len_digits.len() > 1 && len_digits[0] == b'0' {
            return Err(DecodeError {
                offset: start,
                message: "leading zero in length",
            });
        }
        let len: usize = std::str::from_utf8(len_digits)
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| self.err("length overflow"))?;
        if self.take()? != b':' {
            return Err(self.err("expected ':'"));
        }
        if self.pos + len > self.data.len() {
            return Err(self.err("string exceeds input"));
        }
        let s = self.data[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(s)
    }

    fn list(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.take()?; // 'l'
        let mut items = Vec::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated list"))? {
                b'e' => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                _ => items.push(self.value(depth + 1)?),
            }
        }
    }

    fn dictionary(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.take()?; // 'd'
        let mut map = BTreeMap::new();
        let mut last_key: Option<Vec<u8>> = None;
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated dict"))? {
                b'e' => {
                    self.pos += 1;
                    return Ok(Value::Dict(map));
                }
                b'0'..=b'9' => {
                    let key = self.byte_string()?;
                    if let Some(prev) = &last_key {
                        if *prev >= key {
                            return Err(self.err("dict keys not strictly sorted"));
                        }
                    }
                    let val = self.value(depth + 1)?;
                    last_key = Some(key.clone());
                    map.insert(key, val);
                }
                _ => return Err(self.err("dict key must be a string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_primitives() {
        assert_eq!(Value::Int(42).encode(), b"i42e");
        assert_eq!(Value::Int(-7).encode(), b"i-7e");
        assert_eq!(Value::Int(0).encode(), b"i0e");
        assert_eq!(Value::str("spam").encode(), b"4:spam");
        assert_eq!(Value::bytes(b"").encode(), b"0:");
    }

    #[test]
    fn encode_compound() {
        let v = Value::List(vec![Value::str("a"), Value::Int(1)]);
        assert_eq!(v.encode(), b"l1:ai1ee");
        let d = dict(vec![(b"b", Value::Int(2)), (b"a", Value::Int(1))]);
        // Keys come out sorted regardless of insertion order.
        assert_eq!(d.encode(), b"d1:ai1e1:bi2ee");
    }

    #[test]
    fn decode_primitives() {
        assert_eq!(Value::decode(b"i42e").unwrap(), Value::Int(42));
        assert_eq!(Value::decode(b"i-7e").unwrap(), Value::Int(-7));
        assert_eq!(Value::decode(b"4:spam").unwrap(), Value::str("spam"));
        assert_eq!(Value::decode(b"0:").unwrap(), Value::bytes(b""));
    }

    #[test]
    fn decode_nested() {
        let v = Value::decode(b"d1:ad2:id2:XYe1:q4:ping1:t2:aa1:y1:qe").unwrap();
        assert_eq!(
            v.get(b"a")
                .and_then(|a| a.get(b"id"))
                .and_then(|i| i.as_bytes()),
            Some(&b"XY"[..])
        );
        assert_eq!(v.get(b"q").and_then(|q| q.as_bytes()), Some(&b"ping"[..]));
    }

    #[test]
    fn reject_malformed() {
        for bad in [
            &b"i42"[..],       // unterminated int
            b"ie",             // empty int
            b"i-0e",           // negative zero
            b"i042e",          // leading zero
            b"4:spa",          // short string
            b"04:spam",        // leading zero in length
            b"l1:a",           // unterminated list
            b"d1:ae",          // key without value
            b"di1e1:ae",       // non-string key
            b"d1:bi1e1:ai2ee", // unsorted keys
            b"d1:ai1e1:ai2ee", // duplicate keys
            b"x",              // invalid prefix
            b"",               // empty
            b"i1ei2e",         // trailing bytes
        ] {
            assert!(Value::decode(bad).is_err(), "should reject {:?}", bad);
        }
    }

    #[test]
    fn binary_strings_preserved() {
        // Node IDs and compact node info are raw binary — must round-trip.
        let raw: Vec<u8> = (0u8..=255).collect();
        let v = Value::Bytes(raw.clone());
        let enc = v.encode();
        assert_eq!(Value::decode(&enc).unwrap().as_bytes().unwrap(), &raw[..]);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut attack = vec![b'l'; 100];
        attack.extend(std::iter::repeat_n(b'e', 100));
        assert!(Value::decode(&attack).is_err());
    }

    #[test]
    fn int_overflow_rejected() {
        assert!(Value::decode(b"i99999999999999999999999e").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::decode(b"d1:lli1ei2eee").unwrap();
        let l = v.get(b"l").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].as_int(), Some(1));
        assert!(v.get(b"missing").is_none());
        assert!(Value::Int(1).get(b"x").is_none());
        assert!(Value::Int(1).as_bytes().is_none());
        assert!(Value::str("x").as_int().is_none());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Value::Int),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        ];
        leaf.prop_recursive(3, 32, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
                proptest::collection::btree_map(
                    proptest::collection::vec(any::<u8>(), 0..8),
                    inner,
                    0..4
                )
                .prop_map(Value::Dict),
            ]
        })
    }

    proptest! {
        /// encode ∘ decode = identity for all values.
        #[test]
        fn prop_roundtrip(v in arb_value()) {
            let enc = v.encode();
            let dec = Value::decode(&enc).unwrap();
            prop_assert_eq!(v, dec);
        }

        /// The decoder never panics on arbitrary input.
        #[test]
        fn prop_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Value::decode(&data);
        }

        /// Canonical encoding: decoding then re-encoding is byte-identical.
        #[test]
        fn prop_canonical(v in arb_value()) {
            let enc = v.encode();
            let re = Value::decode(&enc).unwrap().encode();
            prop_assert_eq!(enc, re);
        }
    }
}
