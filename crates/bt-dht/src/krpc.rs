//! KRPC (BEP-05): the RPC protocol of the mainline DHT.
//!
//! Queries and responses are bencoded dictionaries carried in single UDP
//! datagrams. We implement the two message kinds the paper's crawler uses —
//! `ping` (the paper's `bt_ping`) and `find_node` — plus the generic error
//! message. Contact information travels as *compact node info*: 26 bytes
//! per node (20-byte node ID, 4-byte IPv4 address, 2-byte big-endian port).

use crate::bencode::{dict, Value};
use crate::node_id::NodeId160;
use netcore::Endpoint;
use std::fmt;
use std::net::Ipv4Addr;

/// A node's contact information as carried in `find_node` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompactNode {
    pub id: NodeId160,
    pub endpoint: Endpoint,
}

impl CompactNode {
    pub const WIRE_LEN: usize = 26;

    pub fn new(id: NodeId160, endpoint: Endpoint) -> Self {
        CompactNode { id, endpoint }
    }

    /// Serialize to the 26-byte compact format.
    pub fn to_wire(&self) -> [u8; 26] {
        let mut out = [0u8; 26];
        out[..20].copy_from_slice(self.id.as_bytes());
        out[20..24].copy_from_slice(&self.endpoint.ip.octets());
        out[24..26].copy_from_slice(&self.endpoint.port.to_be_bytes());
        out
    }

    pub fn from_wire(b: &[u8]) -> Option<CompactNode> {
        if b.len() != Self::WIRE_LEN {
            return None;
        }
        let id = NodeId160::from_bytes(&b[..20])?;
        let ip = Ipv4Addr::new(b[20], b[21], b[22], b[23]);
        let port = u16::from_be_bytes([b[24], b[25]]);
        Some(CompactNode {
            id,
            endpoint: Endpoint::new(ip, port),
        })
    }

    /// Parse a concatenated "nodes" blob.
    pub fn parse_list(blob: &[u8]) -> Option<Vec<CompactNode>> {
        if blob.len() % Self::WIRE_LEN != 0 {
            return None;
        }
        blob.chunks(Self::WIRE_LEN)
            .map(CompactNode::from_wire)
            .collect()
    }

    /// Serialize a list into a "nodes" blob.
    pub fn encode_list(nodes: &[CompactNode]) -> Vec<u8> {
        let mut out = Vec::with_capacity(nodes.len() * Self::WIRE_LEN);
        for n in nodes {
            out.extend_from_slice(&n.to_wire());
        }
        out
    }
}

/// Query kinds the simulation speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    Ping,
    FindNode,
}

impl QueryKind {
    fn wire_name(self) -> &'static [u8] {
        match self {
            QueryKind::Ping => b"ping",
            QueryKind::FindNode => b"find_node",
        }
    }
}

/// A parsed KRPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KrpcMessage {
    Query {
        transaction: Vec<u8>,
        kind: QueryKind,
        sender: NodeId160,
        /// `find_node` target (absent for `ping`).
        target: Option<NodeId160>,
    },
    Response {
        transaction: Vec<u8>,
        sender: NodeId160,
        /// Compact nodes, present in `find_node` responses.
        nodes: Vec<CompactNode>,
    },
    Error {
        transaction: Vec<u8>,
        code: i64,
        message: String,
    },
}

/// Message parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KrpcError(pub &'static str);

impl fmt::Display for KrpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "krpc: {}", self.0)
    }
}

impl std::error::Error for KrpcError {}

impl KrpcMessage {
    pub fn ping(transaction: &[u8], sender: NodeId160) -> KrpcMessage {
        KrpcMessage::Query {
            transaction: transaction.to_vec(),
            kind: QueryKind::Ping,
            sender,
            target: None,
        }
    }

    pub fn find_node(transaction: &[u8], sender: NodeId160, target: NodeId160) -> KrpcMessage {
        KrpcMessage::Query {
            transaction: transaction.to_vec(),
            kind: QueryKind::FindNode,
            sender,
            target: Some(target),
        }
    }

    pub fn pong(transaction: &[u8], sender: NodeId160) -> KrpcMessage {
        KrpcMessage::Response {
            transaction: transaction.to_vec(),
            sender,
            nodes: Vec::new(),
        }
    }

    pub fn nodes_response(
        transaction: &[u8],
        sender: NodeId160,
        nodes: Vec<CompactNode>,
    ) -> KrpcMessage {
        KrpcMessage::Response {
            transaction: transaction.to_vec(),
            sender,
            nodes,
        }
    }

    /// Encode to the bencoded wire form.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KrpcMessage::Query {
                transaction,
                kind,
                sender,
                target,
            } => {
                let mut args = vec![(&b"id"[..], Value::bytes(sender.as_bytes()))];
                if let Some(t) = target {
                    args.push((&b"target"[..], Value::bytes(t.as_bytes())));
                }
                dict(vec![
                    (b"a", dict(args)),
                    (b"q", Value::bytes(kind.wire_name())),
                    (b"t", Value::Bytes(transaction.clone())),
                    (b"y", Value::str("q")),
                ])
                .encode()
            }
            KrpcMessage::Response {
                transaction,
                sender,
                nodes,
            } => {
                let mut ret = vec![(&b"id"[..], Value::bytes(sender.as_bytes()))];
                if !nodes.is_empty() {
                    ret.push((&b"nodes"[..], Value::Bytes(CompactNode::encode_list(nodes))));
                }
                dict(vec![
                    (b"r", dict(ret)),
                    (b"t", Value::Bytes(transaction.clone())),
                    (b"y", Value::str("r")),
                ])
                .encode()
            }
            KrpcMessage::Error {
                transaction,
                code,
                message,
            } => dict(vec![
                (
                    b"e",
                    Value::List(vec![Value::Int(*code), Value::str(message)]),
                ),
                (b"t", Value::Bytes(transaction.clone())),
                (b"y", Value::str("e")),
            ])
            .encode(),
        }
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<KrpcMessage, KrpcError> {
        let v = Value::decode(data).map_err(|_| KrpcError("not bencode"))?;
        let t = v
            .get(b"t")
            .and_then(|t| t.as_bytes())
            .ok_or(KrpcError("missing transaction"))?
            .to_vec();
        match v.get(b"y").and_then(|y| y.as_bytes()) {
            Some(b"q") => {
                let q = v
                    .get(b"q")
                    .and_then(|q| q.as_bytes())
                    .ok_or(KrpcError("missing q"))?;
                let kind = match q {
                    b"ping" => QueryKind::Ping,
                    b"find_node" => QueryKind::FindNode,
                    _ => return Err(KrpcError("unknown query")),
                };
                let args = v.get(b"a").ok_or(KrpcError("missing args"))?;
                let sender = args
                    .get(b"id")
                    .and_then(|i| i.as_bytes())
                    .and_then(NodeId160::from_bytes)
                    .ok_or(KrpcError("bad sender id"))?;
                let target = match kind {
                    QueryKind::FindNode => Some(
                        args.get(b"target")
                            .and_then(|t| t.as_bytes())
                            .and_then(NodeId160::from_bytes)
                            .ok_or(KrpcError("bad target"))?,
                    ),
                    QueryKind::Ping => None,
                };
                Ok(KrpcMessage::Query {
                    transaction: t,
                    kind,
                    sender,
                    target,
                })
            }
            Some(b"r") => {
                let ret = v.get(b"r").ok_or(KrpcError("missing return"))?;
                let sender = ret
                    .get(b"id")
                    .and_then(|i| i.as_bytes())
                    .and_then(NodeId160::from_bytes)
                    .ok_or(KrpcError("bad responder id"))?;
                let nodes = match ret.get(b"nodes").and_then(|n| n.as_bytes()) {
                    Some(blob) => {
                        CompactNode::parse_list(blob).ok_or(KrpcError("bad nodes blob"))?
                    }
                    None => Vec::new(),
                };
                Ok(KrpcMessage::Response {
                    transaction: t,
                    sender,
                    nodes,
                })
            }
            Some(b"e") => {
                let e = v
                    .get(b"e")
                    .and_then(|e| e.as_list())
                    .ok_or(KrpcError("bad error"))?;
                let code = e
                    .first()
                    .and_then(|c| c.as_int())
                    .ok_or(KrpcError("bad error code"))?;
                let message = e
                    .get(1)
                    .and_then(|m| m.as_bytes())
                    .map(|m| String::from_utf8_lossy(m).into_owned())
                    .unwrap_or_default();
                Ok(KrpcMessage::Error {
                    transaction: t,
                    code,
                    message,
                })
            }
            _ => Err(KrpcError("missing/unknown message type")),
        }
    }

    pub fn transaction(&self) -> &[u8] {
        match self {
            KrpcMessage::Query { transaction, .. }
            | KrpcMessage::Response { transaction, .. }
            | KrpcMessage::Error { transaction, .. } => transaction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use proptest::prelude::*;

    fn nid(n: u64) -> NodeId160 {
        NodeId160::from_u64(n)
    }

    #[test]
    fn compact_node_roundtrip() {
        let n = CompactNode::new(nid(42), Endpoint::new(ip(100, 64, 3, 7), 6881));
        let wire = n.to_wire();
        assert_eq!(wire.len(), 26);
        assert_eq!(CompactNode::from_wire(&wire), Some(n));
    }

    #[test]
    fn compact_node_wire_layout() {
        let n = CompactNode::new(nid(1), Endpoint::new(ip(1, 2, 3, 4), 0x1234));
        let w = n.to_wire();
        assert_eq!(&w[20..24], &[1, 2, 3, 4]);
        assert_eq!(&w[24..26], &[0x12, 0x34], "port must be big-endian");
    }

    #[test]
    fn compact_list_roundtrip() {
        let nodes: Vec<CompactNode> = (0..8)
            .map(|i| {
                CompactNode::new(
                    nid(i),
                    Endpoint::new(ip(10, 0, 0, i as u8), 6881 + i as u16),
                )
            })
            .collect();
        let blob = CompactNode::encode_list(&nodes);
        assert_eq!(blob.len(), 8 * 26);
        assert_eq!(CompactNode::parse_list(&blob), Some(nodes));
    }

    #[test]
    fn compact_list_rejects_partial() {
        assert_eq!(CompactNode::parse_list(&[0u8; 25]), None);
        assert_eq!(CompactNode::parse_list(&[0u8; 27]), None);
        assert_eq!(CompactNode::parse_list(&[]), Some(vec![]));
    }

    #[test]
    fn ping_roundtrip() {
        let msg = KrpcMessage::ping(b"aa", nid(7));
        let wire = msg.encode();
        assert_eq!(KrpcMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn find_node_roundtrip() {
        let msg = KrpcMessage::find_node(b"xy", nid(7), nid(999));
        let wire = msg.encode();
        assert_eq!(KrpcMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn nodes_response_roundtrip() {
        let nodes = vec![
            CompactNode::new(nid(1), Endpoint::new(ip(192, 168, 1, 2), 6881)),
            CompactNode::new(nid(2), Endpoint::new(ip(100, 64, 0, 9), 51413)),
        ];
        let msg = KrpcMessage::nodes_response(b"tt", nid(3), nodes);
        let wire = msg.encode();
        assert_eq!(KrpcMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn pong_roundtrip() {
        let msg = KrpcMessage::pong(b"01", nid(5));
        assert_eq!(KrpcMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn error_roundtrip() {
        let msg = KrpcMessage::Error {
            transaction: b"zz".to_vec(),
            code: 201,
            message: "Generic Error".into(),
        };
        assert_eq!(KrpcMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn wire_format_matches_bep05_example_shape() {
        // d1:ad2:id20:...e1:q4:ping1:t2:aa1:y1:qe
        let wire = KrpcMessage::ping(b"aa", nid(0)).encode();
        assert!(
            wire.starts_with(b"d1:ad2:id20:"),
            "{:?}",
            String::from_utf8_lossy(&wire)
        );
        assert!(wire.ends_with(b"1:q4:ping1:t2:aa1:y1:qe"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(KrpcMessage::decode(b"").is_err());
        assert!(KrpcMessage::decode(b"i42e").is_err());
        assert!(KrpcMessage::decode(b"d1:y1:qe").is_err()); // missing t/q/a
                                                            // Bad sender id length.
        let bad = dict(vec![
            (b"a", dict(vec![(&b"id"[..], Value::str("short"))])),
            (b"q", Value::str("ping")),
            (b"t", Value::str("aa")),
            (b"y", Value::str("q")),
        ])
        .encode();
        assert!(KrpcMessage::decode(&bad).is_err());
    }

    proptest! {
        /// Any message round-trips through the wire format.
        #[test]
        fn prop_roundtrip(
            t in proptest::collection::vec(any::<u8>(), 1..4),
            sender in any::<u64>(),
            target in any::<u64>(),
            n_nodes in 0usize..8,
            which in 0usize..4,
        ) {
            let msg = match which {
                0 => KrpcMessage::ping(&t, nid(sender)),
                1 => KrpcMessage::find_node(&t, nid(sender), nid(target)),
                2 => {
                    let nodes: Vec<CompactNode> = (0..n_nodes)
                        .map(|i| CompactNode::new(nid(i as u64), Endpoint::new(ip(10, 0, 0, i as u8), 6881)))
                        .collect();
                    KrpcMessage::nodes_response(&t, nid(sender), nodes)
                }
                _ => KrpcMessage::Error { transaction: t.clone(), code: 203, message: "x".into() },
            };
            prop_assert_eq!(KrpcMessage::decode(&msg.encode()).unwrap(), msg);
        }

        /// Decoder is total.
        #[test]
        fn prop_decode_total(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = KrpcMessage::decode(&data);
        }
    }
}
