//! The DHT peer state machine.
//!
//! A peer owns a UDP socket (its internal endpoint), a node ID and a
//! routing table. It answers `ping` and `find_node` queries, performs
//! iterative lookups for table maintenance, and — crucially for the paper —
//! *validates contacts before adding them*: a candidate endpoint must answer
//! a `bt_ping` before it enters the routing table and can be propagated to
//! others. The paper's calibration (§4.1) found 98.7% of live peers behave
//! this way; [`PeerConfig::validates_before_adding`] models the violators.
//!
//! Internal endpoints enter tables through two channels, both validated in
//! the paper:
//!
//! 1. **Local peer discovery (LPD)** — a multicast announcement scoped to
//!    the peer's realm; receivers learn the announcer's internal endpoint.
//! 2. **Hairpinned queries** — when a NAT hairpins without rewriting the
//!    source, the receiver observes the sender's internal endpoint directly
//!    and, after validating it, stores it.

use crate::krpc::{CompactNode, KrpcMessage, QueryKind};
use crate::node_id::NodeId160;
use crate::routing::{RoutingTable160, K};
use netcore::{Endpoint, Packet, PacketBody};
use rand::rngs::StdRng;
use rand::Rng;
use simnet::NodeId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// The well-known local peer discovery multicast port (BEP-14).
pub const LPD_PORT: u16 = 6771;

/// Peer behaviour knobs.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Whether contacts are validated with a `bt_ping` before insertion
    /// (spec behaviour; 98.7% of peers in the paper's calibration).
    pub validates_before_adding: bool,
    /// Whether the client participates in local peer discovery.
    pub lpd_enabled: bool,
    /// Maximum validation pings sent per tick.
    pub validations_per_tick: usize,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            validates_before_adding: true,
            lpd_enabled: true,
            validations_per_tick: 8,
        }
    }
}

/// A not-yet-validated contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    /// Known node ID, if the contact came from a KRPC message.
    id: Option<NodeId160>,
    endpoint: Endpoint,
}

/// One DHT participant bound to a simulated host.
#[derive(Debug)]
pub struct DhtPeer {
    /// The simulated host this peer runs on.
    pub sim_node: NodeId,
    /// The host's own (possibly internal) address.
    pub addr: Ipv4Addr,
    /// The DHT socket port.
    pub port: u16,
    pub id: NodeId160,
    pub table: RoutingTable160,
    pub config: PeerConfig,
    candidates: VecDeque<Candidate>,
    /// Endpoints already queued or validated — dedup for the candidate queue.
    seen_candidates: HashSet<Endpoint>,
    /// Outstanding validation pings: transaction → candidate endpoint.
    pending_pings: HashMap<Vec<u8>, Endpoint>,
    next_txn: u64,
    /// Counters.
    pub queries_received: u64,
    pub responses_sent: u64,
    pub contacts_validated: u64,
    /// Contacts stored without a validation ping (spec violators only).
    pub contacts_inserted_unvalidated: u64,
}

impl DhtPeer {
    pub fn new(
        sim_node: NodeId,
        addr: Ipv4Addr,
        port: u16,
        id: NodeId160,
        config: PeerConfig,
    ) -> Self {
        DhtPeer {
            sim_node,
            addr,
            port,
            id,
            table: RoutingTable160::new(id),
            config,
            candidates: VecDeque::new(),
            seen_candidates: HashSet::new(),
            pending_pings: HashMap::new(),
            next_txn: 0,
            queries_received: 0,
            responses_sent: 0,
            contacts_validated: 0,
            contacts_inserted_unvalidated: 0,
        }
    }

    /// The endpoint this peer sends from.
    pub fn local_endpoint(&self) -> Endpoint {
        Endpoint::new(self.addr, self.port)
    }

    fn txn(&mut self) -> Vec<u8> {
        let t = self.next_txn;
        self.next_txn += 1;
        t.to_be_bytes()[6..].to_vec()
    }

    fn udp_to(&self, dst: Endpoint, payload: Vec<u8>) -> Packet {
        Packet::udp(self.local_endpoint(), dst, payload)
    }

    /// Queue a contact for validation (or insert directly for violators
    /// when the ID is already known).
    fn consider(&mut self, id: Option<NodeId160>, endpoint: Endpoint) {
        if endpoint == self.local_endpoint() || Some(self.id) == id {
            return;
        }
        if id.is_none() && self.table.knows_endpoint(endpoint) {
            return; // tracker/LPD candidate already in the table
        }
        if let Some(i) = id {
            if self.table.endpoint_of(i) == Some(endpoint) {
                return; // already known at this endpoint
            }
            if !self.config.validates_before_adding {
                // Spec violator: store immediately, no reachability check.
                if self.table.upsert(CompactNode::new(i, endpoint)) {
                    self.contacts_inserted_unvalidated += 1;
                }
                return;
            }
        }
        if self.seen_candidates.insert(endpoint) {
            self.candidates.push_back(Candidate { id, endpoint });
        }
    }

    /// Build a `find_node` query packet toward `dst`.
    pub fn find_node_query(&mut self, dst: Endpoint, target: NodeId160) -> Packet {
        let t = self.txn();
        self.udp_to(dst, KrpcMessage::find_node(&t, self.id, target).encode())
    }

    /// The LPD announcement (port advertisement) for multicast.
    ///
    /// Follows the BEP-14 shape: an HTTP-like datagram carrying the
    /// announcer's listening port.
    pub fn lpd_payload(&self) -> Vec<u8> {
        format!(
            "BT-SEARCH * HTTP/1.1\r\nHost: 239.192.152.143:6771\r\nPort: {}\r\nInfohash: 0000000000000000000000000000000000000000\r\n\r\n",
            self.port
        )
        .into_bytes()
    }

    /// Build a tracker announce datagram for `swarm` (a simplified UDP
    /// tracker protocol: the tracker records the observed source endpoint
    /// under the swarm and answers with a peer sample).
    pub fn tracker_announce(&self, tracker: Endpoint, swarm: u32) -> Packet {
        self.udp_to(tracker, format!("BTT ANNOUNCE {swarm}").into_bytes())
    }

    /// Parse a tracker peer-list response; returns the peer endpoints.
    pub fn parse_tracker_peers(payload: &[u8]) -> Option<Vec<Endpoint>> {
        let text = std::str::from_utf8(payload).ok()?;
        let rest = text.strip_prefix("BTT PEERS")?;
        Some(
            rest.split_whitespace()
                .filter_map(|tok| {
                    let (ip, port) = tok.rsplit_once(':')?;
                    Some(Endpoint::new(ip.parse().ok()?, port.parse().ok()?))
                })
                .collect(),
        )
    }

    /// Parse an LPD announcement; returns the advertised port.
    pub fn parse_lpd(payload: &[u8]) -> Option<u16> {
        let text = std::str::from_utf8(payload).ok()?;
        if !text.starts_with("BT-SEARCH") {
            return None;
        }
        text.lines()
            .find_map(|l| l.strip_prefix("Port: "))
            .and_then(|p| p.trim().parse().ok())
    }

    /// Handle a delivered packet; returns packets to transmit in response.
    pub fn handle_packet(&mut self, pkt: &Packet) -> Vec<Packet> {
        let payload = match &pkt.body {
            PacketBody::Udp { payload } => payload,
            _ => return Vec::new(),
        };
        // Local peer discovery?
        if pkt.dst.port == LPD_PORT {
            if !self.config.lpd_enabled {
                return Vec::new();
            }
            if let Some(port) = Self::parse_lpd(payload) {
                self.consider(None, Endpoint::new(pkt.src.ip, port));
            }
            return Vec::new();
        }
        if pkt.dst.port != self.port {
            return Vec::new();
        }
        // Tracker peer list?
        if payload.starts_with(b"BTT PEERS") {
            if let Some(peers) = Self::parse_tracker_peers(payload) {
                for ep in peers {
                    self.consider(None, ep);
                }
            }
            return Vec::new();
        }
        let msg = match KrpcMessage::decode(payload) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };
        match msg {
            KrpcMessage::Query {
                transaction,
                kind,
                sender,
                target,
            } => {
                self.queries_received += 1;
                // The querier becomes a candidate at its observed source
                // endpoint — the hairpin-leak channel when that source is
                // internal.
                self.consider(Some(sender), pkt.src);
                let reply = match kind {
                    QueryKind::Ping => KrpcMessage::pong(&transaction, self.id),
                    QueryKind::FindNode => {
                        let target = target.expect("find_node always has a target");
                        KrpcMessage::nodes_response(
                            &transaction,
                            self.id,
                            self.table.closest(target, K),
                        )
                    }
                };
                self.responses_sent += 1;
                vec![self.udp_to(pkt.src, reply.encode())]
            }
            KrpcMessage::Response {
                transaction,
                sender,
                nodes,
            } => {
                // Validation pong?
                if let Some(expected) = self.pending_pings.remove(&transaction) {
                    if expected == pkt.src {
                        self.contacts_validated += 1;
                        self.table.upsert(CompactNode::new(sender, pkt.src));
                    } else {
                        // The answer came back from a *different* endpoint
                        // than we probed — the signature of a hairpinning
                        // NAT that preserves internal sources. The observed
                        // endpoint is the peer's internal one; validate it
                        // directly (§4.1's leak channel).
                        self.consider(Some(sender), pkt.src);
                    }
                } else {
                    // A response observed from an endpoint that differs
                    // from the stored contact (e.g. hairpinned traffic
                    // showing the internal source) makes that endpoint a
                    // candidate: clients track peers by the addresses
                    // traffic actually arrives from.
                    self.consider(Some(sender), pkt.src);
                }
                // Nodes learned from a lookup become candidates.
                for n in nodes {
                    self.consider(Some(n.id), n.endpoint);
                }
                Vec::new()
            }
            KrpcMessage::Error { .. } => Vec::new(),
        }
    }

    /// Periodic maintenance: validate queued candidates and refresh the
    /// table with a lookup. Returns packets to transmit.
    pub fn tick(&mut self, rng: &mut StdRng) -> Vec<Packet> {
        let mut out = Vec::new();
        for _ in 0..self.config.validations_per_tick {
            let Some(c) = self.candidates.pop_front() else {
                break;
            };
            self.seen_candidates.remove(&c.endpoint);
            let t = self.txn();
            self.pending_pings.insert(t.clone(), c.endpoint);
            out.push(self.udp_to(c.endpoint, KrpcMessage::ping(&t, self.id).encode()));
        }
        // Refresh: ask random known contacts for nodes near a random ID
        // (random-target lookups keep far buckets populated and spread
        // validated endpoints — including internal ones — through the
        // neighbourhood).
        let contacts: Vec<CompactNode> = self.table.iter().copied().collect();
        if !contacts.is_empty() {
            for _ in 0..2 {
                let c = contacts[rng.gen_range(0..contacts.len())];
                let target = if rng.gen_bool(0.5) {
                    self.id
                } else {
                    NodeId160::random(rng)
                };
                out.push(self.find_node_query(c.endpoint, target));
            }
        }
        out
    }

    /// Number of queued (unvalidated) candidates — diagnostic.
    pub fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use rand::SeedableRng;

    fn peer() -> DhtPeer {
        DhtPeer::new(
            NodeId(0),
            ip(100, 64, 0, 10),
            6881,
            NodeId160::from_u64(1000),
            PeerConfig::default(),
        )
    }

    fn remote(n: u64, last: u8) -> (NodeId160, Endpoint) {
        (
            NodeId160::from_u64(n),
            Endpoint::new(ip(203, 0, 113, last), 6881),
        )
    }

    #[test]
    fn answers_ping_with_pong() {
        let mut p = peer();
        let (rid, rep) = remote(7, 7);
        let q = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::ping(b"aa", rid).encode(),
        );
        let out = p.handle_packet(&q);
        assert_eq!(out.len(), 1);
        let reply = KrpcMessage::decode(out[0].body.payload()).unwrap();
        assert_eq!(reply, KrpcMessage::pong(b"aa", p.id));
        assert_eq!(out[0].dst, rep);
        assert_eq!(p.queries_received, 1);
    }

    #[test]
    fn answers_find_node_with_closest() {
        let mut p = peer();
        // Preload the table.
        for n in 1..=20u64 {
            p.table.upsert(CompactNode::new(
                NodeId160::from_u64(n),
                Endpoint::new(ip(198, 51, 100, n as u8), 6881),
            ));
        }
        let (rid, rep) = remote(500, 9);
        let q = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::find_node(b"bb", rid, NodeId160::from_u64(5)).encode(),
        );
        let out = p.handle_packet(&q);
        let reply = KrpcMessage::decode(out[0].body.payload()).unwrap();
        match reply {
            KrpcMessage::Response { nodes, .. } => {
                assert_eq!(nodes.len(), 8);
                // Closest to 5 is 5 itself (distance 0 is impossible —
                // the entry for 5 exists, distance 0 from target, fine).
                assert_eq!(nodes[0].id, NodeId160::from_u64(5));
            }
            other => panic!("expected nodes response, got {other:?}"),
        }
    }

    #[test]
    fn querier_is_validated_before_table_insertion() {
        let mut p = peer();
        let (rid, rep) = remote(7, 7);
        let q = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::ping(b"aa", rid).encode(),
        );
        p.handle_packet(&q);
        // Not yet in the table — only a candidate.
        assert_eq!(p.table.endpoint_of(rid), None);
        assert_eq!(p.pending_candidates(), 1);
        // Tick sends the validation ping.
        let mut rng = StdRng::seed_from_u64(0);
        let out = p.tick(&mut rng);
        assert!(!out.is_empty());
        let ping = KrpcMessage::decode(out[0].body.payload()).unwrap();
        let txn = ping.transaction().to_vec();
        assert!(matches!(
            ping,
            KrpcMessage::Query {
                kind: QueryKind::Ping,
                ..
            }
        ));
        // Pong arrives from the candidate endpoint → inserted.
        let pong = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::pong(&txn, rid).encode(),
        );
        p.handle_packet(&pong);
        assert_eq!(p.table.endpoint_of(rid), Some(rep));
        assert_eq!(p.contacts_validated, 1);
    }

    #[test]
    fn pong_from_wrong_endpoint_is_ignored() {
        let mut p = peer();
        let (rid, rep) = remote(7, 7);
        let q = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::ping(b"aa", rid).encode(),
        );
        p.handle_packet(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let out = p.tick(&mut rng);
        let txn = KrpcMessage::decode(out[0].body.payload())
            .unwrap()
            .transaction()
            .to_vec();
        // Pong arrives from a *different* endpoint (spoof / symmetric NAT
        // port change): not validated.
        let wrong = Endpoint::new(ip(203, 0, 113, 99), 6881);
        let pong = Packet::udp(
            wrong,
            p.local_endpoint(),
            KrpcMessage::pong(&txn, rid).encode(),
        );
        p.handle_packet(&pong);
        assert_eq!(p.table.endpoint_of(rid), None);
    }

    #[test]
    fn violator_inserts_without_validation() {
        let mut p = DhtPeer::new(
            NodeId(0),
            ip(100, 64, 0, 10),
            6881,
            NodeId160::from_u64(1000),
            PeerConfig {
                validates_before_adding: false,
                ..PeerConfig::default()
            },
        );
        let (rid, rep) = remote(7, 7);
        let q = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::ping(b"aa", rid).encode(),
        );
        p.handle_packet(&q);
        assert_eq!(
            p.table.endpoint_of(rid),
            Some(rep),
            "violator stores immediately"
        );
    }

    #[test]
    fn nodes_from_responses_become_candidates_not_contacts() {
        let mut p = peer();
        let (rid, rep) = remote(7, 7);
        let nodes = vec![CompactNode::new(
            NodeId160::from_u64(55),
            Endpoint::new(ip(198, 51, 100, 55), 6881),
        )];
        // Unsolicited response (no pending txn): nothing enters the table;
        // both the contained node and the (unexpected) sender endpoint
        // become candidates.
        let resp = Packet::udp(
            rep,
            p.local_endpoint(),
            KrpcMessage::nodes_response(b"zz", rid, nodes).encode(),
        );
        p.handle_packet(&resp);
        assert_eq!(p.table.len(), 0);
        assert_eq!(p.pending_candidates(), 2);
    }

    #[test]
    fn lpd_roundtrip_and_learning() {
        let mut p = peer();
        let announcer = peer_with_port(51413);
        let payload = announcer.lpd_payload();
        assert_eq!(DhtPeer::parse_lpd(&payload), Some(51413));
        // Delivered via multicast to our LPD port.
        let pkt = Packet::udp(
            Endpoint::new(ip(100, 64, 0, 77), 51413),
            Endpoint::new(p.addr, LPD_PORT),
            payload,
        );
        p.handle_packet(&pkt);
        assert_eq!(
            p.pending_candidates(),
            1,
            "LPD source must become a candidate"
        );
    }

    fn peer_with_port(port: u16) -> DhtPeer {
        DhtPeer::new(
            NodeId(1),
            ip(100, 64, 0, 77),
            port,
            NodeId160::from_u64(2000),
            PeerConfig::default(),
        )
    }

    #[test]
    fn lpd_disabled_ignores_announcements() {
        let mut p = DhtPeer::new(
            NodeId(0),
            ip(100, 64, 0, 10),
            6881,
            NodeId160::from_u64(1000),
            PeerConfig {
                lpd_enabled: false,
                ..PeerConfig::default()
            },
        );
        let pkt = Packet::udp(
            Endpoint::new(ip(100, 64, 0, 77), 51413),
            Endpoint::new(p.addr, LPD_PORT),
            peer_with_port(51413).lpd_payload(),
        );
        p.handle_packet(&pkt);
        assert_eq!(p.pending_candidates(), 0);
    }

    #[test]
    fn garbage_and_foreign_packets_ignored() {
        let mut p = peer();
        let junk = Packet::udp(
            Endpoint::new(ip(9, 9, 9, 9), 1),
            p.local_endpoint(),
            b"not bencode".to_vec(),
        );
        assert!(p.handle_packet(&junk).is_empty());
        // Wrong destination port.
        let other_port = Packet::udp(
            Endpoint::new(ip(9, 9, 9, 9), 1),
            Endpoint::new(p.addr, 9999),
            KrpcMessage::ping(b"aa", NodeId160::from_u64(1)).encode(),
        );
        assert!(p.handle_packet(&other_port).is_empty());
        // TCP is not KRPC.
        let tcp = Packet::tcp(
            Endpoint::new(ip(9, 9, 9, 9), 1),
            p.local_endpoint(),
            netcore::TcpFlags::SYN,
            vec![],
        );
        assert!(p.handle_packet(&tcp).is_empty());
    }

    #[test]
    fn own_endpoint_never_considered() {
        let mut p = peer();
        let own = p.local_endpoint();
        let q = Packet::udp(own, own, KrpcMessage::ping(b"aa", p.id).encode());
        p.handle_packet(&q);
        assert_eq!(p.pending_candidates(), 0);
    }

    #[test]
    fn tick_refreshes_via_known_contact() {
        let mut p = peer();
        p.table.upsert(CompactNode::new(
            NodeId160::from_u64(5),
            Endpoint::new(ip(198, 51, 100, 5), 6881),
        ));
        let mut rng = StdRng::seed_from_u64(0);
        let out = p.tick(&mut rng);
        assert_eq!(out.len(), 2, "two maintenance lookups per tick");
        for pkt in &out {
            let msg = KrpcMessage::decode(pkt.body.payload()).unwrap();
            assert!(matches!(
                msg,
                KrpcMessage::Query {
                    kind: QueryKind::FindNode,
                    ..
                }
            ));
        }
    }
}
