//! # bt-dht — BitTorrent mainline DHT over the simulated network
//!
//! Implements the substrate for §4.1 of the IMC 2016 CGN paper:
//!
//! * [`bencode`] — the bencoding wire format (BEP-03) used by all DHT
//!   traffic;
//! * [`krpc`] — the KRPC protocol (BEP-05): `ping` and `find_node` queries
//!   and responses with compact node info;
//! * [`node_id`] — 160-bit node identifiers and the Kademlia XOR metric;
//! * [`routing`] — k-bucket routing tables;
//! * [`peer`] — the peer state machine: answering queries, validating
//!   contacts before propagating them (the property the paper's
//!   calibration checks), learning internal endpoints via local peer
//!   discovery multicast and via hairpinned traffic;
//! * [`world`] — drives a population of peers over [`simnet`] through
//!   bootstrap and maintenance rounds;
//! * [`crawler`] — the paper's measurement crawler: batched `find_node`
//!   queries, internal-peer harvesting, leak bookkeeping, `bt_ping`
//!   responsiveness counts (Tables 2 and 3).

pub mod bencode;
pub mod crawler;
pub mod krpc;
pub mod node_id;
pub mod observer;
pub mod peer;
pub mod routing;
pub mod world;

pub use crawler::{CrawlConfig, CrawlReport, Crawler, LeakRecord};
pub use krpc::{CompactNode, KrpcMessage, QueryKind};
pub use node_id::NodeId160;
pub use observer::{observe, AllocationSignature, ExternalIpView, Sighting};
pub use peer::{DhtPeer, PeerConfig};
pub use routing::RoutingTable160;
pub use world::{DhtWorld, WorldConfig};
