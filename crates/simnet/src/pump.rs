//! Driving request/response protocols over the network.
//!
//! Application state machines (DHT peers, measurement servers) are owned by
//! the crates that define them; `simnet` only forwards packets. [`pump`]
//! is the generic driver loop that connects the two: it feeds deliveries to
//! a handler closure, sends whatever packets the handler emits, and repeats
//! until the exchange quiesces.
//!
//! The handler receives `(receiving node, packet)` and returns packets to
//! transmit as `(origin node, packet)` pairs — usually replies from the
//! receiving node, but relays and multi-party protocols fit too.

use crate::network::{Delivery, Network, NodeId};
use netcore::Packet;
use std::collections::VecDeque;

/// Counters describing one pump run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PumpStats {
    /// Packets handed to the handler.
    pub deliveries: u64,
    /// Packets the handler emitted.
    pub emissions: u64,
    /// True if the loop hit `max_steps` before quiescing.
    pub truncated: bool,
}

/// Run an exchange to quiescence (or `max_steps` deliveries).
///
/// `initial` seeds the loop with packets to send; every resulting delivery
/// is passed to `handle`, whose returned packets are sent in turn.
pub fn pump<F>(
    net: &mut Network,
    initial: Vec<(NodeId, Packet)>,
    mut handle: F,
    max_steps: usize,
) -> PumpStats
where
    F: FnMut(NodeId, &Packet) -> Vec<(NodeId, Packet)>,
{
    let mut stats = PumpStats::default();
    let mut queue: VecDeque<Delivery> = VecDeque::new();
    for (origin, pkt) in initial {
        for d in net.send(origin, pkt) {
            queue.push_back(d);
        }
    }
    while let Some(d) = queue.pop_front() {
        if stats.deliveries as usize >= max_steps {
            stats.truncated = true;
            break;
        }
        stats.deliveries += 1;
        for (origin, pkt) in handle(d.node, &d.pkt) {
            stats.emissions += 1;
            for nd in net.send(origin, pkt) {
                queue.push_back(nd);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RealmId;
    use netcore::{ip, Endpoint};

    #[test]
    fn ping_pong_quiesces() {
        let mut net = Network::new();
        let a = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let b = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 2), vec![]);
        let ea = Endpoint::new(ip(203, 0, 113, 1), 1000);
        let eb = Endpoint::new(ip(203, 0, 113, 2), 2000);

        // b echoes once; a stays silent on the echo.
        let initial = vec![(a, Packet::udp(ea, eb, b"ping".to_vec()))];
        let stats = pump(
            &mut net,
            initial,
            |node, pkt| {
                if node == b && pkt.body.payload() == b"ping" {
                    vec![(b, Packet::udp(eb, ea, b"pong".to_vec()))]
                } else {
                    vec![]
                }
            },
            100,
        );
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.emissions, 1);
        assert!(!stats.truncated);
    }

    #[test]
    fn max_steps_truncates_chatter() {
        let mut net = Network::new();
        let a = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let b = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 2), vec![]);
        let ea = Endpoint::new(ip(203, 0, 113, 1), 1000);
        let eb = Endpoint::new(ip(203, 0, 113, 2), 2000);

        // Infinite ping-pong: bounded by max_steps.
        let stats = pump(
            &mut net,
            vec![(a, Packet::udp(ea, eb, b"x".to_vec()))],
            |node, _pkt| {
                if node == b {
                    vec![(b, Packet::udp(eb, ea, b"x".to_vec()))]
                } else {
                    vec![(a, Packet::udp(ea, eb, b"x".to_vec()))]
                }
            },
            10,
        );
        assert!(stats.truncated);
        assert_eq!(stats.deliveries, 10);
    }

    #[test]
    fn drops_do_not_stall_the_loop() {
        let mut net = Network::new();
        let a = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 1), vec![]);
        let ea = Endpoint::new(ip(203, 0, 113, 1), 1000);
        let nowhere = Endpoint::new(ip(192, 0, 2, 1), 9);
        let stats = pump(
            &mut net,
            vec![(a, Packet::udp(ea, nowhere, b"x".to_vec()))],
            |_, _| vec![],
            10,
        );
        assert_eq!(stats.deliveries, 0);
        assert!(!stats.truncated);
    }
}
