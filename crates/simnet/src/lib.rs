//! # simnet — a deterministic packet-level network simulator
//!
//! The measurement methodology of the IMC 2016 CGN paper observes packets at
//! end hosts while middleboxes on the path translate addresses, keep
//! per-flow state, and expire it. `simnet` provides exactly that world:
//!
//! * **Realms** — addressing domains separated by NATs. The public realm
//!   holds servers and NAT pool addresses; each NAT guards an internal
//!   realm (a home LAN behind a CPE, or an ISP's CGN zone).
//! * **Hop-by-hop forwarding** — every router and NAT on the path
//!   decrements the TTL; packets that run out die at that hop and an ICMP
//!   time-exceeded is returned to the sender, which is what traceroute-like
//!   measurements and the TTL-driven NAT enumeration test (Fig. 10 of the
//!   paper) rely on.
//! * **On-path NATs** — [`nat_engine::Nat`] instances translate outbound
//!   and inbound packets, hairpin internal traffic, and expire idle
//!   mappings as the virtual clock advances.
//! * **Multicast segments** — realm-scoped multicast models BitTorrent
//!   local peer discovery, one of the two channels by which clients learn
//!   internal endpoints (§4.1 "DHT Data Calibration").
//!
//! The simulator is synchronous and deterministic: [`Network::send`]
//! immediately walks the packet to its destination (zero link latency) and
//! returns the deliveries; time only advances when the driver calls
//! [`Network::advance`]. All timeout-sensitive experiments manipulate the
//! clock explicitly, which makes them exactly reproducible.

pub mod network;
pub mod pump;

pub use network::{Delivery, DropSite, HopInfo, HopKind, Network, NodeId, RealmId, SendOutcome};
pub use pump::{pump, PumpStats};
