//! The network graph and the packet walk.
//!
//! ## Topology model
//!
//! The simulated Internet is a tree of *realms*. The root is the public
//! realm; every NAT guards one internal realm whose parent is the realm the
//! NAT's external interface attaches to. Hosts (devices, servers) attach to
//! exactly one realm through a chain of plain routers (possibly empty) —
//! the chain gives paths their hop counts, which the paper's topology
//! measurements (§6.4, Fig. 11) are about.
//!
//! ```text
//!  public realm:   [server]--r--r--+----CORE----+--r--[CGN pool IPs]
//!                                               |
//!  CGN realm:              CGN ----r--r--[CPE WAN]   (internal addresses)
//!  home realm:                        CPE ---- [device]
//! ```
//!
//! ## Forwarding
//!
//! A packet ascends from its source host toward the realm hub, is looked up
//! in the realm's address map, and either descends to a local target
//! (host or a child NAT's external address) or ascends through the realm's
//! gateway NAT. Every router and NAT decrements the TTL; a packet whose TTL
//! reaches zero dies at that hop and an ICMP time-exceeded is returned to
//! the *originating host* directly (the simulator shortcut: the error does
//! not re-traverse NAT state, but carries the dying hop's address, which is
//! all traceroute-style measurements observe).

use nat_engine::{Nat, NatConfig, NatStats, NatVerdict, ShardedNat};
use netcore::{Endpoint, Packet, SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Identifier of a node (host or NAT) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an addressing realm. Realm 0 is the public Internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RealmId(pub u32);

impl RealmId {
    pub const PUBLIC: RealmId = RealmId(0);
}

/// What a realm address resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RealmTarget {
    Host(NodeId),
    NatExternal(NodeId),
}

#[derive(Debug)]
struct Realm {
    /// NAT node guarding this realm (None only for the public realm).
    gateway: Option<NodeId>,
    /// Address map of this realm.
    addrs: HashMap<Ipv4Addr, RealmTarget>,
    /// Whether link-local multicast (e.g. BitTorrent LPD) is delivered
    /// across this realm.
    multicast: bool,
    /// Hosts attached (for multicast iteration); kept in attach order for
    /// determinism.
    hosts: Vec<NodeId>,
}

#[derive(Debug)]
struct HostNode {
    realm: RealmId,
    addr: Ipv4Addr,
    /// Router IPs between the host and the realm hub, ordered host → hub.
    chain: Vec<Ipv4Addr>,
}

/// The translation engine behind a NAT node: a monolithic [`Nat`]
/// (CPE routers, firewalls, single-box carrier NATs) or a
/// [`ShardedNat`] whose state is partitioned across external-IP shards
/// — the ISP-scale deployment shape ([`Network::add_nat_sharded`]).
///
/// The walk treats both identically. A sharded node keeps the
/// engine's multi-chassis default (no cross-shard hairpin): an
/// internal packet addressed to a sibling shard's pool address is
/// translated, ascends to the external realm, resolves back to this
/// same node and re-enters through the inbound path — the loop a real
/// multi-box CGN routes through its core. This keeps the shard-batch
/// path ([`Network::nat_sharded_mut`] + `ShardedNat::process_batches`)
/// available for multi-threaded background load.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // NAT nodes are few; boxing would cost every packet hop
pub(crate) enum Translator {
    Mono(Nat),
    Sharded(ShardedNat),
}

impl Translator {
    fn process_outbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        match self {
            Translator::Mono(n) => n.process_outbound(pkt, now),
            Translator::Sharded(s) => s.process_outbound(pkt, now),
        }
    }

    fn process_inbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        match self {
            Translator::Mono(n) => n.process_inbound(pkt, now),
            Translator::Sharded(s) => s.process_inbound(pkt, now),
        }
    }

    fn sweep(&mut self, now: SimTime) {
        match self {
            Translator::Mono(n) => n.sweep(now),
            Translator::Sharded(s) => s.sweep(now),
        }
    }

    fn mapping_count(&self) -> usize {
        match self {
            Translator::Mono(n) => n.mapping_count(),
            Translator::Sharded(s) => s.mapping_count(),
        }
    }

    fn merged_stats(&self) -> NatStats {
        match self {
            Translator::Mono(n) => n.stats().clone(),
            Translator::Sharded(s) => s.merged_stats(),
        }
    }
}

#[derive(Debug)]
struct NatNode {
    nat: Translator,
    internal_realm: RealmId,
    external_realm: RealmId,
    /// Router IPs between the NAT's external interface and the parent
    /// realm's hub, ordered NAT → hub.
    external_chain: Vec<Ipv4Addr>,
    /// Address of the NAT's internal interface (ICMP source for packets
    /// dying at the NAT on the way up).
    internal_addr: Ipv4Addr,
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Nat nodes are few; boxing would cost every packet hop
enum Node {
    Host(HostNode),
    Nat(NatNode),
}

/// Where a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropSite {
    /// TTL reached zero at the given hop address.
    TtlExpired(Ipv4Addr),
    /// A NAT refused it (reason recorded in that NAT's stats).
    Nat(NodeId),
    /// The destination address resolves nowhere.
    NoRoute,
}

/// One hop of a resolved path (diagnostic / ground-truth view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopInfo {
    pub kind: HopKind,
    pub addr: Ipv4Addr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    Router,
    Nat,
}

/// The observable outcome of sending one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome {
    /// Delivered to a host (with the packet as the host sees it).
    Delivered { node: NodeId, pkt: Packet },
    /// Dropped somewhere on the path.
    Dropped(DropSite),
}

/// A packet handed to a host, produced by [`Network::send`] /
/// [`Network::send_multicast`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    pub node: NodeId,
    pub pkt: Packet,
}

/// Aggregate forwarding counters.
#[derive(Debug, Default, Clone)]
pub struct NetworkStats {
    pub sent: u64,
    pub delivered: u64,
    pub dropped_ttl: u64,
    pub dropped_nat: u64,
    pub dropped_no_route: u64,
    pub icmp_generated: u64,
    pub multicasts: u64,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    realms: Vec<Realm>,
    clock: SimTime,
    stats: NetworkStats,
    /// How often `advance` sweeps NAT tables.
    sweep_interval: SimDuration,
    last_sweep: SimTime,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// A fresh network containing only the public realm.
    pub fn new() -> Self {
        Network {
            nodes: Vec::new(),
            realms: vec![Realm {
                gateway: None,
                addrs: HashMap::new(),
                multicast: false,
                hosts: Vec::new(),
            }],
            clock: SimTime::ZERO,
            stats: NetworkStats::default(),
            // Expiry is enforced lazily on access; sweeps only bound
            // memory and port-allocator retention, so they can be coarse.
            sweep_interval: SimDuration::from_secs(600),
            last_sweep: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advance the virtual clock; NAT tables are swept so idle mappings
    /// expire (they also expire lazily on access, so sweeping granularity
    /// does not affect correctness, only memory).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
        if self.clock.saturating_since(self.last_sweep) >= self.sweep_interval {
            let now = self.clock;
            for n in &mut self.nodes {
                if let Node::Nat(nat) = n {
                    nat.nat.sweep(now);
                }
            }
            self.last_sweep = now;
        }
    }

    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Attach a host with address `addr` to `realm`, behind the given
    /// router chain (ordered host → realm hub).
    ///
    /// Panics if the address is already taken in the realm.
    pub fn add_host(&mut self, realm: RealmId, addr: Ipv4Addr, chain: Vec<Ipv4Addr>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let r = &mut self.realms[realm.0 as usize];
        let prev = r.addrs.insert(addr, RealmTarget::Host(id));
        assert!(
            prev.is_none(),
            "address {addr} already in use in realm {realm:?}"
        );
        r.hosts.push(id);
        self.nodes.push(Node::Host(HostNode { realm, addr, chain }));
        id
    }

    /// The shared install body of [`Network::add_nat`] /
    /// [`Network::add_nat_sharded`]: register the pool addresses in
    /// the parent realm, create the internal realm, and attach the
    /// node built by `make` from the (id-registered) pool.
    fn install_nat(
        &mut self,
        external_ips: Vec<Ipv4Addr>,
        external_realm: RealmId,
        external_chain: Vec<Ipv4Addr>,
        internal_addr: Ipv4Addr,
        internal_multicast: bool,
        make: impl FnOnce(Vec<Ipv4Addr>) -> Translator,
    ) -> (NodeId, RealmId) {
        let id = NodeId(self.nodes.len() as u32);
        let internal_realm = RealmId(self.realms.len() as u32);
        {
            let parent = &mut self.realms[external_realm.0 as usize];
            for ip in &external_ips {
                let prev = parent.addrs.insert(*ip, RealmTarget::NatExternal(id));
                assert!(prev.is_none(), "pool address {ip} already in use");
            }
        }
        self.realms.push(Realm {
            gateway: Some(id),
            addrs: HashMap::new(),
            multicast: internal_multicast,
            hosts: Vec::new(),
        });
        self.nodes.push(Node::Nat(NatNode {
            nat: make(external_ips),
            internal_realm,
            external_realm,
            external_chain,
            internal_addr,
        }));
        (id, internal_realm)
    }

    /// Install a NAT whose external interface (pool `external_ips`) attaches
    /// to `external_realm` behind `external_chain`. Creates and returns the
    /// NAT's internal realm.
    #[allow(clippy::too_many_arguments)] // mirrors the full NAT install tuple
    pub fn add_nat(
        &mut self,
        config: NatConfig,
        external_ips: Vec<Ipv4Addr>,
        external_realm: RealmId,
        external_chain: Vec<Ipv4Addr>,
        internal_addr: Ipv4Addr,
        internal_multicast: bool,
        seed: u64,
    ) -> (NodeId, RealmId) {
        self.install_nat(
            external_ips,
            external_realm,
            external_chain,
            internal_addr,
            internal_multicast,
            |ips| Translator::Mono(Nat::new(config, ips, seed)),
        )
    }

    /// Install a **sharded** NAT: translation state partitioned across
    /// `shards` external-IP shards ([`nat_engine::ShardedNat`]) — the
    /// deployment shape of an ISP-scale CGN. Otherwise identical to
    /// [`Network::add_nat`]; `shards == 1` gives a single-shard engine
    /// on the same code path.
    ///
    /// Panics (in `ShardedNat::new`) if `external_ips` holds fewer
    /// addresses than `shards`.
    #[allow(clippy::too_many_arguments)] // mirrors the full NAT install tuple
    pub fn add_nat_sharded(
        &mut self,
        config: NatConfig,
        external_ips: Vec<Ipv4Addr>,
        shards: u16,
        external_realm: RealmId,
        external_chain: Vec<Ipv4Addr>,
        internal_addr: Ipv4Addr,
        internal_multicast: bool,
        seed: u64,
    ) -> (NodeId, RealmId) {
        self.install_nat(
            external_ips,
            external_realm,
            external_chain,
            internal_addr,
            internal_multicast,
            |ips| Translator::Sharded(ShardedNat::new(config, ips, shards, seed)),
        )
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    fn host(&self, id: NodeId) -> &HostNode {
        match &self.nodes[id.0 as usize] {
            Node::Host(h) => h,
            Node::Nat(_) => panic!("{id:?} is a NAT, not a host"),
        }
    }

    /// The address of a host.
    pub fn host_addr(&self, id: NodeId) -> Ipv4Addr {
        self.host(id).addr
    }

    /// The realm a host lives in.
    pub fn host_realm(&self, id: NodeId) -> RealmId {
        self.host(id).realm
    }

    /// Whether a realm delivers multicast.
    pub fn realm_multicast(&self, realm: RealmId) -> bool {
        self.realms[realm.0 as usize].multicast
    }

    fn nat_node(&self, id: NodeId) -> &NatNode {
        match &self.nodes[id.0 as usize] {
            Node::Nat(n) => n,
            Node::Host(_) => panic!("{id:?} is a host, not a NAT"),
        }
    }

    fn nat_node_mut(&mut self, id: NodeId) -> &mut NatNode {
        match &mut self.nodes[id.0 as usize] {
            Node::Nat(n) => n,
            Node::Host(_) => panic!("{id:?} is a host, not a NAT"),
        }
    }

    /// Read-only access to a monolithic NAT's behaviour stats. For
    /// sharded nodes use [`Network::cgn_stats`] (counters must be
    /// merged across shards, which cannot hand out a reference).
    pub fn nat_stats(&self, id: NodeId) -> &NatStats {
        match &self.nat_node(id).nat {
            Translator::Mono(n) => n.stats(),
            Translator::Sharded(_) => {
                panic!("{id:?} is sharded; use cgn_stats for merged counters")
            }
        }
    }

    /// Behaviour counters of any NAT node, merged across shards when
    /// the node is sharded.
    pub fn cgn_stats(&self, id: NodeId) -> NatStats {
        self.nat_node(id).nat.merged_stats()
    }

    /// Live mappings held by a NAT node (summed across shards).
    pub fn nat_mapping_count(&self, id: NodeId) -> usize {
        self.nat_node(id).nat.mapping_count()
    }

    /// Mutable access to a monolithic NAT (tests & topology wiring).
    /// Panics for sharded nodes — use [`Network::nat_sharded_mut`].
    pub fn nat_mut(&mut self, id: NodeId) -> &mut Nat {
        match &mut self.nat_node_mut(id).nat {
            Translator::Mono(n) => n,
            Translator::Sharded(_) => {
                panic!("{id:?} is sharded; use nat_sharded_mut")
            }
        }
    }

    /// Read access to a NAT node's engine. For sharded nodes this is
    /// shard 0 — every shard runs the same [`NatConfig`], so this is
    /// the right handle for behaviour/config introspection (stats and
    /// mappings of one shard only; use [`Network::cgn_stats`] /
    /// [`Network::nat_mapping_count`] for whole-node counters).
    pub fn nat(&self, id: NodeId) -> &Nat {
        match &self.nat_node(id).nat {
            Translator::Mono(n) => n,
            Translator::Sharded(s) => &s.shards()[0],
        }
    }

    /// Whether a NAT node runs the sharded engine.
    pub fn nat_is_sharded(&self, id: NodeId) -> bool {
        matches!(self.nat_node(id).nat, Translator::Sharded(_))
    }

    /// The sharded engine behind a NAT node installed with
    /// [`Network::add_nat_sharded`]. Panics for monolithic nodes.
    pub fn nat_sharded(&self, id: NodeId) -> &ShardedNat {
        match &self.nat_node(id).nat {
            Translator::Sharded(s) => s,
            Translator::Mono(_) => panic!("{id:?} is a monolithic NAT, not sharded"),
        }
    }

    /// Mutable access to a sharded NAT node — the handle background
    /// load drives batches through (`ShardedNat::process_batches`).
    pub fn nat_sharded_mut(&mut self, id: NodeId) -> &mut ShardedNat {
        match &mut self.nat_node_mut(id).nat {
            Translator::Sharded(s) => s,
            Translator::Mono(_) => panic!("{id:?} is a monolithic NAT, not sharded"),
        }
    }

    /// Ground-truth hop list from a host toward a destination address, as a
    /// traceroute would see it *if every hop answered*. Returns `None` when
    /// the destination does not resolve. NAT translation state is not
    /// consulted or modified; for NAT hops beyond the first this reflects
    /// topology, not reachability.
    pub fn path_hops(&self, from: NodeId, dst: Ipv4Addr) -> Option<Vec<HopInfo>> {
        let h = self.host(from);
        let mut hops = Vec::new();
        for r in &h.chain {
            hops.push(HopInfo {
                kind: HopKind::Router,
                addr: *r,
            });
        }
        let mut realm = h.realm;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 64, "realm loop while resolving path");
            let r = &self.realms[realm.0 as usize];
            if let Some(target) = r.addrs.get(&dst) {
                match target {
                    RealmTarget::Host(hid) => {
                        let th = self.host(*hid);
                        for router in th.chain.iter().rev() {
                            hops.push(HopInfo {
                                kind: HopKind::Router,
                                addr: *router,
                            });
                        }
                        return Some(hops);
                    }
                    RealmTarget::NatExternal(nid) => {
                        let nn = match &self.nodes[nid.0 as usize] {
                            Node::Nat(n) => n,
                            Node::Host(_) => unreachable!(),
                        };
                        for router in nn.external_chain.iter().rev() {
                            hops.push(HopInfo {
                                kind: HopKind::Router,
                                addr: *router,
                            });
                        }
                        hops.push(HopInfo {
                            kind: HopKind::Nat,
                            addr: dst,
                        });
                        // Translation happens here; the true path continues
                        // inside, but externally visible topology ends at
                        // the NAT.
                        return Some(hops);
                    }
                }
            }
            match r.gateway {
                Some(gw) => {
                    let nn = match &self.nodes[gw.0 as usize] {
                        Node::Nat(n) => n,
                        Node::Host(_) => unreachable!(),
                    };
                    hops.push(HopInfo {
                        kind: HopKind::Nat,
                        addr: nn.internal_addr,
                    });
                    for router in &nn.external_chain {
                        hops.push(HopInfo {
                            kind: HopKind::Router,
                            addr: *router,
                        });
                    }
                    realm = nn.external_realm;
                }
                None => return None,
            }
        }
    }

    // ------------------------------------------------------------------
    // Forwarding
    // ------------------------------------------------------------------

    /// Send `pkt` from host `origin`. The source endpoint must carry the
    /// host's own address (apps construct packets from their bound
    /// sockets). Returns the deliveries this send produced: at most one
    /// payload delivery, plus possibly one ICMP error back to the origin.
    pub fn send(&mut self, origin: NodeId, pkt: Packet) -> Vec<Delivery> {
        debug_assert_eq!(
            pkt.src.ip,
            self.host(origin).addr,
            "source address must be the sending host's address"
        );
        self.send_traced(origin, pkt).1
    }

    /// Send and additionally report the outcome (where the packet ended
    /// up, or where and why it died). Deliveries are as in [`Network::send`].
    pub fn send_traced(&mut self, origin: NodeId, pkt: Packet) -> (SendOutcome, Vec<Delivery>) {
        self.stats.sent += 1;
        let (outcome, icmp) = self.walk(origin, pkt);
        let mut out = Vec::new();
        match &outcome {
            SendOutcome::Delivered { node, pkt } => {
                self.stats.delivered += 1;
                out.push(Delivery {
                    node: *node,
                    pkt: pkt.clone(),
                });
            }
            SendOutcome::Dropped(site) => {
                match site {
                    DropSite::TtlExpired(_) => self.stats.dropped_ttl += 1,
                    DropSite::Nat(_) => self.stats.dropped_nat += 1,
                    DropSite::NoRoute => self.stats.dropped_no_route += 1,
                }
                if let Some(err) = icmp {
                    self.stats.icmp_generated += 1;
                    out.push(Delivery {
                        node: origin,
                        pkt: err,
                    });
                }
            }
        }
        (outcome, out)
    }

    /// Deliver a link-local multicast datagram to every other host in the
    /// origin's realm, if the realm permits multicast. Models BitTorrent
    /// local peer discovery. TTL is irrelevant (scope = one realm).
    pub fn send_multicast(
        &mut self,
        origin: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Vec<Delivery> {
        let (realm, src_addr) = {
            let h = self.host(origin);
            (h.realm, h.addr)
        };
        if !self.realms[realm.0 as usize].multicast {
            return Vec::new();
        }
        self.stats.multicasts += 1;
        let members: Vec<NodeId> = self.realms[realm.0 as usize]
            .hosts
            .iter()
            .copied()
            .filter(|h| *h != origin)
            .collect();
        members
            .into_iter()
            .map(|node| {
                let dst_addr = self.host(node).addr;
                Delivery {
                    node,
                    pkt: Packet::udp(
                        Endpoint::new(src_addr, src_port),
                        Endpoint::new(dst_addr, dst_port),
                        payload.clone(),
                    ),
                }
            })
            .collect()
    }

    /// The full walk. Returns the outcome plus an optional ICMP error to
    /// hand back to the origin.
    fn walk(&mut self, origin: NodeId, mut pkt: Packet) -> (SendOutcome, Option<Packet>) {
        let now = self.clock;
        let (mut realm, up_chain) = {
            let h = self.host(origin);
            (h.realm, h.chain.clone())
        };

        // Ascend the origin's router chain.
        for router in &up_chain {
            if !pkt.decrement_ttl() {
                let err = pkt.ttl_exceeded_reply(*router);
                return (
                    SendOutcome::Dropped(DropSite::TtlExpired(*router)),
                    Some(err),
                );
            }
        }

        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 64, "forwarding loop");
            // At the hub of `realm`: local lookup first.
            let target = self.realms[realm.0 as usize]
                .addrs
                .get(&pkt.dst.ip)
                .copied();
            match target {
                Some(RealmTarget::Host(hid)) => {
                    // Descend the target's chain.
                    let chain = self.host(hid).chain.clone();
                    for router in chain.iter().rev() {
                        if !pkt.decrement_ttl() {
                            let err = pkt.ttl_exceeded_reply(*router);
                            return (
                                SendOutcome::Dropped(DropSite::TtlExpired(*router)),
                                Some(err),
                            );
                        }
                    }
                    return (SendOutcome::Delivered { node: hid, pkt }, None);
                }
                Some(RealmTarget::NatExternal(nid)) => {
                    // Descend to the NAT's external interface, then
                    // translate inbound.
                    let chain = match &self.nodes[nid.0 as usize] {
                        Node::Nat(n) => n.external_chain.clone(),
                        Node::Host(_) => unreachable!(),
                    };
                    for router in chain.iter().rev() {
                        if !pkt.decrement_ttl() {
                            let err = pkt.ttl_exceeded_reply(*router);
                            return (
                                SendOutcome::Dropped(DropSite::TtlExpired(*router)),
                                Some(err),
                            );
                        }
                    }
                    // The NAT itself is a hop.
                    let nat_addr = pkt.dst.ip;
                    if !pkt.decrement_ttl() {
                        let err = pkt.ttl_exceeded_reply(nat_addr);
                        return (
                            SendOutcome::Dropped(DropSite::TtlExpired(nat_addr)),
                            Some(err),
                        );
                    }
                    let (verdict, internal_realm) = {
                        let n = match &mut self.nodes[nid.0 as usize] {
                            Node::Nat(n) => n,
                            Node::Host(_) => unreachable!(),
                        };
                        (n.nat.process_inbound(pkt, now), n.internal_realm)
                    };
                    match verdict {
                        NatVerdict::Forward(p) => {
                            pkt = p;
                            realm = internal_realm;
                        }
                        NatVerdict::Hairpin(_) => {
                            unreachable!("inbound processing never hairpins")
                        }
                        NatVerdict::Drop(_) => {
                            return (SendOutcome::Dropped(DropSite::Nat(nid)), None);
                        }
                    }
                }
                None => {
                    // Ascend through the gateway, if any.
                    let gw = self.realms[realm.0 as usize].gateway;
                    match gw {
                        Some(gid) => {
                            let (internal_addr, external_realm) = {
                                let n = match &self.nodes[gid.0 as usize] {
                                    Node::Nat(n) => n,
                                    Node::Host(_) => unreachable!(),
                                };
                                (n.internal_addr, n.external_realm)
                            };
                            // The NAT is a hop.
                            if !pkt.decrement_ttl() {
                                let err = pkt.ttl_exceeded_reply(internal_addr);
                                return (
                                    SendOutcome::Dropped(DropSite::TtlExpired(internal_addr)),
                                    Some(err),
                                );
                            }
                            let verdict = {
                                let n = match &mut self.nodes[gid.0 as usize] {
                                    Node::Nat(n) => n,
                                    Node::Host(_) => unreachable!(),
                                };
                                n.nat.process_outbound(pkt, now)
                            };
                            match verdict {
                                NatVerdict::Forward(p) => {
                                    pkt = p;
                                    // Ascend the NAT's external chain.
                                    let chain = match &self.nodes[gid.0 as usize] {
                                        Node::Nat(n) => n.external_chain.clone(),
                                        Node::Host(_) => unreachable!(),
                                    };
                                    for router in &chain {
                                        if !pkt.decrement_ttl() {
                                            let err = pkt.ttl_exceeded_reply(*router);
                                            return (
                                                SendOutcome::Dropped(DropSite::TtlExpired(*router)),
                                                Some(err),
                                            );
                                        }
                                    }
                                    realm = external_realm;
                                }
                                NatVerdict::Hairpin(p) => {
                                    // Looped back into the same internal
                                    // realm with an internal destination.
                                    pkt = p;
                                }
                                NatVerdict::Drop(_) => {
                                    return (SendOutcome::Dropped(DropSite::Nat(gid)), None);
                                }
                            }
                        }
                        None => {
                            return (SendOutcome::Dropped(DropSite::NoRoute), None);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::FilteringBehavior;
    use netcore::{ip, PacketBody, TcpFlags};

    /// Build the paper's Fig. 2 world: subscriber A (public IP + CPE),
    /// subscriber B (CGN only), subscriber C (NAT444), plus a server.
    struct Fig2 {
        net: Network,
        server: NodeId,
        dev_a: NodeId,
        dev_b: NodeId,
        dev_c: NodeId,
        cgn: NodeId,
        cpe_c: NodeId,
    }

    fn fig2() -> Fig2 {
        let mut net = Network::new();
        // Server in the public realm, 2 core routers away.
        let server = net.add_host(
            RealmId::PUBLIC,
            ip(203, 0, 113, 10),
            vec![ip(203, 0, 113, 1), ip(198, 19, 0, 1)],
        );

        // Subscriber A: CPE NAT with a public WAN address; device behind it.
        let (cpe_a, home_a) = net.add_nat(
            NatConfig::home_cpe(),
            vec![ip(198, 51, 100, 77)],
            RealmId::PUBLIC,
            vec![ip(198, 19, 1, 1)],
            ip(192, 168, 1, 1),
            true,
            11,
        );
        let dev_a = net.add_host(home_a, ip(192, 168, 1, 100), vec![]);
        let _ = cpe_a;

        // The ISP's CGN: pool of 2 public IPs, internal realm 100.64/10.
        let mut cgn_cfg = NatConfig::cgn_default();
        cgn_cfg.filtering = FilteringBehavior::EndpointIndependent;
        let (cgn, cgn_realm) = net.add_nat(
            cgn_cfg,
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            RealmId::PUBLIC,
            vec![ip(198, 19, 2, 1)],
            ip(100, 64, 0, 1),
            true,
            12,
        );

        // Subscriber B: device directly in the CGN realm (cellular-style),
        // 2 aggregation routers from the CGN.
        let dev_b = net.add_host(
            cgn_realm,
            ip(100, 64, 0, 20),
            vec![ip(100, 64, 255, 1), ip(100, 64, 255, 2)],
        );

        // Subscriber C: NAT444 — home CPE whose WAN side sits in the CGN
        // realm, 1 aggregation router from the CGN.
        let (cpe_c, home_c) = net.add_nat(
            NatConfig::home_cpe(),
            vec![ip(100, 64, 0, 30)],
            cgn_realm,
            vec![ip(100, 64, 255, 3)],
            ip(192, 168, 1, 1),
            true,
            13,
        );
        let dev_c = net.add_host(home_c, ip(192, 168, 1, 50), vec![]);

        Fig2 {
            net,
            server,
            dev_a,
            dev_b,
            dev_c,
            cgn,
            cpe_c,
        }
    }

    fn udp(src: Endpoint, dst: Endpoint) -> Packet {
        Packet::udp(src, dst, vec![0xAB])
    }

    fn server_ep() -> Endpoint {
        Endpoint::new(ip(203, 0, 113, 10), 8000)
    }

    #[test]
    fn scenario_a_single_translation() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 100), 40000);
        let ds = f.net.send(f.dev_a, udp(src, server_ep()));
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.node, f.server);
        // One translation: the CPE's public WAN address.
        assert_eq!(d.pkt.src.ip, ip(198, 51, 100, 77));
    }

    #[test]
    fn scenario_b_cgn_translation() {
        let mut f = fig2();
        let src = Endpoint::new(ip(100, 64, 0, 20), 40000);
        let ds = f.net.send(f.dev_b, udp(src, server_ep()));
        assert_eq!(ds.len(), 1);
        let got = ds[0].pkt.src.ip;
        assert!(
            got == ip(198, 51, 100, 1) || got == ip(198, 51, 100, 2),
            "CGN pool address expected, got {got}"
        );
    }

    #[test]
    fn scenario_c_nat444_double_translation() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 40000);
        let ds = f.net.send(f.dev_c, udp(src, server_ep()));
        assert_eq!(ds.len(), 1);
        let got = ds[0].pkt.src.ip;
        assert!(got == ip(198, 51, 100, 1) || got == ip(198, 51, 100, 2));
        // Both NATs hold state now.
        assert_eq!(f.net.nat(f.cpe_c).mapping_count(), 1);
        assert_eq!(f.net.nat(f.cgn).mapping_count(), 1);
    }

    #[test]
    fn reply_path_translates_back() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 40000);
        let out = f.net.send(f.dev_c, udp(src, server_ep()));
        let ext = out[0].pkt.src;
        // Server replies to what it saw.
        let reply = udp(server_ep(), ext);
        let ds = f.net.send(f.server, reply);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].node, f.dev_c);
        assert_eq!(ds[0].pkt.dst, src, "reply must arrive fully de-translated");
    }

    #[test]
    fn unsolicited_inbound_dropped_by_cgn() {
        let mut f = fig2();
        let stray = udp(server_ep(), Endpoint::new(ip(198, 51, 100, 1), 12345));
        let ds = f.net.send(f.server, stray);
        assert!(
            ds.is_empty(),
            "no mapping, no delivery, no ICMP for NAT drops"
        );
    }

    #[test]
    fn no_route_drop() {
        let mut f = fig2();
        let src = Endpoint::new(ip(203, 0, 113, 10), 9);
        let ds = f
            .net
            .send(f.server, udp(src, Endpoint::new(ip(192, 0, 2, 99), 1)));
        assert!(ds.is_empty());
        assert_eq!(f.net.stats().dropped_no_route, 1);
    }

    #[test]
    fn ttl_expiry_returns_icmp_with_dying_hop() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 40001);
        // TTL 1: dies at the CPE (first hop from device C).
        let pkt = udp(src, server_ep()).with_ttl(1);
        let ds = f.net.send(f.dev_c, pkt);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].node, f.dev_c);
        match &ds[0].pkt.body {
            PacketBody::Icmp { kind, .. } => {
                assert_eq!(*kind, netcore::IcmpKind::TtlExceeded);
            }
            other => panic!("expected ICMP, got {other:?}"),
        }
        assert_eq!(ds[0].pkt.src.ip, ip(192, 168, 1, 1), "CPE internal address");
    }

    #[test]
    fn traceroute_hop_sequence_matches_path_hops() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 40002);
        let truth = f.net.path_hops(f.dev_c, server_ep().ip).unwrap();
        // Walk TTLs 1..n and collect ICMP sources, traceroute-style.
        let mut seen = Vec::new();
        for ttl in 1..=truth.len() as u8 {
            let ds = f.net.send(f.dev_c, udp(src, server_ep()).with_ttl(ttl));
            match &ds[0].pkt.body {
                PacketBody::Icmp { .. } => seen.push(ds[0].pkt.src.ip),
                _ => break, // reached the destination
            }
        }
        let truth_addrs: Vec<Ipv4Addr> = truth.iter().map(|h| h.addr).collect();
        assert_eq!(seen, truth_addrs[..seen.len()].to_vec());
        // The CGN shows up as a NAT hop in ground truth.
        assert!(truth.iter().any(|h| h.kind == HopKind::Nat));
    }

    #[test]
    fn ttl_exactly_path_length_delivers() {
        let mut f = fig2();
        let src = Endpoint::new(ip(100, 64, 0, 20), 40003);
        let hops = f.net.path_hops(f.dev_b, server_ep().ip).unwrap().len() as u8;
        // Dies with TTL = hops (zero on the last middlebox), delivered with
        // hops + 1.
        let d1 = f.net.send(f.dev_b, udp(src, server_ep()).with_ttl(hops));
        assert!(matches!(d1[0].pkt.body, PacketBody::Icmp { .. }));
        let d2 = f
            .net
            .send(f.dev_b, udp(src, server_ep()).with_ttl(hops + 1));
        assert_eq!(d2[0].node, f.server);
    }

    #[test]
    fn internal_realm_traffic_stays_internal() {
        let mut f = fig2();
        // Device B talks directly to subscriber C's CPE WAN address —
        // never crossing the CGN (the §4.1 leakage path).
        let src = Endpoint::new(ip(100, 64, 0, 20), 6881);
        // First, C's device opens a mapping on its CPE toward B so the
        // CPE admits B's packet (hole punching).
        let c_src = Endpoint::new(ip(192, 168, 1, 50), 6881);
        let _ = f
            .net
            .send(f.dev_c, udp(c_src, Endpoint::new(ip(100, 64, 0, 20), 6881)));
        let cgn_out_before = f.net.nat_stats(f.cgn).out_packets;
        let ds = f
            .net
            .send(f.dev_b, udp(src, Endpoint::new(ip(100, 64, 0, 30), 6881)));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].node, f.dev_c);
        assert_eq!(
            f.net.nat_stats(f.cgn).out_packets,
            cgn_out_before,
            "intra-realm path must not traverse the CGN"
        );
    }

    #[test]
    fn hairpin_between_cgn_subscribers() {
        let mut f = fig2();
        // B opens a mapping via the server first.
        let b_src = Endpoint::new(ip(100, 64, 0, 20), 7000);
        let out = f.net.send(f.dev_b, udp(b_src, server_ep()));
        let b_ext = out[0].pkt.src;
        // C's device (NAT444) sends to B's *external* endpoint: CGN must
        // hairpin it back to B.
        let c_src = Endpoint::new(ip(192, 168, 1, 50), 7001);
        let ds = f.net.send(f.dev_c, udp(c_src, b_ext));
        assert_eq!(ds.len(), 1, "hairpinned packet must be delivered");
        assert_eq!(ds[0].node, f.dev_b);
        assert_eq!(f.net.nat_stats(f.cgn).hairpins, 1);
    }

    #[test]
    fn multicast_scoped_to_realm() {
        let mut f = fig2();
        // Device B multicasts in the CGN realm: the only other member is
        // CPE C's... no — CPE WAN interfaces are not hosts. Realm hosts:
        // just dev_b. So nothing is delivered.
        let ds = f
            .net
            .send_multicast(f.dev_b, 6771, 6771, b"BT-SEARCH".to_vec());
        assert!(ds.is_empty());
        // Home realm of A has one host; no other members either.
        let ds = f
            .net
            .send_multicast(f.dev_a, 6771, 6771, b"BT-SEARCH".to_vec());
        assert!(ds.is_empty());
    }

    #[test]
    fn multicast_reaches_realm_members() {
        let mut net = Network::new();
        let (_, realm) = net.add_nat(
            NatConfig::cgn_default(),
            vec![ip(198, 51, 100, 9)],
            RealmId::PUBLIC,
            vec![],
            ip(10, 0, 0, 1),
            true,
            5,
        );
        let a = net.add_host(realm, ip(10, 0, 0, 10), vec![]);
        let b = net.add_host(realm, ip(10, 0, 0, 11), vec![]);
        let c = net.add_host(realm, ip(10, 0, 0, 12), vec![]);
        let ds = net.send_multicast(a, 6771, 6771, b"hello".to_vec());
        let targets: Vec<NodeId> = ds.iter().map(|d| d.node).collect();
        assert_eq!(targets, vec![b, c]);
        assert_eq!(ds[0].pkt.src.ip, ip(10, 0, 0, 10));
    }

    #[test]
    fn multicast_disabled_realm_drops() {
        let mut net = Network::new();
        let (_, realm) = net.add_nat(
            NatConfig::cgn_default(),
            vec![ip(198, 51, 100, 9)],
            RealmId::PUBLIC,
            vec![],
            ip(10, 0, 0, 1),
            false,
            5,
        );
        let a = net.add_host(realm, ip(10, 0, 0, 10), vec![]);
        let _b = net.add_host(realm, ip(10, 0, 0, 11), vec![]);
        assert!(net.send_multicast(a, 6771, 6771, b"x".to_vec()).is_empty());
    }

    #[test]
    fn mapping_expiry_via_advance() {
        let mut f = fig2();
        let src = Endpoint::new(ip(100, 64, 0, 20), 7100);
        let out = f.net.send(f.dev_b, udp(src, server_ep()));
        let ext = out[0].pkt.src;
        f.net.advance(SimDuration::from_secs(120)); // > 60 s CGN UDP timeout
        let ds = f.net.send(f.server, udp(server_ep(), ext));
        assert!(ds.is_empty(), "expired mapping must drop inbound");
        assert!(f.net.nat_stats(f.cgn).drop_no_mapping >= 1);
    }

    #[test]
    fn keepalive_holds_mapping_open() {
        let mut f = fig2();
        let src = Endpoint::new(ip(100, 64, 0, 20), 7200);
        let out = f.net.send(f.dev_b, udp(src, server_ep()));
        let ext = out[0].pkt.src;
        for _ in 0..10 {
            f.net.advance(SimDuration::from_secs(30));
            let _ = f.net.send(f.dev_b, udp(src, server_ep()));
        }
        let ds = f.net.send(f.server, udp(server_ep(), ext));
        assert_eq!(ds.len(), 1, "refreshed mapping stays usable after 300 s");
    }

    #[test]
    fn ttl_limited_keepalive_refreshes_only_near_hops() {
        // The core mechanism of the paper's Fig. 10 experiment: a keepalive
        // that dies before the CGN refreshes the CPE but lets CGN state
        // expire.
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 7300);
        let out = f.net.send(f.dev_c, udp(src, server_ep()));
        let ext = out[0].pkt.src;

        // Path from dev_c: CPE (hop1), router (hop2), CGN (hop3), ...
        // TTL=2 keepalives die at the aggregation router — refreshing only
        // the CPE.
        for _ in 0..6 {
            f.net.advance(SimDuration::from_secs(20));
            let ka = udp(src, server_ep()).with_ttl(2);
            let _ = f.net.send(f.dev_c, ka);
        }
        // 120 s elapsed: CGN (60 s timeout) expired, CPE (65 s) alive.
        let ds = f.net.send(f.server, udp(server_ep(), ext));
        assert!(ds.is_empty(), "server probe must die at the CGN");
        assert!(f.net.nat_stats(f.cgn).drop_no_mapping >= 1);
        assert_eq!(
            f.net.nat(f.cpe_c).mapping_count(),
            1,
            "CPE state kept alive"
        );
    }

    #[test]
    fn tcp_handshake_through_nat444() {
        let mut f = fig2();
        let src = Endpoint::new(ip(192, 168, 1, 50), 7400);
        let syn = Packet::tcp(src, server_ep(), TcpFlags::SYN, vec![]);
        let d = f.net.send(f.dev_c, syn);
        let ext = d[0].pkt.src;
        let synack = Packet::tcp(server_ep(), ext, TcpFlags::SYN_ACK, vec![]);
        let d2 = f.net.send(f.server, synack);
        assert_eq!(d2[0].node, f.dev_c);
        let ack = Packet::tcp(src, server_ep(), TcpFlags::ACK, vec![]);
        assert_eq!(f.net.send(f.dev_c, ack).len(), 1);
    }

    /// A sharded CGN behind the walk: translation end-to-end, replies
    /// routed back through the owner shard, whole-node counters merged.
    #[test]
    fn sharded_cgn_translates_end_to_end() {
        let mut net = Network::new();
        let server = net.add_host(
            RealmId::PUBLIC,
            ip(203, 0, 113, 10),
            vec![ip(198, 19, 0, 1)],
        );
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let pool: Vec<_> = (1..=8).map(|k| ip(198, 51, 100, k)).collect();
        let (cgn, realm) = net.add_nat_sharded(
            cfg,
            pool.clone(),
            4,
            RealmId::PUBLIC,
            vec![ip(198, 19, 2, 1)],
            ip(100, 64, 0, 1),
            false,
            9,
        );
        assert!(net.nat_is_sharded(cgn));
        assert_eq!(net.nat_sharded(cgn).shard_count(), 4);
        let mut devices = Vec::new();
        for k in 0..16u8 {
            let a = ip(100, 64, 1, 10 + k);
            devices.push((net.add_host(realm, a, vec![]), a));
        }
        for (node, addr) in &devices {
            let src = Endpoint::new(*addr, 40_000);
            let ds = net.send(*node, Packet::udp(src, server_ep(), vec![]));
            assert_eq!(ds.len(), 1);
            assert_eq!(ds[0].node, server);
            let ext = ds[0].pkt.src;
            assert!(pool.contains(&ext.ip), "translated to a pool address");
            // The owner shard routes the reply back.
            let back = net.send(server, Packet::udp(server_ep(), ext, vec![]));
            assert_eq!(back.len(), 1);
            assert_eq!(back[0].node, *node);
            assert_eq!(back[0].pkt.dst, src);
        }
        assert_eq!(net.nat_mapping_count(cgn), 16);
        assert_eq!(net.cgn_stats(cgn).mappings_created, 16);
        // Mappings expire through the clock like any monolithic node.
        net.advance(SimDuration::from_secs(700));
        assert_eq!(net.nat_mapping_count(cgn), 0);
    }

    /// Cross-shard internal-to-internal traffic under the multi-chassis
    /// default: the packet ascends translated, resolves back to the
    /// same node's pool address and re-enters through the inbound path.
    #[test]
    fn sharded_cgn_internal_traffic_loops_through_core() {
        let mut net = Network::new();
        let _server = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 10), vec![]);
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let pool: Vec<_> = (1..=4).map(|k| ip(198, 51, 100, k)).collect();
        let (cgn, realm) = net.add_nat_sharded(
            cfg,
            pool,
            4,
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            9,
        );
        // Find two devices in different shards.
        let a_addr = ip(100, 64, 1, 10);
        let a_shard = net.nat_sharded(cgn).shard_of(a_addr);
        let b_addr = (11..200u8)
            .map(|k| ip(100, 64, 1, k))
            .find(|b| net.nat_sharded(cgn).shard_of(*b) != a_shard)
            .expect("some address lands in another shard");
        let a = net.add_host(realm, a_addr, vec![]);
        let b = net.add_host(realm, b_addr, vec![]);
        // B opens a mapping toward the public server.
        let b_src = Endpoint::new(b_addr, 7000);
        let out = net.send(b, Packet::udp(b_src, server_ep(), vec![]));
        let b_ext = out[0].pkt.src;
        // A sends to B's external endpoint: translated, looped through
        // the external realm, delivered through the inbound path.
        let ds = net.send(a, Packet::udp(Endpoint::new(a_addr, 7001), b_ext, vec![]));
        assert_eq!(ds.len(), 1, "cross-shard internal traffic delivered");
        assert_eq!(ds[0].node, b);
        assert_eq!(ds[0].pkt.dst, b_src, "fully de-translated at B");
        // Two traversals: A's outbound mapping plus B's original one.
        assert_eq!(net.nat_mapping_count(cgn), 2);
    }

    #[test]
    #[should_panic(expected = "use nat_sharded_mut")]
    fn mono_accessor_rejects_sharded_node() {
        let mut net = Network::new();
        let (cgn, _) = net.add_nat_sharded(
            NatConfig::cgn_default(),
            vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)],
            2,
            RealmId::PUBLIC,
            vec![],
            ip(100, 64, 0, 1),
            false,
            1,
        );
        let _ = net.nat_mut(cgn);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_address_in_realm_panics() {
        let mut net = Network::new();
        net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 10), vec![]);
        net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 10), vec![]);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fig2();
        let src = Endpoint::new(ip(100, 64, 0, 20), 7500);
        let _ = f.net.send(f.dev_b, udp(src, server_ep()));
        let _ = f
            .net
            .send(f.dev_b, udp(src, Endpoint::new(ip(192, 0, 2, 1), 1)));
        assert_eq!(f.net.stats().sent, 2);
        assert_eq!(f.net.stats().delivered, 1);
        assert_eq!(f.net.stats().dropped_no_route, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use nat_engine::{FilteringBehavior, NatConfig};
    use netcore::ip;
    use proptest::prelude::*;

    /// Build a parametric world: a server behind `server_chain` routers and
    /// a device behind a CGN with `agg` aggregation routers and `ext`
    /// external routers.
    fn world(agg: usize, ext: usize, server_chain: usize) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let schain: Vec<_> = (0..server_chain)
            .map(|i| ip(198, 18, 10, i as u8))
            .collect();
        let server = net.add_host(RealmId::PUBLIC, ip(203, 0, 113, 10), schain);
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let echain: Vec<_> = (0..ext).map(|i| ip(198, 18, 11, i as u8)).collect();
        let (_, realm) = net.add_nat(
            cfg,
            vec![ip(198, 51, 100, 1)],
            RealmId::PUBLIC,
            echain,
            ip(100, 64, 0, 1),
            false,
            1,
        );
        let achain: Vec<_> = (0..agg).map(|i| ip(198, 18, 12, i as u8)).collect();
        let dev = net.add_host(realm, ip(100, 64, 0, 20), achain);
        (net, dev, server)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ground-truth path length equals the sum of the chain segments
        /// plus the NAT hop, for any topology shape.
        #[test]
        fn prop_path_length(agg in 0usize..6, ext in 0usize..4, sc in 0usize..4) {
            let (net, dev, _) = world(agg, ext, sc);
            let hops = net.path_hops(dev, ip(203, 0, 113, 10)).expect("routable");
            prop_assert_eq!(hops.len(), agg + 1 + ext + sc);
            prop_assert_eq!(hops.iter().filter(|h| h.kind == HopKind::Nat).count(), 1);
        }

        /// TTL semantics: a packet with TTL = path length dies at the last
        /// middle hop; TTL = path length + 1 is delivered. Dying packets
        /// produce exactly one ICMP back to the sender.
        #[test]
        fn prop_ttl_boundary(agg in 0usize..6, ext in 0usize..4, sc in 0usize..4) {
            let (mut net, dev, server) = world(agg, ext, sc);
            let m = net.path_hops(dev, ip(203, 0, 113, 10)).expect("routable").len() as u8;
            let src = Endpoint::new(ip(100, 64, 0, 20), 40_000);
            let dst = Endpoint::new(ip(203, 0, 113, 10), 8000);
            if m >= 1 {
                let d = net.send(dev, Packet::udp(src, dst, vec![]).with_ttl(m));
                prop_assert_eq!(d.len(), 1);
                prop_assert_eq!(d[0].node, dev, "ICMP returns to the sender");
            }
            let d = net.send(dev, Packet::udp(src, dst, vec![]).with_ttl(m + 1));
            prop_assert_eq!(d.len(), 1);
            prop_assert_eq!(d[0].node, server);
        }

        /// Traceroute reconstruction: walking TTL 1..=m yields exactly the
        /// ground-truth hop addresses in order.
        #[test]
        fn prop_traceroute_matches_ground_truth(agg in 0usize..5, ext in 0usize..3, sc in 0usize..3) {
            let (mut net, dev, _) = world(agg, ext, sc);
            let truth = net.path_hops(dev, ip(203, 0, 113, 10)).expect("routable");
            let src = Endpoint::new(ip(100, 64, 0, 20), 41_000);
            let dst = Endpoint::new(ip(203, 0, 113, 10), 8000);
            for (i, hop) in truth.iter().enumerate() {
                let d = net.send(dev, Packet::udp(src, dst, vec![]).with_ttl(i as u8 + 1));
                prop_assert_eq!(d.len(), 1);
                prop_assert_eq!(d[0].pkt.src.ip, hop.addr, "hop {} address", i + 1);
            }
        }

        /// Forwarding is deterministic: repeating the same send on two
        /// identically-built networks yields identical deliveries.
        #[test]
        fn prop_forwarding_deterministic(agg in 0usize..5, ext in 0usize..3, port in 1024u16..65000) {
            let (mut n1, d1, _) = world(agg, ext, 2);
            let (mut n2, d2, _) = world(agg, ext, 2);
            let src = Endpoint::new(ip(100, 64, 0, 20), port);
            let dst = Endpoint::new(ip(203, 0, 113, 10), 8000);
            let a = n1.send(d1, Packet::udp(src, dst, vec![1, 2, 3]));
            let b = n2.send(d2, Packet::udp(src, dst, vec![1, 2, 3]));
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.pkt, &y.pkt);
            }
        }
    }
}
