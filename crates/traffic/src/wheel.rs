//! Millisecond-exact hierarchical event wheel for the flow driver.
//!
//! The epoch engine schedules every future event (next arrival,
//! keepalive, teardown) at a known millisecond; between barriers it
//! consumes them in `(time, sequence)` order. The original engine used
//! a `BinaryHeap`, whose `O(log n)` sift touches ~17 scattered cache
//! lines per operation once a shard holds 10⁵–10⁶ outstanding events —
//! one of the costs that made 16× subscriber scale disproportionately
//! slow. This wheel replaces it with amortised `O(1)` bucket inserts.
//!
//! Layout: level 0 holds 256 one-millisecond buckets (each pending
//! bucket maps to exactly one distinct millisecond); levels 1–3 hold
//! 64 buckets of 2⁸, 2¹⁴ and 2²⁰ ms respectively (~0.25 s, ~16 s,
//! ~17.5 min — spanning ~18.6 h, beyond every driver horizon; anything
//! farther parks in the farthest level-3 bucket and re-cascades).
//! Buckets cascade downward as the horizon advances. The
//! bucket-placement and cascade arithmetic is the shared
//! [`nat_engine::wheel::WheelGeometry`] core, instantiated at this
//! wheel's shape — the store's expiry wheel uses the same core at a
//! coarser (~1 s level-0) shape.
//!
//! **Ordering guarantee:** [`EventWheel::next_bucket`] yields batches
//! in strictly ascending millisecond order, each batch sorted by
//! sequence number — exactly the `(at_ms, seq)` lexicographic order
//! the heap produced, so run results are independent of the queue
//! implementation. Events pushed while a batch is being processed must
//! be strictly in the future (the driver's generators guarantee ≥ 1 ms
//! gaps), which keeps the already-drained prefix immutable.

use nat_engine::wheel::WheelGeometry;

/// One scheduled event: `(at_ms, seq, payload)`.
type Entry<T> = (u64, u64, T);

const L0_BUCKETS: usize = 256;
const UPPER_BUCKETS: usize = 64;
/// The shared placement/cascade arithmetic (see [`nat_engine::wheel`])
/// at this wheel's shape: 1 ms exact at level 0, then 2⁸/2¹⁴/2²⁰ ms.
const WHEEL_GEOM: WheelGeometry = WheelGeometry {
    shifts: &[0, 8, 14, 20],
    buckets: &[L0_BUCKETS as u64, 64, 64, 64],
};

#[derive(Debug)]
pub(crate) struct EventWheel<T> {
    /// Next undrained millisecond: every event at `< horizon_ms` has
    /// been delivered.
    horizon_ms: u64,
    len: usize,
    l0: Vec<Vec<Entry<T>>>,
    upper: Vec<Vec<Entry<T>>>,
}

impl<T> EventWheel<T> {
    pub fn new() -> Self {
        EventWheel {
            horizon_ms: 0,
            len: 0,
            l0: (0..L0_BUCKETS).map(|_| Vec::new()).collect(),
            upper: (0..3 * UPPER_BUCKETS).map(|_| Vec::new()).collect(),
        }
    }

    /// Outstanding (undelivered) events — the driver's backlog gauge
    /// at metrics sample barriers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedule `item` at `at_ms`. Must not be earlier than the wheel's
    /// horizon (the driver only schedules strictly-future events).
    pub fn push(&mut self, at_ms: u64, seq: u64, item: T) {
        debug_assert!(
            at_ms >= self.horizon_ms,
            "event at {at_ms} behind horizon {}",
            self.horizon_ms
        );
        let at_ms = at_ms.max(self.horizon_ms);
        self.len += 1;
        // Shared placement: level 0 is the exact-millisecond ring, the
        // upper levels (and the beyond-span farthest-bucket fallback)
        // coarsen toward ~17.5 min buckets.
        let (level, bucket) = WHEEL_GEOM.place(self.horizon_ms, at_ms);
        if level == 0 {
            self.l0[bucket].push((at_ms, seq, item));
        } else {
            self.upper[(level - 1) * UPPER_BUCKETS + bucket].push((at_ms, seq, item));
        }
    }

    fn cascade(&mut self, level: usize, bucket: usize) {
        let drained = std::mem::take(&mut self.upper[(level - 1) * UPPER_BUCKETS + bucket]);
        for e in drained {
            self.len -= 1;
            self.push(e.0, e.1, e.2);
        }
    }

    /// The next pending batch at or before `boundary_ms`: all events of
    /// one millisecond, sorted by sequence number. `None` once every
    /// event up to the boundary (inclusive) has been delivered; the
    /// horizon then rests just past the boundary. Events pushed while a
    /// returned batch is processed land at later milliseconds and are
    /// picked up by subsequent calls of the same drain.
    pub fn next_bucket(&mut self, boundary_ms: u64) -> Option<Vec<Entry<T>>> {
        if self.len == 0 {
            self.horizon_ms = self.horizon_ms.max(boundary_ms + 1);
            return None;
        }
        while self.horizon_ms <= boundary_ms {
            let tick = self.horizon_ms;
            // Entering a new level window: pull the levels that
            // wrapped, highest first, so entries settle downward (the
            // shared schedule of [`WheelGeometry::cascades`]).
            for (level, bucket) in WHEEL_GEOM.cascades(tick) {
                self.cascade(level, bucket);
            }
            let bucket = (tick & 255) as usize;
            self.horizon_ms = tick + 1;
            if !self.l0[bucket].is_empty() {
                let mut batch = std::mem::take(&mut self.l0[bucket]);
                self.len -= batch.len();
                debug_assert!(batch.iter().all(|e| e.0 == tick));
                batch.sort_by_key(|e| e.1);
                return Some(batch);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: drain via a plain sort on `(at_ms, seq)`.
    fn drain_all(wheel: &mut EventWheel<u32>, boundary: u64) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(batch) = wheel.next_bucket(boundary) {
            out.extend(batch);
        }
        out
    }

    #[test]
    fn delivers_in_time_then_seq_order() {
        let mut w = EventWheel::new();
        // Deliberately scrambled insert order, duplicate milliseconds,
        // and deadlines spanning all wheel levels.
        let mut events = vec![
            (5u64, 3u64, 0u32),
            (5, 1, 1),
            (300, 4, 2),       // level 1 at insert time
            (20_000, 2, 3),    // level 2
            (2_000_000, 5, 4), // level 3
            (5, 6, 5),
            (255, 7, 6),
            (256, 8, 7),
            (65_536, 9, 8),
        ];
        for &(at, seq, id) in &events {
            w.push(at, seq, id);
        }
        assert_eq!(w.len(), events.len());
        let drained = drain_all(&mut w, 3_000_000);
        events.sort_by_key(|e| (e.0, e.1));
        assert_eq!(drained, events);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn boundary_is_inclusive_and_state_persists_across_drains() {
        let mut w = EventWheel::new();
        w.push(10, 1, 0);
        w.push(30, 2, 1);
        w.push(30_000, 3, 2);
        let first = drain_all(&mut w, 30);
        assert_eq!(first, vec![(10, 1, 0), (30, 2, 1)]);
        assert!(w.next_bucket(29_999).is_none(), "not yet due");
        let second = drain_all(&mut w, 30_000);
        assert_eq!(second, vec![(30_000, 3, 2)]);
    }

    #[test]
    fn pushes_during_a_drain_are_delivered_in_the_same_pass() {
        let mut w = EventWheel::new();
        w.push(5, 1, 0);
        let mut seen = Vec::new();
        let mut injected = false;
        while let Some(batch) = w.next_bucket(1_000) {
            for (at, seq, id) in batch {
                seen.push((at, seq, id));
                if !injected {
                    injected = true;
                    // The driver pattern: processing an event schedules
                    // a strictly-future follow-up inside the window.
                    w.push(at + 500, seq + 1, 99);
                }
            }
        }
        assert_eq!(seen, vec![(5, 1, 0), (505, 2, 99)]);
    }

    #[test]
    fn empty_wheel_fast_forwards_horizon() {
        let mut w: EventWheel<u32> = EventWheel::new();
        assert!(w.next_bucket(10_000_000).is_none());
        // A push after the jump must still be delivered at its time.
        w.push(10_000_500, 1, 7);
        assert!(w.next_bucket(10_000_499).is_none());
        assert_eq!(drain_all(&mut w, 10_000_500), vec![(10_000_500, 1, 7)]);
    }

    #[test]
    fn randomised_equivalence_with_sorted_reference() {
        // xorshift-driven mixed workload across every level span.
        let mut w = EventWheel::new();
        let mut expected = Vec::new();
        let mut x = 0x9E37_79B9u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for seq in 0..5_000u64 {
            let at = next() % 4_000_000;
            w.push(at, seq, seq as u32);
            expected.push((at, seq, seq as u32));
        }
        expected.sort_by_key(|e| (e.0, e.1));
        // Drain in several windows to exercise horizon persistence.
        let mut drained = Vec::new();
        for boundary in [100, 10_000, 262_144, 1_048_576, 4_000_000] {
            drained.extend(drain_all(&mut w, boundary));
        }
        assert_eq!(drained, expected);
    }
}
