//! Population-level arrival-rate modulation: diurnal curve and flash
//! crowds.
//!
//! CGN port demand is dominated by the daily peak, not the mean — an
//! operator provisions for the evening maximum (§2's survey asks for
//! subscriber-to-address ratios, which only make sense at peak). The
//! [`DiurnalCurve`] scales every profile's arrival rate over a
//! (compressible) virtual day; a [`FlashCrowd`] multiplies
//! flash-sensitive profiles (web, streaming, gaming — not P2P or IoT)
//! inside a window, modelling a release night or a broadcast event.

use serde::{Deserialize, Serialize};

/// Sinusoidal day/night load curve with mean 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Length of one virtual day in simulated seconds. Runs shorter
    /// than a real day compress the curve so a run still sweeps trough
    /// and peak.
    pub day_secs: u64,
    /// Peak-to-mean excess in `[0, 1)`: rate swings between `1 - amp`
    /// and `1 + amp`.
    pub amplitude: f64,
    /// Where in the day the peak sits, as a fraction of `day_secs`
    /// (0.875 = 21:00 of a 24 h day, the residential evening peak).
    pub peak_phase: f64,
}

impl DiurnalCurve {
    /// A 24 h day with a 21:00 peak and ±45% swing.
    pub fn standard() -> DiurnalCurve {
        DiurnalCurve {
            day_secs: 86_400,
            amplitude: 0.45,
            peak_phase: 0.875,
        }
    }

    /// Compress the standard day into `day_secs` simulated seconds.
    pub fn compressed(day_secs: u64) -> DiurnalCurve {
        DiurnalCurve {
            day_secs: day_secs.max(1),
            ..DiurnalCurve::standard()
        }
    }

    /// Rate multiplier at simulated second `t`.
    pub fn factor(&self, t_secs: u64) -> f64 {
        let phase = (t_secs % self.day_secs) as f64 / self.day_secs as f64;
        let angle = std::f64::consts::TAU * (phase - self.peak_phase);
        1.0 + self.amplitude * angle.cos()
    }
}

/// A multiplicative burst on flash-sensitive profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Burst window `[start_secs, end_secs)` in simulated time.
    pub start_secs: u64,
    pub end_secs: u64,
    /// Arrival-rate multiplier inside the window (≥ 1).
    pub factor: f64,
}

impl FlashCrowd {
    pub fn new(start_secs: u64, end_secs: u64, factor: f64) -> FlashCrowd {
        assert!(start_secs < end_secs, "empty flash-crowd window");
        assert!(factor >= 1.0, "a flash crowd cannot reduce load");
        FlashCrowd {
            start_secs,
            end_secs,
            factor,
        }
    }

    pub fn factor_at(&self, t_secs: u64, profile_is_sensitive: bool) -> f64 {
        if profile_is_sensitive && (self.start_secs..self.end_secs).contains(&t_secs) {
            self.factor
        } else {
            1.0
        }
    }
}

/// Combined modulation applied to every subscriber's arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Modulation {
    pub diurnal: Option<DiurnalCurve>,
    pub flash: Option<FlashCrowd>,
}

impl Modulation {
    /// Flat load (factor 1 everywhere).
    pub fn none() -> Modulation {
        Modulation::default()
    }

    /// Rate multiplier for a profile at `t`.
    pub fn factor(&self, t_secs: u64, profile_is_sensitive: bool) -> f64 {
        let d = self.diurnal.map_or(1.0, |c| c.factor(t_secs));
        let f = self
            .flash
            .map_or(1.0, |fc| fc.factor_at(t_secs, profile_is_sensitive));
        d * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peak_and_trough() {
        let c = DiurnalCurve::standard();
        let peak_t = (0.875 * 86_400.0) as u64;
        let trough_t = (0.375 * 86_400.0) as u64;
        assert!((c.factor(peak_t) - 1.45).abs() < 0.01);
        assert!((c.factor(trough_t) - 0.55).abs() < 0.01);
        // Mean over the day is ~1.
        let mean: f64 = (0..24).map(|h| c.factor(h * 3600)).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn compressed_day_wraps() {
        let c = DiurnalCurve::compressed(1200);
        assert_eq!(c.factor(0), c.factor(1200));
        assert_eq!(c.factor(300), c.factor(1500));
    }

    #[test]
    fn flash_crowd_only_hits_sensitive_profiles_in_window() {
        let f = FlashCrowd::new(100, 200, 3.0);
        assert_eq!(f.factor_at(150, true), 3.0);
        assert_eq!(f.factor_at(150, false), 1.0);
        assert_eq!(f.factor_at(99, true), 1.0);
        assert_eq!(f.factor_at(200, true), 1.0, "window is half-open");
    }

    #[test]
    fn modulation_composes() {
        let m = Modulation {
            diurnal: Some(DiurnalCurve {
                day_secs: 1000,
                amplitude: 0.5,
                peak_phase: 0.0,
            }),
            flash: Some(FlashCrowd::new(0, 10, 2.0)),
        };
        // At t=0: diurnal peak (1.5) times flash (2.0).
        assert!((m.factor(0, true) - 3.0).abs() < 1e-9);
        assert!((m.factor(0, false) - 1.5).abs() < 1e-9);
        assert_eq!(Modulation::none().factor(123, true), 1.0);
    }
}
