//! # cgn-traffic — flow-level workload generation and CGN dimensioning
//!
//! The study measures deployed CGNs from the outside: port-allocation
//! strategies and per-subscriber port chunks (§6.2, Figs 8/9, Table 6),
//! NAT pooling (§6.2), mapping timeouts (§6.3, Fig. 12), and operator
//! constraints like per-customer session limits and 20:1
//! address-sharing ratios (§2's survey). This crate turns those
//! findings around and asks the **operator-side question** they imply:
//! *how much port and state capacity does a CGN need for a given
//! subscriber population and traffic mix?*
//!
//! Three pieces answer it:
//!
//! * [`workload`] — per-subscriber flow generators for five application
//!   classes, each stressing a different CGN resource the paper
//!   observes:
//!   - **web**: mapping churn under short timeouts (Fig. 12),
//!   - **streaming**: long-lived established-TCP state (RFC 5382's
//!     2 h 4 min floor),
//!   - **p2p**: the fan-out that port chunks (Fig. 8c, Table 6) and
//!     session limits (§2) exist to contain,
//!   - **gaming/VoIP**: keepalive-dependent UDP riding on 10–200 s
//!     timeouts (Fig. 12),
//!   - **iot/idle**: the near-idle tail that makes 20:1 sharing (§2)
//!     feasible;
//!
//!   plus population [`modulation`] (diurnal curve, flash crowds) —
//!   demand peaks are what operators provision for;
//! * [`driver`] — a deterministic, sharded, epoch-parallel event
//!   engine: subscribers are hashed to the shards of a
//!   [`nat_engine::ShardedNat`], each shard runs its own binary-heap
//!   event loop between sweep/sample barriers, and worker threads
//!   advance shards concurrently with bit-identical results for every
//!   thread count — exercising mapping creation, refresh,
//!   sweep/timeout and drop paths at millions-of-flows scale;
//! * `analysis::port_demand` (in the `analysis` crate) — consumes the
//!   sampled [`analysis::port_demand::DemandSeries`] and produces the
//!   dimensioning report: peak/percentile port demand, external-IP
//!   multiplexing factors, and the chunk-size vs. blocking-probability
//!   curve that connects directly to the 512..16K chunk sizes of §6.2.
//!
//! Everything is seeded and deterministic: the same
//! [`driver::DriverConfig`] always yields an identical
//! [`driver::RunSummary`] (see [`driver::RunSummary::digest`]).
//!
//! ```
//! use cgn_traffic::{DriverConfig, WorkloadMix};
//!
//! let mut cfg = DriverConfig::new(WorkloadMix::residential_evening(), 42);
//! cfg.subscribers = 500;
//! cfg.duration_secs = 120;
//! let summary = cgn_traffic::run(&cfg);
//! assert!(summary.flows_started > 0);
//! assert_eq!(summary.digest(), cgn_traffic::run(&cfg).digest());
//! ```

pub mod background;
pub mod driver;
pub mod modulation;
mod wheel;
pub mod workload;

pub use background::{drive as drive_background, BackgroundLoad, LoadSummary, PeerObservation};
pub use cgn_trace::TraceConfig;
pub use driver::{
    run, run_with_logs, shard_of_subscriber, shard_pool, subscriber_ip, DriverConfig,
    DriverSession, MetricsSummary, MetricsWindow, RunSummary, SessionHealth, TelemetrySummary,
    DEFAULT_BURST, DEFAULT_METRICS_RETENTION,
};
pub use modulation::{DiurnalCurve, FlashCrowd, Modulation};
pub use workload::{AppParams, AppProfile, WorkloadMix};
