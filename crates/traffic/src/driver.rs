//! The flow scheduler: a sharded, epoch-parallel event engine that
//! pushes generated flows through a [`nat_engine::ShardedNat`].
//!
//! Subscribers are hashed to NAT shards at admission
//! ([`ShardedNat::shard_of`]); each shard owns a complete NAT state
//! slice (port allocators, mapping tables, stats), its own binary-heap
//! event queue, and the RNG streams of its subscribers. Between two
//! *epoch barriers* — the sweep and demand-sample ticks — shards share
//! nothing, so worker threads (`std::thread::scope`) advance them
//! concurrently; at each barrier the coordinator merges the per-shard
//! demand slices (`analysis::port_demand::merge_shard_demand`).
//!
//! **Determinism.** Every subscriber draws from its own seeded RNG
//! stream and every shard's events are processed in `(time, sequence)`
//! order, so a run is bit-identical for *any* worker-thread count —
//! `threads` is an execution detail, never an input to the result (see
//! the `parallel_matches_sequential` tests). Shard count, on the other
//! hand, is topology: it decides which allocator serves a subscriber
//! and therefore (like `external_ips_per_shard`) is part of the
//! configuration a digest depends on.

use crate::modulation::Modulation;
use crate::wheel::EventWheel;
use crate::workload::{AppProfile, WorkloadMix};
use analysis::log_volume;
use analysis::port_demand::{
    self, max_over_mean, DemandSeries, PortDemandReport, ShardDemand, ShardLoad,
};
use cgn_metrics::{Snapshot, Value, Window, WindowSeries};
use cgn_telemetry::{BinaryLogSink, EventLog, SampledSink};
use cgn_trace::{Phase, PhaseProfiler, ShardTracer, TraceConfig, TraceDump};
use nat_engine::sharded::{mix64, scatter};
use nat_engine::telemetry::{EventSink, TelemetryMode};
use nat_engine::{EngineMetrics, Nat, NatConfig, NatStats, NatVerdict, ShardedNat, StoreOccupancy};
use netcore::{Endpoint, Packet, SimTime, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Everything one dimensioning run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Subscriber population across all shards.
    pub subscribers: u32,
    /// NAT state shards; subscribers are hashed to shards at admission.
    pub shards: u16,
    /// Public addresses owned by each shard.
    pub external_ips_per_shard: u16,
    /// Worker threads for the epoch engine: `0` = one per available
    /// core, `1` = sequential in place. Results are identical for every
    /// value.
    pub threads: usize,
    /// Behaviour of every shard.
    pub nat: NatConfig,
    /// Application mix of the population.
    pub mix: WorkloadMix,
    /// Diurnal / flash-crowd modulation.
    pub modulation: Modulation,
    /// Simulated run length.
    pub duration_secs: u64,
    /// Demand-sampling cadence (an epoch barrier).
    pub sample_secs: u64,
    /// Mapping-sweep cadence (an epoch barrier exercising `Nat::sweep`
    /// at scale).
    pub sweep_secs: u64,
    /// Traceability logging: `Off` installs no sink (the zero-cost
    /// default); `PerConnection`/`PerBlock` install one
    /// [`BinaryLogSink`] per shard and surface the volume in
    /// [`RunSummary::telemetry`] (raw logs via [`run_with_logs`]);
    /// `Sampled` installs a [`SampledSink`] (1-in-N by flow-key hash).
    pub telemetry: TelemetryMode,
    /// Runtime-metrics aggregation window in sim-seconds. `None` (the
    /// zero-cost default) installs no [`EngineMetrics`] registries and
    /// leaves [`RunSummary::metrics`] empty; `Some(w)` snapshots every
    /// instrument at each sample barrier and folds the snapshots into
    /// `w`-second windows.
    pub metrics_window_secs: Option<u64>,
    /// Maximum metrics windows retained in memory (`0` = the
    /// [`DEFAULT_METRICS_RETENTION`] ring). The series stays
    /// telescoping-safe across evictions
    /// (`cgn_metrics::WindowSeries::drain_closed`), so an always-on
    /// run is bounded-memory regardless of simulated length; any run
    /// shorter than `retention × window` — every batch sweep in this
    /// repo — sees identical [`RunSummary::metrics`] to the old
    /// unbounded series. An execution/retention detail like `threads`:
    /// windows that *are* retained are bit-identical for every value.
    pub metrics_retention: usize,
    /// Packets per burst handed to [`Nat::process_burst`] (and
    /// [`Nat::process_inbound_burst`] for the reply leg) when a
    /// millisecond batch of drained events is translated. `0` (the
    /// default) means [`DEFAULT_BURST`]. Like `threads`, this is an
    /// execution detail: summaries and telemetry logs are bit-identical
    /// for every value (see the `burst_sizes_bit_identical` test).
    pub burst: usize,
    /// Permille of forwarded outbound packets whose flow receives an
    /// inbound reply in the same millisecond batch, exercising the
    /// engine's inbound path under load. Selection is a deterministic
    /// hash of the flow endpoints and the batch instant, so the reply
    /// stream — like everything else — is bit-identical for every
    /// worker-thread count and burst size. `0` (the default) disables
    /// the leg entirely and leaves every existing digest unchanged.
    pub inbound_reply_permille: u32,
    /// Flow-lifecycle tracing and phase profiling
    /// ([`cgn_trace::TraceConfig`]). The default (`off`) installs no
    /// tracer — the fire sites compile to an untaken branch, the same
    /// zero-cost discipline as `telemetry` and `metrics_window_secs`.
    /// When enabled, flow spans are sim-time-stamped and thread-count
    /// invariant; phase timings are wall-clock and live only in the
    /// annotation layer ([`DriverSession::phase_profile`]), never in
    /// [`RunSummary`].
    pub trace: TraceConfig,
    pub seed: u64,
}

/// Burst size used when [`DriverConfig::burst`] is `0`: large enough
/// to keep [`nat_engine::nat::PREFETCH_DISTANCE`] slots in flight,
/// small enough that a burst's packets stay L1-resident.
pub const DEFAULT_BURST: usize = 32;

/// Metrics windows retained when [`DriverConfig::metrics_retention`]
/// is `0`: far above every batch sweep in this repo (their window
/// counts are in the tens), small enough that an always-on soak never
/// holds more than ~a day of minute windows resident.
pub const DEFAULT_METRICS_RETENTION: usize = 4096;

impl DriverConfig {
    /// A mid-size default: 8k subscribers behind one shard, sequential.
    pub fn new(mix: WorkloadMix, seed: u64) -> DriverConfig {
        DriverConfig {
            subscribers: 8_000,
            shards: 1,
            external_ips_per_shard: 8,
            threads: 1,
            nat: NatConfig::cgn_default(),
            mix,
            modulation: Modulation::none(),
            duration_secs: 1_200,
            sample_secs: 60,
            sweep_secs: 30,
            telemetry: TelemetryMode::Off,
            metrics_window_secs: None,
            metrics_retention: 0,
            burst: 0,
            inbound_reply_permille: 0,
            trace: TraceConfig::off(),
            seed,
        }
    }
}

/// One aggregation window of the metrics time series: the operator-
/// facing rates and levels distilled from the window's snapshot delta
/// (rates/counts) and its closing cumulative snapshot (levels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Window start, aligned to a multiple of the window width.
    pub start_secs: u64,
    /// Sim-time of the last sample folded into this window.
    pub end_secs: u64,
    /// New-flow attempts within the window.
    pub flows_started: u64,
    /// `flows_started / window width`.
    pub flows_per_sec: f64,
    /// Mappings created / expired within the window.
    pub mappings_created: u64,
    pub mappings_expired: u64,
    /// Live mappings at the window's closing sample.
    pub mappings_live: u64,
    /// Worst allocator fill across every (external IP, protocol) pool
    /// at the closing sample, in permille.
    pub allocator_fill_permille_worst: u64,
    /// Outstanding driver events at the closing sample, summed across
    /// shard event wheels.
    pub event_wheel_depth: u64,
    /// 2 MiB slab-arena chunks mapped across shards at the closing
    /// sample (`cgn_arena_chunks`). Monotone within a run — chunks are
    /// only ever appended — so a flat tail proves the slab stopped
    /// growing after warm-up (and arena growth never copies, unlike
    /// the `Vec` slab it replaced).
    pub arena_chunks: u64,
    /// `max/mean` of per-shard flow starts within the window — the
    /// transient skew [`ShardLoad::flow_imbalance`] averages away.
    pub shard_flow_imbalance: f64,
    /// New-flow rejections (port exhaustion + session limit) within
    /// the window.
    pub drops: u64,
}

/// The windowed metrics aggregate of one run
/// ([`RunSummary::metrics`], present when
/// [`DriverConfig::metrics_window_secs`] is set). Thread-count
/// invariant like every other summary field: per-shard snapshots are
/// merged in shard order at sample barriers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Aggregation window width in sim-seconds.
    pub window_secs: u64,
    /// Per-window rows, in time order.
    pub windows: Vec<MetricsWindow>,
    /// The final cumulative snapshot — every instrument in the stack
    /// at run end (the Prometheus-exposition payload).
    pub last: Snapshot,
    /// Worst [`MetricsWindow::shard_flow_imbalance`] across windows.
    pub worst_window_flow_imbalance: f64,
    /// Start of the window behind `worst_window_flow_imbalance`.
    pub worst_window_start_secs: u64,
}

/// Aggregate logging volume of one run (zeros when telemetry is off).
/// Thread-count invariant like every other summary field: per-shard
/// logs are owned by their shard, so sums depend only on the
/// configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    pub mode: TelemetryMode,
    /// Semantic records across all shard logs.
    pub records: u64,
    /// Encoded bytes across all shard logs.
    pub bytes: u64,
    /// The operator-budget normalization (`analysis::log_volume`).
    pub bytes_per_subscriber_day: f64,
}

impl TelemetrySummary {
    fn from_logs(
        mode: TelemetryMode,
        logs: &[EventLog],
        subscribers: u64,
        duration_secs: u64,
    ) -> TelemetrySummary {
        let records = logs.iter().map(EventLog::records).sum();
        let bytes = logs.iter().map(EventLog::len_bytes).sum();
        TelemetrySummary {
            mode,
            records,
            bytes,
            bytes_per_subscriber_day: log_volume::bytes_per_subscriber_day(
                bytes,
                subscribers,
                duration_secs,
            ),
        }
    }
}

/// Aggregated outcome of one run.
///
/// Deliberately excludes the worker-thread count: summaries produced
/// with different `threads` settings but otherwise identical
/// configurations compare equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub mix_name: String,
    pub subscribers: u32,
    pub shards: u16,
    pub duration_secs: u64,
    /// New-flow attempts handed to the NAT.
    pub flows_started: u64,
    /// Attempts dropped at the first packet (port/chunk/session limits).
    pub flows_blocked: u64,
    /// Flows that reached their scheduled end.
    pub flows_completed: u64,
    /// Outbound packets processed (arrivals + keepalives + teardowns).
    pub packets_sent: u64,
    /// NAT counters merged across shards.
    pub stats: NatStats,
    /// Slab-store occupancy at run end, summed across shards (arena
    /// size, free-list length, interner sizes, parked timers).
    pub store: StoreOccupancy,
    /// Per-shard flow and peak-mapping distribution — the
    /// load-imbalance observable for heavy-tailed mixes.
    pub shard_load: ShardLoad,
    /// Traceability-log volume (zeros when telemetry is off).
    pub telemetry: TelemetrySummary,
    /// Windowed runtime metrics (`None` unless
    /// [`DriverConfig::metrics_window_secs`] is set).
    pub metrics: Option<MetricsSummary>,
    /// Demand time series (merged across shards at each barrier).
    pub series: DemandSeries,
    /// Ports-per-subscriber distribution at the peak sample (sorted).
    pub peak_ports_per_subscriber: Vec<u32>,
    /// The dimensioning report derived from the series.
    pub report: PortDemandReport,
}

impl RunSummary {
    /// Order-independent fingerprint for determinism checks.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the debug rendering: every field is plain data
        // with deterministic Debug output.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Next flow arrival for a subscriber (dense per-shard index into
    /// [`ShardState::subs`]).
    Arrival { idx: u32 },
    /// Keepalive packet for a live flow (generational slab handle).
    Packet { flow: u64 },
    /// Scheduled flow teardown (generational slab handle).
    End { flow: u64 },
}

struct FlowState {
    src: Endpoint,
    dst: Endpoint,
    udp: bool,
    end_ms: u64,
    refresh_ms: u64,
}

/// Slab of live flows with generational `u64` handles
/// (`generation << 32 | slot`). A teardown frees the slot; a stale
/// keepalive event carrying the old handle misses on the generation
/// check instead of touching the slot's next tenant — the same
/// free-list + generation scheme as `nat_engine::store`, applied to
/// the driver's own hot table.
struct FlowSlab {
    slots: Vec<(u32, Option<FlowState>)>,
    free: Vec<u32>,
}

impl FlowSlab {
    fn new() -> FlowSlab {
        FlowSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, f: FlowState) -> u64 {
        match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                e.1 = Some(f);
                (e.0 as u64) << 32 | s as u64
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 live flows");
                self.slots.push((0, Some(f)));
                s as u64
            }
        }
    }

    fn get(&self, handle: u64) -> Option<&FlowState> {
        let e = self.slots.get((handle & 0xFFFF_FFFF) as usize)?;
        if e.0 != (handle >> 32) as u32 {
            return None;
        }
        e.1.as_ref()
    }

    fn remove(&mut self, handle: u64) -> Option<FlowState> {
        let slot = (handle & 0xFFFF_FFFF) as usize;
        let e = self.slots.get_mut(slot)?;
        if e.0 != (handle >> 32) as u32 {
            return None;
        }
        let f = e.1.take()?;
        e.0 = e.0.wrapping_add(1);
        self.free.push(slot as u32);
        Some(f)
    }
}

/// One subscriber's generator state. Each subscriber owns an
/// independent RNG stream, which is what makes the run independent of
/// shard processing order.
struct SubState {
    /// Global subscriber id (addressing, destination universe).
    sub: u32,
    rng: StdRng,
    profile: AppProfile,
    next_src_port: u16,
}

/// Shard-local driver state: the event wheel and the flow/subscriber
/// tables of the hosts admitted to this shard. Subscribers live in a
/// dense vector (admission order), flows in a generational slab —
/// no hash map sits on the per-event path.
struct ShardState {
    wheel: EventWheel<Kind>,
    seq: u64,
    subs: Vec<SubState>,
    flows: FlowSlab,
    flows_started: u64,
    flows_blocked: u64,
    flows_completed: u64,
    packets_sent: u64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            wheel: EventWheel::new(),
            seq: 0,
            subs: Vec::new(),
            flows: FlowSlab::new(),
            flows_started: 0,
            flows_blocked: 0,
            flows_completed: 0,
            packets_sent: 0,
        }
    }

    fn push(&mut self, at_ms: u64, kind: Kind) {
        self.seq += 1;
        self.wheel.push(at_ms, self.seq, kind);
    }
}

/// Base of the subscriber address plan (RFC 6598 shared space).
pub const SUBSCRIBER_BASE: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 0);

/// Shared address plan: subscriber `idx` lives at `100.64/10 + idx`
/// (RFC 6598); pool IPs sit in `198.18/15` (benchmark range). Public
/// so attribution tooling (deterministic-NAT inversion, probe
/// construction) can reconstruct the provisioning table.
pub fn subscriber_ip(idx: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(SUBSCRIBER_BASE) + idx)
}

fn pool_ip(shard: u16, k: u16) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(Ipv4Addr::new(198, 18, 0, 0)) + (shard as u32) * 256 + k as u32)
}

/// The external pool owned by one shard of a run with this
/// configuration, in the shard's own allocation order — the
/// deployment knowledge a traceability query needs (deterministic-NAT
/// inversion resolves against exactly this list).
pub fn shard_pool(config: &DriverConfig, shard: u16) -> Vec<Ipv4Addr> {
    (0..config.external_ips_per_shard)
        .map(|k| pool_ip(shard, k))
        .collect()
}

/// The shard a subscriber is admitted to under this configuration
/// (the driver's stable host hash).
pub fn shard_of_subscriber(config: &DriverConfig, idx: u32) -> u16 {
    (mix64(u32::from(subscriber_ip(idx)) as u64) % config.shards as u64) as u16
}

/// Per-class destination universes live in distinct public /8-ish
/// bases so flows are visibly attributable in traces.
fn dest_ip(profile: AppProfile, idx: u32) -> Ipv4Addr {
    let base = match profile {
        AppProfile::Web => Ipv4Addr::new(23, 0, 0, 0),
        AppProfile::Streaming => Ipv4Addr::new(151, 101, 0, 0),
        AppProfile::P2p => Ipv4Addr::new(85, 0, 0, 0),
        AppProfile::Gaming => Ipv4Addr::new(162, 254, 0, 0),
        AppProfile::Iot => Ipv4Addr::new(52, 32, 0, 0),
    };
    Ipv4Addr::from(u32::from(base) + idx)
}

/// Mix a subscriber's per-pool slot into a universe index so each
/// subscriber keeps a stable `fanout`-sized destination pool.
fn pool_slot_to_universe(sub: u32, slot: u16, universe: u32) -> u32 {
    let mut z = ((sub as u64) << 16 | slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 32;
    (z as u32) % universe.max(1)
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Deferred commit work for one drained event: everything the generate
/// pass decided, applied by the commit pass in event order after the
/// translate pass has produced the batch's verdicts. Events whose
/// packet went through the NAT consume exactly one verdict each, in
/// event order.
enum Pending {
    /// New flow: reschedule the subscriber's next arrival, then commit
    /// the flow if its first packet was admitted (consumes one verdict).
    Arrival {
        idx: u32,
        next_arrival: Option<u64>,
        src: Endpoint,
        dst: Endpoint,
        udp: bool,
        end_ms: u64,
        refresh_ms: u64,
    },
    /// Keepalive for a live flow (consumes one verdict).
    Packet {
        flow: u64,
        end_ms: u64,
        refresh_ms: u64,
    },
    /// TCP teardown: a FIN went on the wire (consumes one verdict).
    EndTcp { flow: u64 },
    /// UDP teardown: no packet, just the flow-table removal.
    EndUdp { flow: u64 },
    /// The event carried a stale generational handle; nothing to do.
    Stale,
}

/// One barrier-to-barrier step of a shard: how far to drain, the burst
/// chunk size, the inbound-reply leg parameters, and which barrier
/// duties run at the boundary.
#[derive(Clone, Copy)]
struct AdvanceStep {
    boundary_ms: u64,
    burst: usize,
    /// [`DriverConfig::inbound_reply_permille`].
    reply_permille: u32,
    /// The run seed, salting the reply-selection hash.
    seed: u64,
    do_sweep: bool,
    do_sample: bool,
}

/// Whether a forwarded outbound packet's flow receives an inbound
/// reply in this millisecond batch: a pure hash of (seed, flow
/// endpoints, batch instant), so the decision is identical for every
/// worker-thread count and burst size, and keepalives of a long flow
/// re-draw each batch.
fn reply_due(seed: u64, permille: u32, at_ms: u64, src: Endpoint, dst: Endpoint) -> bool {
    if permille == 0 {
        return false;
    }
    let flow = (u32::from(src.ip) as u64) << 16 | src.port as u64;
    let peer = (u32::from(dst.ip) as u64) << 16 | dst.port as u64;
    mix64(seed ^ mix64(flow) ^ mix64(peer ^ mix64(at_ms))) % 1000 < permille as u64
}

/// Advance one shard's event queue up to (and including) `boundary_ms`,
/// then run its barrier duties: sweep expired mappings and/or capture
/// this shard's slice of the demand snapshot.
///
/// Each millisecond batch of events is drained in three passes —
/// **generate** (draw subscriber RNGs and build packets, in event
/// order), **translate** (hand the packets to [`Nat::process_burst`]
/// in `burst`-sized chunks), **commit** (apply verdicts: wheel pushes
/// and flow-table mutations, in event order). RNG draw order, wheel
/// push order and flow-slab mutation order are all exactly the
/// packet-at-a-time event loop's, so summaries and telemetry logs are
/// bit-identical for every burst size. The decoupling is safe because
/// a live flow has at most one pending event, a flow's first keepalive
/// is scheduled at least one refresh interval after its arrival, and
/// every push lands strictly in the future — no event generated in a
/// batch can observe another event of the same batch.
fn advance_shard(
    nat: &mut Nat,
    st: &mut ShardState,
    modulation: &Modulation,
    horizon_ms: u64,
    step: AdvanceStep,
) -> Option<ShardDemand> {
    let AdvanceStep {
        boundary_ms,
        burst,
        reply_permille,
        seed,
        do_sweep,
        do_sample,
    } = step;
    let burst = burst.max(1);
    let mut pending: Vec<Pending> = Vec::new();
    // Drain the event wheel one millisecond-batch at a time; batches
    // arrive in exactly the `(time, sequence)` order the old binary
    // heap produced, and events scheduled while a batch is processed
    // are strictly in the future.
    while let Some(batch) = st.wheel.next_bucket(boundary_ms) {
        // `next_bucket` returns all events of exactly one millisecond,
        // so the whole batch shares one instant.
        let at_ms = batch[0].0;
        let now = SimTime::from_millis(at_ms);
        pending.clear();
        let mut packets: Vec<Packet> = Vec::with_capacity(batch.len());
        // Wall-clock phase clock: `None` (an untaken branch per lap)
        // unless this shard's tracer profiles phases. The burst
        // pipeline laps its own sub-phases inside `process_burst`.
        let mut clock = nat.phase_clock();

        // Pass 1 — generate, in event order.
        for (_at, _seq, kind) in batch {
            match kind {
                Kind::Arrival { idx } => {
                    let ss = &mut st.subs[idx as usize];
                    let sub = ss.sub;
                    let profile = ss.profile;
                    let params = profile.params();

                    // Schedule the next arrival first (non-homogeneous
                    // Poisson, rate modulated at the current instant).
                    let rate_per_sec = params.flows_per_min / 60.0
                        * modulation.factor(at_ms / 1000, params.flash_sensitive);
                    let next_arrival = if rate_per_sec > 1e-12 {
                        let u: f64 = ss.rng.gen::<f64>().max(1e-12);
                        let gap_ms = (-u.ln() / rate_per_sec * 1000.0).clamp(1.0, 1e12) as u64;
                        Some(at_ms + gap_ms).filter(|at| *at <= horizon_ms)
                    } else {
                        None
                    };

                    // Build the flow.
                    let src_port = 20_000 + (ss.next_src_port % 45_000);
                    ss.next_src_port = ss.next_src_port.wrapping_add(1) % 45_000;
                    let src = Endpoint::new(subscriber_ip(sub), src_port);
                    let slot = ss.rng.gen_range(0..params.fanout);
                    let universe_idx = pool_slot_to_universe(sub, slot, params.dest_universe);
                    // Popularity skew: collapse high slots onto the popular
                    // end of the universe now and then.
                    let universe_idx = if ss.rng.gen_bool(0.3) {
                        params.sample_dest(&mut ss.rng)
                    } else {
                        universe_idx
                    };
                    let dst = Endpoint::new(
                        dest_ip(profile, universe_idx),
                        params.sample_dst_port(&mut ss.rng),
                    );
                    let udp = ss.rng.gen_bool(params.udp_share);
                    let duration_ms = (params.sample_duration_secs(&mut ss.rng) * 1000.0) as u64;
                    let end_ms = at_ms + duration_ms.max(1000);

                    packets.push(if udp {
                        Packet::udp(src, dst, vec![])
                    } else {
                        Packet::tcp(src, dst, TcpFlags::SYN, vec![])
                    });
                    st.packets_sent += 1;
                    st.flows_started += 1;
                    pending.push(Pending::Arrival {
                        idx,
                        next_arrival,
                        src,
                        dst,
                        udp,
                        end_ms,
                        refresh_ms: params.refresh_secs * 1000,
                    });
                }
                Kind::Packet { flow } => {
                    let Some(f) = st.flows.get(flow) else {
                        pending.push(Pending::Stale);
                        continue;
                    };
                    packets.push(if f.udp {
                        Packet::udp(f.src, f.dst, vec![])
                    } else {
                        Packet::tcp(f.src, f.dst, TcpFlags::ACK, vec![])
                    });
                    st.packets_sent += 1;
                    pending.push(Pending::Packet {
                        flow,
                        end_ms: f.end_ms,
                        refresh_ms: f.refresh_ms,
                    });
                }
                Kind::End { flow } => {
                    let Some(f) = st.flows.get(flow) else {
                        pending.push(Pending::Stale);
                        continue;
                    };
                    if f.udp {
                        pending.push(Pending::EndUdp { flow });
                    } else {
                        // Polite TCP teardown moves the mapping onto the
                        // short transitory clock (RFC 5382 behaviour the
                        // engine models).
                        packets.push(Packet::tcp(f.src, f.dst, TcpFlags::FIN, vec![]));
                        st.packets_sent += 1;
                        pending.push(Pending::EndTcp { flow });
                    }
                }
            }
        }

        nat.phase_lap(&mut clock, Phase::Generate);

        // Pass 2 — translate in `burst`-sized chunks through the
        // engine's resolve → prefetch → translate pipeline.
        let mut verdicts: Vec<NatVerdict> = Vec::with_capacity(packets.len());
        let mut queue = packets.into_iter();
        loop {
            let chunk: Vec<Packet> = queue.by_ref().take(burst).collect();
            if chunk.is_empty() {
                break;
            }
            verdicts.extend(nat.process_burst(chunk, now));
        }
        nat.phase_lap(&mut clock, Phase::Translate);

        // Pass 3 — commit, in event order. Forwarded packets whose
        // flow the reply hash selects queue an inbound reply addressed
        // to the mapping's external endpoint (the verdict's translated
        // source).
        let mut replies: Vec<Packet> = Vec::new();
        let mut verdicts = verdicts.into_iter();
        for p in pending.drain(..) {
            match p {
                Pending::Arrival {
                    idx,
                    next_arrival,
                    src,
                    dst,
                    udp,
                    end_ms,
                    refresh_ms,
                } => {
                    if let Some(at) = next_arrival {
                        st.push(at, Kind::Arrival { idx });
                    }
                    match verdicts.next().expect("one verdict per packet") {
                        v @ (NatVerdict::Forward(_) | NatVerdict::Hairpin(_)) => {
                            if let NatVerdict::Forward(t) = &v {
                                if reply_due(seed, reply_permille, at_ms, src, dst) {
                                    replies.push(if udp {
                                        Packet::udp(dst, t.src, vec![])
                                    } else {
                                        Packet::tcp(dst, t.src, TcpFlags::ACK, vec![])
                                    });
                                }
                            }
                            let flow = st.flows.insert(FlowState {
                                src,
                                dst,
                                udp,
                                end_ms,
                                refresh_ms,
                            });
                            let next = at_ms + refresh_ms;
                            if next < end_ms.min(horizon_ms) {
                                st.push(next, Kind::Packet { flow });
                            } else if end_ms <= horizon_ms {
                                st.push(end_ms, Kind::End { flow });
                            }
                        }
                        NatVerdict::Drop(_) => {
                            // Port/chunk exhaustion or the per-subscriber
                            // session limit; the shard's stats record which.
                            st.flows_blocked += 1;
                        }
                    }
                }
                Pending::Packet {
                    flow,
                    end_ms,
                    refresh_ms,
                } => {
                    match verdicts.next().expect("one verdict per packet") {
                        NatVerdict::Drop(_) => {
                            // Keepalive failed (e.g. port space gone after
                            // an expiry); the flow dies here.
                            st.flows.remove(flow);
                            continue;
                        }
                        NatVerdict::Forward(t) => {
                            if let Some(f) = st.flows.get(flow) {
                                if reply_due(seed, reply_permille, at_ms, f.src, f.dst) {
                                    replies.push(if f.udp {
                                        Packet::udp(f.dst, t.src, vec![])
                                    } else {
                                        Packet::tcp(f.dst, t.src, TcpFlags::ACK, vec![])
                                    });
                                }
                            }
                        }
                        NatVerdict::Hairpin(_) => {}
                    }
                    let next = at_ms + refresh_ms;
                    if next < end_ms.min(horizon_ms) {
                        st.push(next, Kind::Packet { flow });
                    } else if end_ms <= horizon_ms {
                        st.push(end_ms, Kind::End { flow });
                    }
                }
                Pending::EndTcp { flow } => {
                    let _ = verdicts.next().expect("one verdict per packet");
                    st.flows.remove(flow);
                    st.flows_completed += 1;
                }
                Pending::EndUdp { flow } => {
                    st.flows.remove(flow);
                    st.flows_completed += 1;
                }
                Pending::Stale => {}
            }
        }
        debug_assert!(verdicts.next().is_none(), "every verdict consumed");
        nat.phase_lap(&mut clock, Phase::Commit);

        // Inbound-reply leg: answer the batch's selected flows at the
        // same instant, drained through the engine's inbound burst
        // pipeline in the same chunk size as the outbound pass. The
        // verdicts are accounted by the engine's own counters
        // (`NatStats::in_packets` and the drop breakdown).
        if !replies.is_empty() {
            let mut queue = replies.into_iter();
            loop {
                let chunk: Vec<Packet> = queue.by_ref().take(burst).collect();
                if chunk.is_empty() {
                    break;
                }
                let _ = nat.process_inbound_burst(chunk, now);
            }
            nat.phase_lap(&mut clock, Phase::Inbound);
        }
    }

    let now = SimTime::from_millis(boundary_ms);
    if do_sweep {
        nat.sweep(now);
    }
    if do_sample {
        let mut clock = nat.phase_clock();
        // Dense slab pass in host-interning order — no per-host hash
        // map; the merge sorts the distribution anyway.
        let ports: Vec<u32> = nat.active_ports_per_host(now);
        let worst = nat
            .port_occupancy()
            .iter()
            .map(|o| o.utilization())
            .fold(0.0, f64::max);
        nat.phase_lap(&mut clock, Phase::Sample);
        Some(ShardDemand {
            ports,
            worst_ip_utilization: worst,
            drops_port_exhausted: nat.stats().drop_port_exhausted,
            drops_session_limit: nat.stats().drop_session_limit,
        })
    } else {
        None
    }
}

/// Run `f` over every (shard NAT, shard driver state) pair, on up to
/// `threads` scoped worker threads — a thin zip over the engine's
/// [`scatter`] primitive, which returns results in shard order.
fn for_shards_parallel<R, F>(
    nats: &mut [Nat],
    states: &mut [ShardState],
    threads: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Nat, &mut ShardState) -> R + Sync,
{
    debug_assert_eq!(nats.len(), states.len());
    let work: Vec<(&mut Nat, &mut ShardState)> = nats.iter_mut().zip(states.iter_mut()).collect();
    scatter(work, threads, |(nat, st)| f(nat, st))
}

/// Run one workload against a freshly-built sharded CGN.
pub fn run(config: &DriverConfig) -> RunSummary {
    run_with_logs(config).0
}

/// [`run`], additionally returning the per-shard traceability logs
/// (empty when [`DriverConfig::telemetry`] is `Off`) — the input to
/// `cgn_telemetry::TraceIndex` queries.
pub fn run_with_logs(config: &DriverConfig) -> (RunSummary, Vec<EventLog>) {
    let mut session = DriverSession::new(config);
    while session.step().is_some() {}
    session.finish()
}

impl MetricsWindow {
    /// Distill one closed [`Window`] of the merged snapshot series
    /// into the operator-facing row: delta scalars for counters,
    /// closing cumulative scalars for gauges. `width_secs` is the
    /// aggregation width (rates), `shards` the run's shard count
    /// (per-window skew).
    pub fn from_window(win: &Window, shards: u16, width_secs: u64) -> MetricsWindow {
        let d = &win.delta;
        let c = &win.cumulative;
        let shard_flows: Vec<u64> = (0..shards as usize)
            .map(|i| d.scalar(&format!("cgn_shard_flows_total{{shard=\"{i}\"}}")))
            .collect();
        let flows_started = d.scalar("cgn_flows_started_total");
        MetricsWindow {
            start_secs: win.start_secs,
            end_secs: win.end_secs,
            flows_started,
            flows_per_sec: flows_started as f64 / width_secs.max(1) as f64,
            mappings_created: d.scalar("cgn_mappings_created_total"),
            mappings_expired: d.scalar("cgn_mappings_expired_total"),
            mappings_live: c.scalar("cgn_mappings_live"),
            allocator_fill_permille_worst: c.scalar("cgn_allocator_fill_permille_worst"),
            event_wheel_depth: c.scalar("cgn_event_wheel_depth"),
            arena_chunks: c.scalar("cgn_arena_chunks"),
            shard_flow_imbalance: max_over_mean(&shard_flows),
            drops: d.scalar("cgn_flows_rejected_total{reason=\"port-exhausted\"}")
                + d.scalar("cgn_flows_rejected_total{reason=\"session-limit\"}"),
        }
    }
}

/// One liveness cross-section of a running [`DriverSession`] — the
/// payload an operator endpoint (`/healthz`) serves: simulated
/// progress, the driver's own flow/backlog counters, and the merged
/// slab/arena/timer occupancy of every shard store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionHealth {
    /// Simulated seconds processed so far (last completed barrier).
    pub now_secs: u64,
    /// Simulated seconds the session will run in total.
    pub horizon_secs: u64,
    pub flows_started: u64,
    pub flows_blocked: u64,
    pub flows_completed: u64,
    pub packets_sent: u64,
    /// Outstanding driver events across every shard's wheel.
    pub event_wheel_depth: u64,
    /// Slab/arena/interner/timer occupancy summed across shards.
    pub store: StoreOccupancy,
    /// Metrics windows currently resident in the ring.
    pub windows_retained: usize,
    /// Metrics windows evicted or drained so far.
    pub windows_evicted: u64,
}

/// An epoch-resumable driver run: the exact event loop of [`run`],
/// split at its barrier boundaries so a long-lived caller (the
/// `cgn-opsd` soak daemon) can advance simulated time one epoch at a
/// time and, between epochs, stream closed metrics windows out
/// ([`drain_closed_windows`](DriverSession::drain_closed_windows)),
/// publish the merged snapshot to a scrape endpoint, and evaluate
/// leak gates against [`health`](DriverSession::health).
///
/// `run_with_logs(cfg)` is literally `DriverSession::new(cfg)` +
/// `step()` to exhaustion + `finish()`, so a stepped session is
/// bit-identical to a batch run for every thread count and burst
/// size — stepping is an execution detail like `threads`.
pub struct DriverSession {
    config: DriverConfig,
    threads: usize,
    burst: usize,
    horizon_ms: u64,
    sharded: ShardedNat,
    states: Vec<ShardState>,
    /// Epoch barriers in time order: `(boundary_ms, (sweep, sample))`.
    ticks: Vec<(u64, (bool, bool))>,
    next_tick: usize,
    now_ms: u64,
    series: DemandSeries,
    peak_live: u64,
    peak_dist: Vec<u32>,
    metrics_on: bool,
    window_secs: u64,
    windows: WindowSeries,
    prev_shard_flows: Vec<u64>,
    prev_sample_secs: u64,
    worst_window_imbalance: f64,
    worst_window_start: u64,
}

impl DriverSession {
    /// Build the sharded CGN, admit every subscriber, and lay out the
    /// epoch barriers — everything [`run`] does before its first event
    /// is drained.
    pub fn new(config: &DriverConfig) -> DriverSession {
        assert!(config.subscribers > 0, "need at least one subscriber");
        assert!(config.shards > 0, "need at least one shard");
        assert!(
            config.external_ips_per_shard >= 1 && config.external_ips_per_shard <= 256,
            "pool addressing assigns each shard a /24-sized stride: \
             external_ips_per_shard must be in 1..=256"
        );
        assert!(config.duration_secs > 0 && config.sample_secs > 0 && config.sweep_secs > 0);

        let threads = resolve_threads(config.threads);
        let burst = if config.burst == 0 {
            DEFAULT_BURST
        } else {
            config.burst
        };
        let horizon_ms = config.duration_secs * 1000;

        // k-major ordering + round-robin partitioning inside ShardedNat
        // puts pool_ip(s, k) into shard s for all k.
        let mut pool: Vec<Ipv4Addr> = Vec::new();
        for k in 0..config.external_ips_per_shard {
            for s in 0..config.shards {
                pool.push(pool_ip(s, k));
            }
        }
        let mut sharded = ShardedNat::new(config.nat.clone(), pool, config.shards, config.seed);
        if config.telemetry != TelemetryMode::Off {
            sharded.set_sinks(
                (0..config.shards)
                    .map(|_| match config.telemetry {
                        TelemetryMode::Sampled { one_in } => {
                            Box::new(SampledSink::new(one_in)) as _
                        }
                        mode => Box::new(BinaryLogSink::new(mode)) as _,
                    })
                    .collect(),
            );
        }
        let metrics_on = config.metrics_window_secs.is_some();
        if metrics_on {
            sharded.set_metrics(
                (0..config.shards)
                    .map(|_| Box::<EngineMetrics>::default())
                    .collect(),
            );
        }
        if config.trace.enabled() {
            sharded.set_tracers(
                (0..config.shards)
                    .map(|s| Box::new(ShardTracer::new(s as u32, &config.trace)))
                    .collect(),
            );
        }

        // Admit every subscriber to its shard with a fresh RNG stream
        // and a staggered first arrival.
        let mut states: Vec<ShardState> = (0..config.shards).map(|_| ShardState::new()).collect();
        for sub in 0..config.subscribers {
            let shard = sharded.shard_of(subscriber_ip(sub));
            let mut rng = StdRng::seed_from_u64(mix64(config.seed ^ mix64(sub as u64 + 1)));
            let offset = rng.gen_range(0..1000u64);
            let st = &mut states[shard];
            let idx = u32::try_from(st.subs.len()).expect("subscriber index fits u32");
            st.subs.push(SubState {
                sub,
                rng,
                profile: config.mix.assign(sub),
                next_src_port: 0,
            });
            st.push(offset, Kind::Arrival { idx });
        }

        // Epoch barriers: the union of sweep and sample ticks, plus the
        // horizon so the final epoch drains every remaining event.
        let mut ticks: BTreeMap<u64, (bool, bool)> = BTreeMap::new();
        let mut t = config.sweep_secs * 1000;
        while t <= horizon_ms {
            ticks.entry(t).or_insert((false, false)).0 = true;
            t += config.sweep_secs * 1000;
        }
        let mut t = config.sample_secs * 1000;
        while t <= horizon_ms {
            ticks.entry(t).or_insert((false, false)).1 = true;
            t += config.sample_secs * 1000;
        }
        // The horizon is always a full barrier: drain every remaining
        // event, sweep, and take the closing sample — exactly once,
        // even when it coincides with a periodic tick.
        ticks.insert(horizon_ms, (true, true));

        // Per-window shard-skew tracking (always on — a handful of
        // counter reads per barrier) and the metrics window ring (only
        // fed when registries are installed). The ring is bounded:
        // eviction keeps the telescoping anchor, so an always-on
        // session is flat-memory regardless of simulated length.
        let window_secs = config
            .metrics_window_secs
            .unwrap_or(config.sample_secs)
            .max(1);
        let retention = if config.metrics_retention == 0 {
            DEFAULT_METRICS_RETENTION
        } else {
            config.metrics_retention
        };

        DriverSession {
            threads,
            burst,
            horizon_ms,
            sharded,
            states,
            ticks: ticks.into_iter().collect(),
            next_tick: 0,
            now_ms: 0,
            series: DemandSeries::default(),
            peak_live: 0,
            peak_dist: Vec::new(),
            metrics_on,
            window_secs,
            windows: WindowSeries::new(window_secs, retention),
            prev_shard_flows: vec![0; config.shards as usize],
            prev_sample_secs: 0,
            worst_window_imbalance: 0.0,
            worst_window_start: 0,
            config: config.clone(),
        }
    }

    /// The configuration this session was built from.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Simulated seconds processed so far (last completed barrier).
    pub fn now_secs(&self) -> u64 {
        self.now_ms / 1000
    }

    /// Simulated seconds the session covers in total.
    pub fn horizon_secs(&self) -> u64 {
        self.horizon_ms / 1000
    }

    /// Metrics aggregation window width in sim-seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Advance every shard through the next epoch barrier (drain
    /// events, then sweep and/or sample). Returns the barrier's
    /// sim-time in seconds, or `None` once the horizon barrier has
    /// run and the session is complete.
    pub fn step(&mut self) -> Option<u64> {
        let &(boundary, (do_sweep, do_sample)) = self.ticks.get(self.next_tick)?;
        self.next_tick += 1;
        self.barrier(boundary, do_sweep, do_sample);
        self.now_ms = boundary;
        Some(boundary / 1000)
    }

    fn barrier(&mut self, boundary: u64, do_sweep: bool, do_sample: bool) {
        let DriverSession {
            config,
            threads,
            burst,
            horizon_ms,
            sharded,
            states,
            series,
            peak_live,
            peak_dist,
            metrics_on,
            windows,
            prev_shard_flows,
            prev_sample_secs,
            worst_window_imbalance,
            worst_window_start,
            ..
        } = self;
        let modulation = &config.modulation;
        let horizon_ms = *horizon_ms;
        let step = AdvanceStep {
            boundary_ms: boundary,
            burst: *burst,
            reply_permille: config.inbound_reply_permille,
            seed: config.seed,
            do_sweep,
            do_sample,
        };
        let demands = for_shards_parallel(sharded.shards_mut(), states, *threads, |nat, st| {
            advance_shard(nat, st, modulation, horizon_ms, step)
        });
        if do_sample {
            let parts: Vec<ShardDemand> = demands.into_iter().flatten().collect();
            let (sample, dist) =
                port_demand::merge_shard_demand(boundary / 1000, config.subscribers as u64, &parts);
            if sample.mappings > *peak_live {
                *peak_live = sample.mappings;
                *peak_dist = dist;
            }
            series.push(sample);

            // Shard skew of this inter-barrier window: flow starts per
            // shard since the previous sample.
            let now_flows: Vec<u64> = states.iter().map(|st| st.flows_started).collect();
            let deltas: Vec<u64> = now_flows
                .iter()
                .zip(prev_shard_flows.iter())
                .map(|(now, prev)| now - prev)
                .collect();
            let imbalance = max_over_mean(&deltas);
            if imbalance > *worst_window_imbalance {
                *worst_window_imbalance = imbalance;
                *worst_window_start = *prev_sample_secs;
            }
            *prev_shard_flows = now_flows;
            *prev_sample_secs = boundary / 1000;

            if *metrics_on {
                // Engine instruments merged in shard order, then the
                // driver's own counters and backlog gauges on top.
                let mut snap = sharded.metrics_snapshot().unwrap_or_default();
                let (mut flows, mut blocked, mut completed) = (0u64, 0u64, 0u64);
                let (mut packets, mut depth) = (0u64, 0u64);
                for (i, st) in states.iter().enumerate() {
                    flows += st.flows_started;
                    blocked += st.flows_blocked;
                    completed += st.flows_completed;
                    packets += st.packets_sent;
                    depth += st.wheel.len() as u64;
                    snap.push(
                        format!("cgn_shard_flows_total{{shard=\"{i}\"}}"),
                        Value::Counter(st.flows_started),
                    );
                }
                snap.push("cgn_flows_started_total", Value::Counter(flows));
                snap.push("cgn_flows_blocked_total", Value::Counter(blocked));
                snap.push("cgn_flows_completed_total", Value::Counter(completed));
                snap.push("cgn_packets_sent_total", Value::Counter(packets));
                snap.push("cgn_event_wheel_depth", Value::Gauge(depth));
                snap.normalize();
                windows.push(boundary / 1000, snap);
            }
        }
    }

    /// The most recent merged cumulative snapshot (engine instruments
    /// plus driver counters), if a sample barrier has run with
    /// metrics installed — what a scrape endpoint renders.
    pub fn latest_snapshot(&self) -> Option<&Snapshot> {
        self.windows.latest()
    }

    /// Take every closed metrics window out of the ring, oldest first
    /// (`cgn_metrics::WindowSeries::drain_closed`): the streaming API.
    /// A caller that drains after each epoch keeps the resident ring
    /// at ≤ 2 windows regardless of run length; windows left undrained
    /// still appear in [`finish`](DriverSession::finish)'s
    /// [`MetricsSummary`].
    pub fn drain_closed_windows(&mut self) -> Vec<Window> {
        self.windows.drain_closed()
    }

    /// Metrics windows evicted or drained so far.
    pub fn windows_evicted(&self) -> u64 {
        self.windows.evicted_windows()
    }

    /// Convert a window taken from
    /// [`drain_closed_windows`](DriverSession::drain_closed_windows)
    /// into the operator-facing row.
    pub fn metrics_row(&self, win: &Window) -> MetricsWindow {
        MetricsWindow::from_window(win, self.config.shards, self.window_secs)
    }

    /// A liveness cross-section for an operator endpoint: simulated
    /// progress, driver counters, backlog, and the merged
    /// slab/arena/timer store occupancy.
    pub fn health(&self) -> SessionHealth {
        let mut flows_started = 0u64;
        let mut flows_blocked = 0u64;
        let mut flows_completed = 0u64;
        let mut packets_sent = 0u64;
        let mut depth = 0u64;
        for st in &self.states {
            flows_started += st.flows_started;
            flows_blocked += st.flows_blocked;
            flows_completed += st.flows_completed;
            packets_sent += st.packets_sent;
            depth += st.wheel.len() as u64;
        }
        SessionHealth {
            now_secs: self.now_secs(),
            horizon_secs: self.horizon_secs(),
            flows_started,
            flows_blocked,
            flows_completed,
            packets_sent,
            event_wheel_depth: depth,
            store: self.sharded.store_occupancy(),
            windows_retained: self.windows.windows.len(),
            windows_evicted: self.windows.evicted_windows(),
        }
    }

    /// Install one [`EventSink`] per shard (shard order, one entry per
    /// shard). Meant for long-running operators that route event logs
    /// to external sinks (e.g. `cgn_telemetry::RotatingFileSink`)
    /// while `config.telemetry` is
    /// [`TelemetryMode::Off`] — [`finish`](DriverSession::finish) only
    /// recovers sinks it installed itself, so external sinks must be
    /// taken back with
    /// [`take_event_sinks`](DriverSession::take_event_sinks) before
    /// finishing.
    pub fn install_event_sinks(&mut self, sinks: Vec<Box<dyn EventSink>>) {
        self.sharded.set_sinks(sinks);
    }

    /// Remove and return the per-shard event sinks (shard order).
    pub fn take_event_sinks(&mut self) -> Vec<Option<Box<dyn EventSink>>> {
        self.sharded.take_sinks()
    }

    /// Fleet-wide wall-clock phase profile, merged across shard
    /// tracers (`None` unless [`DriverConfig::trace`] profiles
    /// phases). Annotation layer only: render it into a published
    /// exposition with [`cgn_trace::PhaseProfiler::render_into`] —
    /// never into the deterministic windowed snapshots or
    /// [`RunSummary`].
    pub fn phase_profile(&self) -> Option<PhaseProfiler> {
        self.sharded.phase_profile()
    }

    /// Merged flight-recorder dump across shards (`None` unless
    /// [`DriverConfig::trace`] samples flows). Sim-time-stamped and
    /// `(shard, seq)`-ordered, so the dump — unlike the phase
    /// profile — is a deterministic function of the run; feed it to
    /// [`cgn_trace::chrome_trace_json`]. Callable at any barrier
    /// (the `/trace` endpoint) or after the last one.
    pub fn trace_dump(&self) -> Option<TraceDump> {
        self.sharded.trace_dump()
    }

    /// Assemble the [`RunSummary`] and recover the per-shard logs —
    /// everything [`run_with_logs`] does after its last barrier.
    /// Callable at any point; summaries of a finished session are
    /// bit-identical to the batch path's.
    pub fn finish(self) -> (RunSummary, Vec<EventLog>) {
        let DriverSession {
            config,
            sharded,
            states,
            series,
            peak_dist,
            windows,
            worst_window_imbalance,
            worst_window_start,
            ..
        } = self;
        let mut sharded = sharded;

        let mut flows_started = 0u64;
        let mut flows_blocked = 0u64;
        let mut flows_completed = 0u64;
        let mut packets_sent = 0u64;
        for st in &states {
            flows_started += st.flows_started;
            flows_blocked += st.flows_blocked;
            flows_completed += st.flows_completed;
            packets_sent += st.packets_sent;
        }
        // Recover the per-shard logs (shard order) before reading stats.
        let logs: Vec<EventLog> = if config.telemetry != TelemetryMode::Off {
            sharded
                .take_sinks()
                .into_iter()
                .map(|sink| {
                    sink.and_then(|s| match config.telemetry {
                        TelemetryMode::Sampled { .. } => {
                            SampledSink::from_sink(s).map(SampledSink::into_log)
                        }
                        _ => BinaryLogSink::from_sink(s).map(BinaryLogSink::into_log),
                    })
                    .unwrap_or_default()
                })
                .collect()
        } else {
            Vec::new()
        };
        let telemetry = TelemetrySummary::from_logs(
            config.telemetry,
            &logs,
            config.subscribers as u64,
            config.duration_secs,
        );

        let stats = sharded.merged_stats();
        let store = sharded.store_occupancy();
        let shard_load = ShardLoad::from_per_shard(
            states.iter().map(|st| st.flows_started).collect(),
            sharded
                .shards()
                .iter()
                .map(|s| s.stats().peak_mappings)
                .collect(),
        )
        .with_worst_window(worst_window_imbalance, worst_window_start);

        let metrics = config.metrics_window_secs.map(|w| {
            let w = w.max(1);
            let rows: Vec<MetricsWindow> = windows
                .windows
                .iter()
                .map(|win| MetricsWindow::from_window(win, config.shards, w))
                .collect();
            let (worst_imb, worst_start) = rows
                .iter()
                .map(|r| (r.shard_flow_imbalance, r.start_secs))
                .fold((0.0f64, 0u64), |acc, x| if x.0 > acc.0 { x } else { acc });
            MetricsSummary {
                window_secs: w,
                last: windows.latest().cloned().unwrap_or_default(),
                worst_window_flow_imbalance: worst_imb,
                worst_window_start_secs: worst_start,
                windows: rows,
            }
        });

        let external_ips = config.shards as u64 * config.external_ips_per_shard as u64;
        let usable_ports_per_ip = (config.nat.port_range.1 - config.nat.port_range.0) as u32 + 1;
        let report = port_demand::build_report(
            &series,
            &peak_dist,
            config.subscribers as u64,
            external_ips,
            usable_ports_per_ip,
        );

        let summary = RunSummary {
            mix_name: config.mix.name.clone(),
            subscribers: config.subscribers,
            shards: config.shards,
            duration_secs: config.duration_secs,
            flows_started,
            flows_blocked,
            flows_completed,
            packets_sent,
            stats,
            store,
            shard_load,
            telemetry,
            metrics,
            series,
            peak_ports_per_subscriber: peak_dist,
            report,
        };
        (summary, logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::{DiurnalCurve, FlashCrowd};
    use proptest::prelude::*;

    fn small(mix: WorkloadMix, seed: u64) -> DriverConfig {
        DriverConfig {
            subscribers: 300,
            shards: 2,
            external_ips_per_shard: 2,
            duration_secs: 240,
            sample_secs: 30,
            sweep_secs: 20,
            ..DriverConfig::new(mix, seed)
        }
    }

    #[test]
    fn run_produces_flows_and_samples() {
        let s = run(&small(WorkloadMix::residential_evening(), 7));
        assert!(s.flows_started > 1_000, "started {}", s.flows_started);
        assert!(s.packets_sent > s.flows_started);
        assert!(!s.series.is_empty());
        assert!(s.stats.mappings_created > 0);
        assert!(s.stats.peak_mappings > 0);
        assert!(s.stats.sweeps > 0, "sweep barriers must run");
        assert!(s.report.peak_mappings > 0);
        assert_eq!(s.report.subscribers, 300);
        assert!(s.store.slots > 0, "slab arena must have been used");
        assert_eq!(s.store.live + s.store.free, s.store.slots);
        assert!(s.store.hosts_interned > 0 && s.store.pools_interned > 0);
        assert_eq!(s.shard_load.flows_per_shard.len(), 2);
        assert_eq!(
            s.shard_load.flows_per_shard.iter().sum::<u64>(),
            s.flows_started
        );
        assert!(s.shard_load.flow_imbalance >= 1.0);
        assert!(s.shard_load.mapping_imbalance >= 1.0);
        assert!(
            s.series
                .samples
                .windows(2)
                .all(|w| w[0].t_secs < w[1].t_secs),
            "exactly one sample per barrier, even at the horizon"
        );
    }

    #[test]
    fn same_seed_same_summary() {
        let a = run(&small(WorkloadMix::p2p_heavy(), 42));
        let b = run(&small(WorkloadMix::p2p_heavy(), 42));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&small(WorkloadMix::p2p_heavy(), 1));
        let b = run(&small(WorkloadMix::p2p_heavy(), 2));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn parallel_matches_sequential() {
        // The determinism cross-check: worker threads are an execution
        // detail, the summary is bit-identical for every thread count.
        let mut cfg = small(WorkloadMix::residential_evening(), 21);
        cfg.shards = 4;
        cfg.threads = 1;
        let seq = run(&cfg);
        for threads in [2, 4, 7] {
            cfg.threads = threads;
            let par = run(&cfg);
            assert_eq!(seq, par, "threads={threads} diverged from sequential");
            assert_eq!(seq.digest(), par.digest());
        }
    }

    /// Stepping a [`DriverSession`] epoch by epoch while draining the
    /// window stream is an execution detail like `threads`: the
    /// streamed rows plus the retained tail reproduce the batch run's
    /// rows exactly, and every non-windowed summary field is
    /// bit-identical.
    #[test]
    fn stepped_session_with_streaming_drain_matches_batch_run() {
        let mut cfg = small(WorkloadMix::residential_evening(), 33);
        cfg.metrics_window_secs = Some(30);
        let batch = run(&cfg);

        let mut session = DriverSession::new(&cfg);
        let mut streamed: Vec<MetricsWindow> = Vec::new();
        let mut epochs = 0;
        while session.step().is_some() {
            epochs += 1;
            for w in session.drain_closed_windows() {
                streamed.push(session.metrics_row(&w));
            }
            assert!(
                session.health().windows_retained <= 2,
                "draining after every epoch keeps the ring flat"
            );
        }
        assert!(epochs > 4, "multiple barriers stepped");
        assert!(!streamed.is_empty(), "windows closed mid-run");

        let health = session.health();
        assert_eq!(health.now_secs, cfg.duration_secs);
        assert_eq!(health.windows_evicted, streamed.len() as u64);
        assert_eq!(health.store.live + health.store.free, health.store.slots);

        let (finished, _) = session.finish();
        let batch_rows = &batch.metrics.as_ref().expect("metrics on").windows;
        let mut all = streamed;
        all.extend(
            finished
                .metrics
                .as_ref()
                .expect("metrics on")
                .windows
                .clone(),
        );
        assert_eq!(&all, batch_rows, "stream + tail == batch rows");
        assert_eq!(
            finished.metrics.as_ref().unwrap().last,
            batch.metrics.as_ref().unwrap().last,
            "closing cumulative snapshot unaffected by draining"
        );
        assert_eq!(batch.flows_started, finished.flows_started);
        assert_eq!(batch.stats, finished.stats);
        assert_eq!(batch.store, finished.store);
        assert_eq!(batch.series, finished.series);
        assert_eq!(batch.report, finished.report);
    }

    /// The burst size, like the thread count, is an execution detail:
    /// summaries and telemetry logs are bit-identical for every value
    /// (burst = 1 is the packet-at-a-time degenerate case).
    #[test]
    fn burst_sizes_bit_identical() {
        let mut cfg = small(WorkloadMix::residential_evening(), 17);
        cfg.shards = 3;
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        cfg.burst = 1;
        let (base, base_logs) = run_with_logs(&cfg);
        for burst in [7, 32, 64, 1024] {
            cfg.burst = burst;
            let (s, logs) = run_with_logs(&cfg);
            assert_eq!(base, s, "burst={burst} diverged");
            assert_eq!(base.digest(), s.digest());
            for (shard, (a, b)) in base_logs.iter().zip(&logs).enumerate() {
                assert_eq!(
                    a.bytes(),
                    b.bytes(),
                    "shard {shard} log diverged at burst={burst}"
                );
            }
        }
        // And the default (burst = 0 → DEFAULT_BURST) matches too.
        cfg.burst = 0;
        assert_eq!(base, run_with_logs(&cfg).0);
    }

    /// The inbound-reply leg: off by default (no inbound packets, no
    /// digest change), and when on it drives the engine's inbound
    /// path while staying bit-identical across burst sizes and
    /// worker-thread counts.
    #[test]
    fn inbound_reply_leg_is_deterministic() {
        let mut cfg = small(WorkloadMix::residential_evening(), 23);
        cfg.shards = 3;
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        let (off, _) = run_with_logs(&cfg);
        assert_eq!(off.stats.in_packets, 0, "leg disabled by default");

        cfg.inbound_reply_permille = 250;
        cfg.burst = 1;
        cfg.threads = 1;
        let (base, base_logs) = run_with_logs(&cfg);
        assert!(base.stats.in_packets > 0, "selected flows must see replies");
        assert!(
            base.stats.in_packets < base.packets_sent,
            "a fraction, not an echo of every packet"
        );
        // Replies land on live mappings from previously-contacted
        // peers: none may be dropped as unmapped or filtered.
        assert_eq!(base.stats.drop_no_mapping, 0);
        assert_eq!(base.stats.drop_filtered, 0);
        // Outbound-side outcomes are untouched by the extra leg.
        assert_eq!(off.flows_started, base.flows_started);
        assert_eq!(off.packets_sent, base.packets_sent);
        for (burst, threads) in [(7, 2), (64, 4), (0, 3)] {
            cfg.burst = burst;
            cfg.threads = threads;
            let (s, logs) = run_with_logs(&cfg);
            assert_eq!(base, s, "burst={burst} threads={threads} diverged");
            assert_eq!(base.digest(), s.digest());
            for (shard, (a, b)) in base_logs.iter().zip(&logs).enumerate() {
                assert_eq!(
                    a.bytes(),
                    b.bytes(),
                    "shard {shard} log diverged at burst={burst} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn auto_threads_match_sequential() {
        let mut cfg = small(WorkloadMix::gaming_event(), 33);
        cfg.shards = 3;
        cfg.threads = 1;
        let seq = run(&cfg);
        cfg.threads = 0; // one worker per available core
        assert_eq!(seq, run(&cfg));
    }

    #[test]
    fn p2p_demands_more_ports_than_iot() {
        let p2p = run(&small(WorkloadMix::p2p_heavy(), 9));
        let iot = run(&small(WorkloadMix::iot_fleet(), 9));
        assert!(
            p2p.report.peak_mappings > iot.report.peak_mappings * 3,
            "p2p {} vs iot {}",
            p2p.report.peak_mappings,
            iot.report.peak_mappings
        );
    }

    #[test]
    fn flash_crowd_raises_peak() {
        let mix = WorkloadMix::gaming_event;
        let calm = run(&small(mix(), 5));
        let mut cfg = small(mix(), 5);
        cfg.modulation.flash = Some(FlashCrowd::new(60, 180, 4.0));
        let stormy = run(&cfg);
        assert!(
            stormy.report.peak_mappings as f64 > calm.report.peak_mappings as f64 * 1.5,
            "calm {} stormy {}",
            calm.report.peak_mappings,
            stormy.report.peak_mappings
        );
    }

    #[test]
    fn diurnal_trough_lowers_load() {
        let mix = WorkloadMix::residential_evening;
        // Flat vs. a curve whose trough covers the whole short run.
        let flat = run(&small(mix(), 3));
        let mut cfg = small(mix(), 3);
        cfg.modulation.diurnal = Some(DiurnalCurve {
            day_secs: 86_400,
            amplitude: 0.45,
            // Run [0, 240 s] sits right at the trough.
            peak_phase: 0.5,
        });
        let quiet = run(&cfg);
        assert!(
            (quiet.flows_started as f64) < flat.flows_started as f64 * 0.75,
            "flat {} quiet {}",
            flat.flows_started,
            quiet.flows_started
        );
    }

    #[test]
    fn session_limit_blocks_flows() {
        let mut cfg = small(WorkloadMix::p2p_heavy(), 8);
        cfg.nat.max_sessions_per_host = Some(4);
        let s = run(&cfg);
        assert!(s.flows_blocked > 0, "limit must bite");
        assert!(s.stats.drop_session_limit > 0);
        assert_eq!(
            s.report.drops_session_limit, s.stats.drop_session_limit,
            "report mirrors engine counters"
        );
    }

    #[test]
    fn tiny_port_range_exhausts() {
        let mut cfg = small(WorkloadMix::p2p_heavy(), 8);
        cfg.shards = 1;
        cfg.external_ips_per_shard = 1;
        cfg.nat.port_range = (1024, 1024 + 255);
        let s = run(&cfg);
        assert!(
            s.stats.drop_port_exhausted > 0,
            "256 ports cannot hold p2p load"
        );
        assert!(s.report.worst_ip_utilization > 0.95);
    }

    #[test]
    fn telemetry_off_by_default_and_summary_zero() {
        let cfg = small(WorkloadMix::residential_evening(), 7);
        assert_eq!(cfg.telemetry, nat_engine::telemetry::TelemetryMode::Off);
        let (s, logs) = run_with_logs(&cfg);
        assert!(logs.is_empty());
        assert_eq!(s.telemetry, TelemetrySummary::default());
    }

    #[test]
    fn per_connection_logs_match_engine_counters() {
        let mut cfg = small(WorkloadMix::residential_evening(), 7);
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        let (s, logs) = run_with_logs(&cfg);
        assert_eq!(logs.len(), cfg.shards as usize, "one log per shard");
        assert_eq!(
            s.telemetry.records,
            s.stats.mappings_created + s.stats.mappings_expired,
            "every create/expire is one record"
        );
        assert!(s.telemetry.bytes > 0);
        assert!(s.telemetry.bytes_per_subscriber_day > 0.0);
        // The summary is exactly the logs' aggregate.
        assert_eq!(
            s.telemetry.bytes,
            logs.iter().map(|l| l.len_bytes()).sum::<u64>()
        );
        // The telemetry-on run produces the same traffic outcome as
        // the telemetry-off run (observation only).
        let mut off = cfg.clone();
        off.telemetry = nat_engine::telemetry::TelemetryMode::Off;
        let off_run = run(&off);
        assert_eq!(off_run.stats, s.stats);
        assert_eq!(off_run.series, s.series);
    }

    #[test]
    fn block_logs_undercut_connection_logs_on_the_same_workload() {
        let mut cfg = small(WorkloadMix::p2p_heavy(), 5);
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        let per_conn = run(&cfg).telemetry;
        cfg.nat.port_alloc = nat_engine::PortAllocation::PortBlock { block_size: 512 };
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerBlock;
        let per_block = run(&cfg).telemetry;
        assert!(per_block.records > 0, "block churn must be logged");
        assert!(
            per_block.bytes * 10 < per_conn.bytes,
            "block log ({} B) must be at least 10x smaller than \
             per-connection ({} B)",
            per_block.bytes,
            per_conn.bytes
        );
    }

    #[test]
    fn metrics_summary_tracks_windows_and_instruments() {
        let mut cfg = small(WorkloadMix::residential_evening(), 7);
        cfg.metrics_window_secs = Some(60);
        let s = run(&cfg);
        let m = s.metrics.as_ref().expect("registries installed");
        assert_eq!(m.window_secs, 60);
        assert!(!m.windows.is_empty());
        // Window deltas telescope back to the run totals.
        assert_eq!(
            m.windows.iter().map(|w| w.flows_started).sum::<u64>(),
            s.flows_started
        );
        assert_eq!(m.last.scalar("cgn_flows_started_total"), s.flows_started);
        assert_eq!(
            m.last.scalar("cgn_mappings_created_total"),
            s.stats.mappings_created
        );
        assert_eq!(m.last.scalar("cgn_sweeps_total"), s.stats.sweeps);
        assert!(m.windows.iter().any(|w| w.mappings_live > 0));
        assert!(m.windows.iter().any(|w| w.flows_per_sec > 0.0));
        assert!(
            m.worst_window_flow_imbalance >= 1.0,
            "two shards under load skew at least trivially"
        );
        assert!(
            s.shard_load.worst_window_flow_imbalance >= 1.0,
            "per-window skew reaches the shard-load summary"
        );
        // Observation only: the metrics-off run is otherwise identical.
        let mut off = cfg.clone();
        off.metrics_window_secs = None;
        let off_run = run(&off);
        assert!(off_run.metrics.is_none());
        assert_eq!(off_run.stats, s.stats);
        assert_eq!(off_run.series, s.series);
        assert_eq!(off_run.flows_started, s.flows_started);
    }

    #[test]
    fn metrics_bit_identical_across_thread_counts() {
        let mut cfg = small(WorkloadMix::residential_evening(), 21);
        cfg.shards = 4;
        cfg.metrics_window_secs = Some(30);
        cfg.threads = 1;
        let seq = run(&cfg);
        let seq_m = seq.metrics.as_ref().expect("installed");
        for threads in [2, 4] {
            cfg.threads = threads;
            let par = run(&cfg);
            assert_eq!(seq, par, "threads={threads} diverged");
            assert_eq!(
                seq_m.last.digest(),
                par.metrics.as_ref().expect("installed").last.digest(),
                "snapshot digest at threads={threads}"
            );
        }
    }

    #[test]
    fn metrics_capture_sink_volume_when_telemetry_on() {
        let mut cfg = small(WorkloadMix::residential_evening(), 7);
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        cfg.metrics_window_secs = Some(60);
        let s = run(&cfg);
        let m = s.metrics.expect("installed");
        assert_eq!(m.last.scalar("cgn_sink_records_total"), s.telemetry.records);
        assert_eq!(m.last.scalar("cgn_sink_bytes_total"), s.telemetry.bytes);
        assert!(s.telemetry.records > 0);
    }

    #[test]
    fn sampled_telemetry_decimates_per_connection_volume() {
        let mut cfg = small(WorkloadMix::residential_evening(), 7);
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        let full = run(&cfg).telemetry;
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::Sampled { one_in: 10 };
        let (s, logs) = run_with_logs(&cfg);
        assert_eq!(logs.len(), cfg.shards as usize, "one log per shard");
        assert!(s.telemetry.records > 0, "sampling must keep something");
        let ratio = full.records as f64 / s.telemetry.records as f64;
        assert!(
            ratio > 5.0 && ratio < 20.0,
            "1-in-10 flow sampling should cut records ~10x, got {ratio:.1}"
        );
        assert!(s.telemetry.bytes < full.bytes / 5);
        // Observation only, like every other telemetry mode.
        let mut off = cfg.clone();
        off.telemetry = nat_engine::telemetry::TelemetryMode::Off;
        let off_run = run(&off);
        assert_eq!(off_run.stats, s.stats);
        assert_eq!(off_run.series, s.series);
    }

    /// The satellite determinism property: traceability logs are part
    /// of the run's deterministic output — bit-identical for every
    /// worker-thread count.
    #[test]
    fn logs_bit_identical_across_thread_counts() {
        for mode in [
            nat_engine::telemetry::TelemetryMode::PerConnection,
            nat_engine::telemetry::TelemetryMode::PerBlock,
            nat_engine::telemetry::TelemetryMode::Sampled { one_in: 8 },
        ] {
            let mut cfg = small(WorkloadMix::residential_evening(), 31);
            cfg.shards = 4;
            cfg.telemetry = mode;
            if mode == nat_engine::telemetry::TelemetryMode::PerBlock {
                cfg.nat.port_alloc = nat_engine::PortAllocation::PortBlock { block_size: 256 };
            }
            cfg.threads = 1;
            let (seq_summary, seq_logs) = run_with_logs(&cfg);
            for threads in [2, 5] {
                cfg.threads = threads;
                let (par_summary, par_logs) = run_with_logs(&cfg);
                assert_eq!(seq_summary, par_summary, "{mode:?} threads={threads}");
                assert_eq!(
                    seq_logs.len(),
                    par_logs.len(),
                    "{mode:?}: one log per shard"
                );
                for (shard, (a, b)) in seq_logs.iter().zip(&par_logs).enumerate() {
                    assert_eq!(
                        a.bytes(),
                        b.bytes(),
                        "{mode:?} shard {shard} log diverged at threads={threads}"
                    );
                }
            }
        }
    }

    /// Tracing is observation only: with flow sampling and phase
    /// profiling on, the summary, digest and telemetry log bytes are
    /// bit-identical to the tracing-off run — and the flight-recorder
    /// dump itself (sim-time-stamped, `(shard, seq)`-ordered) is
    /// bit-identical for every worker-thread count and burst size.
    #[test]
    fn tracing_is_observation_only_and_thread_invariant() {
        let mut cfg = small(WorkloadMix::residential_evening(), 19);
        cfg.shards = 3;
        cfg.telemetry = nat_engine::telemetry::TelemetryMode::PerConnection;
        let (off, off_logs) = run_with_logs(&cfg);

        cfg.trace = TraceConfig::sampled(8);
        cfg.threads = 1;
        cfg.burst = 1;
        let mut session = DriverSession::new(&cfg);
        while session.step().is_some() {}
        let base_dump = session.trace_dump().expect("tracer installed");
        assert!(base_dump.sampled_flows > 0, "1-in-8 must catch flows");
        assert!(!base_dump.events.is_empty());
        assert_eq!(base_dump.sample_one_in, 8);
        let profile = session.phase_profile().expect("profiling on");
        assert!(
            !profile.is_empty(),
            "phase laps recorded alongside flow sampling"
        );
        assert!(profile.histogram(Phase::Generate).count > 0);
        assert!(profile.histogram(Phase::Translate).count > 0);
        assert!(profile.histogram(Phase::Commit).count > 0);
        assert!(profile.histogram(Phase::Sweep).count > 0);
        assert!(profile.histogram(Phase::Sample).count > 0);
        let (traced, traced_logs) = session.finish();
        assert_eq!(off, traced, "tracing must not perturb the run");
        assert_eq!(off.digest(), traced.digest());
        for (a, b) in off_logs.iter().zip(&traced_logs) {
            assert_eq!(a.bytes(), b.bytes(), "telemetry log bytes unchanged");
        }

        for (threads, burst) in [(2, 7), (4, 64), (3, 0)] {
            cfg.threads = threads;
            cfg.burst = burst;
            let mut session = DriverSession::new(&cfg);
            while session.step().is_some() {}
            let dump = session.trace_dump().expect("tracer installed");
            assert_eq!(
                base_dump.events, dump.events,
                "trace events diverged at threads={threads} burst={burst}"
            );
            assert_eq!(base_dump.sampled_flows, dump.sampled_flows);
            assert_eq!(base_dump.evicted, dump.evicted);
            assert_eq!(
                cgn_trace::chrome_trace_json(&base_dump),
                cgn_trace::chrome_trace_json(&dump),
                "chrome dump bytes diverged at threads={threads} burst={burst}"
            );
        }
    }

    /// The published exposition overlay: phase histograms render into
    /// a snapshot clone with p50/p95/p99 companions, while the
    /// deterministic windowed snapshots never see them.
    #[test]
    fn phase_profile_renders_into_exposition_only() {
        let mut cfg = small(WorkloadMix::residential_evening(), 11);
        cfg.metrics_window_secs = Some(30);
        cfg.trace = TraceConfig::sampled(4);
        let mut session = DriverSession::new(&cfg);
        while session.step().is_some() {}
        let snap = session.latest_snapshot().expect("metrics on").clone();
        assert!(
            !snap
                .samples
                .iter()
                .any(|s| s.name.starts_with("cgn_phase_nanos")),
            "windowed snapshots stay wall-clock-free"
        );
        let mut published = snap.clone();
        session
            .phase_profile()
            .expect("profiling on")
            .render_into(&mut published);
        assert!(
            published
                .samples
                .iter()
                .any(|s| s.name.starts_with("cgn_phase_nanos{")),
            "published exposition carries the phase histograms"
        );
    }

    #[test]
    fn shard_pool_and_subscriber_plan_match_the_engine() {
        let mut cfg = small(WorkloadMix::iot_fleet(), 3);
        cfg.shards = 3;
        cfg.external_ips_per_shard = 2;
        // Reconstruct the pools the way run() builds them and compare
        // against ShardedNat's round-robin ownership.
        let mut pool: Vec<Ipv4Addr> = Vec::new();
        for k in 0..cfg.external_ips_per_shard {
            for s in 0..cfg.shards {
                pool.push(super::pool_ip(s, k));
            }
        }
        let sharded = ShardedNat::new(cfg.nat.clone(), pool, cfg.shards, cfg.seed);
        for shard in 0..cfg.shards {
            assert_eq!(
                shard_pool(&cfg, shard),
                sharded.shards()[shard as usize].external_ips(),
                "shard {shard} pool reconstruction"
            );
        }
        for idx in [0u32, 1, 7, 250] {
            assert_eq!(
                shard_of_subscriber(&cfg, idx) as usize,
                sharded.shard_of(subscriber_ip(idx)),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The satellite property: for random seeds, mixes and shard
        /// counts, the sharded engine's merged `NatStats` and per-host
        /// port counts under worker threads are identical to the
        /// sequential engine's.
        #[test]
        fn prop_parallel_run_equals_sequential(
            seed in any::<u64>(),
            mix_idx in 0usize..8,
            shards in 1u16..=4,
            threads in 2usize..=5,
            subscribers in 60u32..240,
        ) {
            let mixes = WorkloadMix::all();
            let mix = mixes[mix_idx % mixes.len()].clone();
            let mut cfg = DriverConfig {
                subscribers,
                shards,
                external_ips_per_shard: 2,
                duration_secs: 120,
                sample_secs: 40,
                sweep_secs: 25,
                ..DriverConfig::new(mix, seed)
            };
            cfg.threads = 1;
            let seq = run(&cfg);
            cfg.threads = threads;
            let par = run(&cfg);
            prop_assert_eq!(&seq.stats, &par.stats);
            prop_assert_eq!(
                &seq.peak_ports_per_subscriber,
                &par.peak_ports_per_subscriber
            );
            prop_assert_eq!(seq, par);
        }

        /// The tracing satellite property: the deterministic 1-in-N
        /// mix64 flow sampler picks the same flows — and the flight
        /// recorder logs the same `(shard, seq)`-ordered events — for
        /// random seeds, mixes, shard counts, sampling rates and any
        /// worker-thread count.
        #[test]
        fn prop_trace_sampling_is_thread_invariant(
            seed in any::<u64>(),
            mix_idx in 0usize..8,
            shards in 1u16..=3,
            threads in 2usize..=5,
            one_in_idx in 0usize..4,
        ) {
            let one_in = [1u32, 4, 16, 64][one_in_idx];
            let mixes = WorkloadMix::all();
            let mix = mixes[mix_idx % mixes.len()].clone();
            let mut cfg = DriverConfig {
                subscribers: 90,
                shards,
                external_ips_per_shard: 2,
                duration_secs: 90,
                sample_secs: 30,
                sweep_secs: 25,
                ..DriverConfig::new(mix, seed)
            };
            cfg.trace = TraceConfig::sampled(one_in);
            cfg.threads = 1;
            let mut seq = DriverSession::new(&cfg);
            while seq.step().is_some() {}
            let base = seq.trace_dump().expect("tracer installed");
            cfg.threads = threads;
            let mut par = DriverSession::new(&cfg);
            while par.step().is_some() {}
            let dump = par.trace_dump().expect("tracer installed");
            prop_assert_eq!(base.sampled_flows, dump.sampled_flows);
            prop_assert_eq!(base.evicted, dump.evicted);
            prop_assert_eq!(base.events, dump.events);
        }
    }
}
