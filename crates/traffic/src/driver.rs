//! The flow scheduler: a time-ordered event engine that pushes
//! generated flows through one or more [`nat_engine::Nat`] instances.
//!
//! The engine is a binary heap of events — subscriber flow arrivals,
//! per-flow keepalive packets, flow teardowns, periodic mapping sweeps
//! and demand samples — processed in `(time, sequence)` order, so a run
//! is fully deterministic given its seed. Every packet goes through
//! `Nat::process_outbound`, exercising the same mapping-creation,
//! refresh, timeout-sweep and drop paths the study's measurements
//! depend on, at millions-of-flows scale.

use crate::modulation::Modulation;
use crate::workload::{AppProfile, WorkloadMix};
use analysis::port_demand::{self, DemandSample, DemandSeries, PortDemandReport};
use nat_engine::{Nat, NatConfig, NatStats, NatVerdict};
use netcore::{Endpoint, Packet, SimTime, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Everything one dimensioning run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Subscriber population across all CGN instances.
    pub subscribers: u32,
    /// Independent CGN instances; subscribers are assigned round-robin.
    pub cgn_instances: u16,
    /// Public addresses in each instance's pool.
    pub external_ips_per_instance: u16,
    /// Behaviour of every instance.
    pub nat: NatConfig,
    /// Application mix of the population.
    pub mix: WorkloadMix,
    /// Diurnal / flash-crowd modulation.
    pub modulation: Modulation,
    /// Simulated run length.
    pub duration_secs: u64,
    /// Demand-sampling cadence.
    pub sample_secs: u64,
    /// Mapping-sweep cadence (exercises `Nat::sweep` at scale).
    pub sweep_secs: u64,
    pub seed: u64,
}

impl DriverConfig {
    /// A mid-size default: 8k subscribers behind one instance.
    pub fn new(mix: WorkloadMix, seed: u64) -> DriverConfig {
        DriverConfig {
            subscribers: 8_000,
            cgn_instances: 1,
            external_ips_per_instance: 8,
            nat: NatConfig::cgn_default(),
            mix,
            modulation: Modulation::none(),
            duration_secs: 1_200,
            sample_secs: 60,
            sweep_secs: 30,
            seed,
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub mix_name: String,
    pub subscribers: u32,
    pub cgn_instances: u16,
    pub duration_secs: u64,
    /// New-flow attempts handed to the NAT.
    pub flows_started: u64,
    /// Attempts dropped at the first packet (port/chunk/session limits).
    pub flows_blocked: u64,
    /// Flows that reached their scheduled end.
    pub flows_completed: u64,
    /// Outbound packets processed (arrivals + keepalives + teardowns).
    pub packets_sent: u64,
    /// NAT counters summed across instances.
    pub stats: NatStats,
    /// Demand time series (aggregated across instances).
    pub series: DemandSeries,
    /// Ports-per-subscriber distribution at the peak sample (sorted).
    pub peak_ports_per_subscriber: Vec<u32>,
    /// The dimensioning report derived from the series.
    pub report: PortDemandReport,
}

impl RunSummary {
    /// Order-independent fingerprint for determinism checks.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the debug rendering: every field is plain data
        // with deterministic Debug output.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Next flow arrival for a subscriber.
    Arrival {
        sub: u32,
    },
    /// Keepalive packet for a live flow.
    Packet {
        flow: u64,
    },
    /// Scheduled flow teardown.
    End {
        flow: u64,
    },
    Sample,
    Sweep,
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    at_ms: u64,
    seq: u64,
    kind: Kind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ms, self.seq) == (other.at_ms, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ms, self.seq).cmp(&(other.at_ms, other.seq))
    }
}

struct FlowState {
    instance: u16,
    src: Endpoint,
    dst: Endpoint,
    udp: bool,
    end_ms: u64,
    refresh_ms: u64,
}

/// Shared address plan: subscriber internal IPs in `100.64/10`
/// (RFC 6598), pool IPs in `198.18/15` (benchmark range).
fn subscriber_ip(idx: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 64, 0, 0)) + idx)
}

fn pool_ip(instance: u16, k: u16) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(Ipv4Addr::new(198, 18, 0, 0)) + (instance as u32) * 256 + k as u32)
}

/// Per-class destination universes live in distinct public /8-ish
/// bases so flows are visibly attributable in traces.
fn dest_ip(profile: AppProfile, idx: u32) -> Ipv4Addr {
    let base = match profile {
        AppProfile::Web => Ipv4Addr::new(23, 0, 0, 0),
        AppProfile::Streaming => Ipv4Addr::new(151, 101, 0, 0),
        AppProfile::P2p => Ipv4Addr::new(85, 0, 0, 0),
        AppProfile::Gaming => Ipv4Addr::new(162, 254, 0, 0),
        AppProfile::Iot => Ipv4Addr::new(52, 32, 0, 0),
    };
    Ipv4Addr::from(u32::from(base) + idx)
}

/// Mix a subscriber's per-pool slot into a universe index so each
/// subscriber keeps a stable `fanout`-sized destination pool.
fn pool_slot_to_universe(sub: u32, slot: u16, universe: u32) -> u32 {
    let mut z = ((sub as u64) << 16 | slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 32;
    (z as u32) % universe.max(1)
}

/// Run one workload against freshly-built CGN instances.
pub fn run(config: &DriverConfig) -> RunSummary {
    assert!(config.subscribers > 0, "need at least one subscriber");
    assert!(config.cgn_instances > 0, "need at least one CGN instance");
    assert!(
        config.external_ips_per_instance <= 256,
        "pool addressing assigns each instance a /24-sized stride: \
         external_ips_per_instance must be <= 256"
    );
    assert!(config.duration_secs > 0 && config.sample_secs > 0 && config.sweep_secs > 0);

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1_3E_25_10);
    let mut nats: Vec<Nat> = (0..config.cgn_instances)
        .map(|i| {
            let pool: Vec<Ipv4Addr> = (0..config.external_ips_per_instance.max(1))
                .map(|k| pool_ip(i, k))
                .collect();
            Nat::new(config.nat.clone(), pool, config.seed.wrapping_add(i as u64))
        })
        .collect();

    // Subscriber state: profile assignment plus a rolling source port.
    let profiles: Vec<AppProfile> = (0..config.subscribers)
        .map(|i| config.mix.assign(i))
        .collect();
    let mut next_src_port: Vec<u16> = vec![0; config.subscribers as usize];

    let horizon_ms = config.duration_secs * 1000;
    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<Reverse<Ev>>, seq: &mut u64, at_ms: u64, kind: Kind| {
        *seq += 1;
        heap.push(Reverse(Ev {
            at_ms,
            seq: *seq,
            kind,
        }));
    };

    // Prime the engine: staggered first arrivals, plus the periodic
    // sample/sweep clocks.
    for sub in 0..config.subscribers {
        let offset = rng.gen_range(0..1000u64);
        push(&mut heap, &mut seq, offset, Kind::Arrival { sub });
    }
    push(&mut heap, &mut seq, config.sample_secs * 1000, Kind::Sample);
    push(&mut heap, &mut seq, config.sweep_secs * 1000, Kind::Sweep);

    let mut flows: HashMap<u64, FlowState> = HashMap::new();
    let mut next_flow_id: u64 = 0;

    let mut flows_started = 0u64;
    let mut flows_blocked = 0u64;
    let mut flows_completed = 0u64;
    let mut packets_sent = 0u64;

    let mut series = DemandSeries::default();
    let mut peak_live = 0u64;
    let mut peak_dist: Vec<u32> = Vec::new();

    while let Some(Reverse(ev)) = heap.pop() {
        if ev.at_ms > horizon_ms {
            break;
        }
        let now = SimTime::from_millis(ev.at_ms);
        let t_secs = ev.at_ms / 1000;
        match ev.kind {
            Kind::Arrival { sub } => {
                let profile = profiles[sub as usize];
                let params = profile.params();

                // Schedule the next arrival first (non-homogeneous
                // Poisson, rate modulated at the current instant).
                let rate_per_sec = params.flows_per_min / 60.0
                    * config.modulation.factor(t_secs, params.flash_sensitive);
                if rate_per_sec > 1e-12 {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    let gap_ms = (-u.ln() / rate_per_sec * 1000.0).clamp(1.0, 1e12) as u64;
                    let at = ev.at_ms + gap_ms;
                    if at <= horizon_ms {
                        push(&mut heap, &mut seq, at, Kind::Arrival { sub });
                    }
                }

                // Build the flow.
                let sp = &mut next_src_port[sub as usize];
                let src_port = 20_000 + (*sp % 45_000);
                *sp = sp.wrapping_add(1) % 45_000;
                let src = Endpoint::new(subscriber_ip(sub), src_port);
                let slot = rng.gen_range(0..params.fanout);
                let universe_idx = pool_slot_to_universe(sub, slot, params.dest_universe);
                // Popularity skew: collapse high slots onto the popular
                // end of the universe now and then.
                let universe_idx = if rng.gen_bool(0.3) {
                    params.sample_dest(&mut rng)
                } else {
                    universe_idx
                };
                let dst = Endpoint::new(
                    dest_ip(profile, universe_idx),
                    params.sample_dst_port(&mut rng),
                );
                let udp = rng.gen_bool(params.udp_share);
                let duration_ms = (params.sample_duration_secs(&mut rng) * 1000.0) as u64;
                let end_ms = ev.at_ms + duration_ms.max(1000);
                let instance = (sub % config.cgn_instances as u32) as u16;

                let first = if udp {
                    Packet::udp(src, dst, vec![])
                } else {
                    Packet::tcp(src, dst, TcpFlags::SYN, vec![])
                };
                packets_sent += 1;
                flows_started += 1;
                match nats[instance as usize].process_outbound(first, now) {
                    NatVerdict::Forward(_) | NatVerdict::Hairpin(_) => {
                        let refresh_ms = params.refresh_secs * 1000;
                        let id = next_flow_id;
                        next_flow_id += 1;
                        flows.insert(
                            id,
                            FlowState {
                                instance,
                                src,
                                dst,
                                udp,
                                end_ms,
                                refresh_ms,
                            },
                        );
                        let next = ev.at_ms + refresh_ms;
                        if next < end_ms.min(horizon_ms) {
                            push(&mut heap, &mut seq, next, Kind::Packet { flow: id });
                        } else if end_ms <= horizon_ms {
                            push(&mut heap, &mut seq, end_ms, Kind::End { flow: id });
                        }
                    }
                    NatVerdict::Drop(_) => {
                        // Port/chunk exhaustion or the per-subscriber
                        // session limit; the engine's stats record which.
                        flows_blocked += 1;
                    }
                }
            }
            Kind::Packet { flow } => {
                let Some(f) = flows.get(&flow) else { continue };
                let pkt = if f.udp {
                    Packet::udp(f.src, f.dst, vec![])
                } else {
                    Packet::tcp(f.src, f.dst, TcpFlags::ACK, vec![])
                };
                packets_sent += 1;
                let verdict = nats[f.instance as usize].process_outbound(pkt, now);
                if matches!(verdict, NatVerdict::Drop(_)) {
                    // Keepalive failed (e.g. port space gone after an
                    // expiry); the flow dies here.
                    flows.remove(&flow);
                    continue;
                }
                let (end_ms, refresh_ms) = (f.end_ms, f.refresh_ms);
                let next = ev.at_ms + refresh_ms;
                if next < end_ms.min(horizon_ms) {
                    push(&mut heap, &mut seq, next, Kind::Packet { flow });
                } else if end_ms <= horizon_ms {
                    push(&mut heap, &mut seq, end_ms, Kind::End { flow });
                }
            }
            Kind::End { flow } => {
                let Some(f) = flows.remove(&flow) else {
                    continue;
                };
                if !f.udp {
                    // Polite TCP teardown moves the mapping onto the
                    // short transitory clock (RFC 5382 behaviour the
                    // engine models).
                    let fin = Packet::tcp(f.src, f.dst, TcpFlags::FIN, vec![]);
                    packets_sent += 1;
                    let _ = nats[f.instance as usize].process_outbound(fin, now);
                }
                flows_completed += 1;
            }
            Kind::Sweep => {
                for nat in &mut nats {
                    nat.sweep(now);
                }
                let at = ev.at_ms + config.sweep_secs * 1000;
                if at <= horizon_ms {
                    push(&mut heap, &mut seq, at, Kind::Sweep);
                }
            }
            Kind::Sample => {
                let sample = collect_sample(
                    &nats,
                    now,
                    config.subscribers,
                    &mut peak_live,
                    &mut peak_dist,
                );
                series.push(sample);
                let at = ev.at_ms + config.sample_secs * 1000;
                if at <= horizon_ms {
                    push(&mut heap, &mut seq, at, Kind::Sample);
                }
            }
        }
    }

    // Final bookkeeping at the horizon: sweep and take a closing sample.
    let end = SimTime::from_millis(horizon_ms);
    for nat in &mut nats {
        nat.sweep(end);
    }
    let closing = collect_sample(
        &nats,
        end,
        config.subscribers,
        &mut peak_live,
        &mut peak_dist,
    );
    series.push(closing);

    let mut stats = NatStats::default();
    for nat in &nats {
        stats.merge(nat.stats());
    }

    let external_ips = config.cgn_instances as u64 * config.external_ips_per_instance.max(1) as u64;
    let usable_ports_per_ip = (config.nat.port_range.1 - config.nat.port_range.0) as u32 + 1;
    let report = port_demand::build_report(
        &series,
        &peak_dist,
        config.subscribers as u64,
        external_ips,
        usable_ports_per_ip,
    );

    RunSummary {
        mix_name: config.mix.name.clone(),
        subscribers: config.subscribers,
        cgn_instances: config.cgn_instances,
        duration_secs: config.duration_secs,
        flows_started,
        flows_blocked,
        flows_completed,
        packets_sent,
        stats,
        series,
        peak_ports_per_subscriber: peak_dist,
        report,
    }
}

fn collect_sample(
    nats: &[Nat],
    now: SimTime,
    subscribers: u32,
    peak_live: &mut u64,
    peak_dist: &mut Vec<u32>,
) -> DemandSample {
    let mut ports: Vec<u32> = Vec::new();
    let mut live = 0u64;
    let mut worst_util = 0.0f64;
    let mut drops_ports = 0u64;
    let mut drops_sessions = 0u64;
    for nat in nats {
        for (_, n) in nat.ports_by_host(now) {
            ports.push(n);
            live += n as u64;
        }
        for occ in nat.port_occupancy() {
            worst_util = worst_util.max(occ.utilization());
        }
        drops_ports += nat.stats().drop_port_exhausted;
        drops_sessions += nat.stats().drop_session_limit;
    }
    ports.sort_unstable();
    if live > *peak_live {
        *peak_live = live;
        *peak_dist = ports.clone();
    }
    let active = ports.len() as u64;
    let (p50, p95, p99, max) = port_demand::ports_percentiles(ports, subscribers as u64);
    DemandSample {
        t_secs: now.as_secs(),
        mappings: live,
        active_subscribers: active,
        ports_p50: p50,
        ports_p95: p95,
        ports_p99: p99,
        ports_max: max,
        worst_ip_utilization: worst_util,
        drops_port_exhausted: drops_ports,
        drops_session_limit: drops_sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::{DiurnalCurve, FlashCrowd};

    fn small(mix: WorkloadMix, seed: u64) -> DriverConfig {
        DriverConfig {
            subscribers: 300,
            cgn_instances: 2,
            external_ips_per_instance: 2,
            duration_secs: 240,
            sample_secs: 30,
            sweep_secs: 20,
            ..DriverConfig::new(mix, seed)
        }
    }

    #[test]
    fn run_produces_flows_and_samples() {
        let s = run(&small(WorkloadMix::residential_evening(), 7));
        assert!(s.flows_started > 1_000, "started {}", s.flows_started);
        assert!(s.packets_sent > s.flows_started);
        assert!(!s.series.is_empty());
        assert!(s.stats.mappings_created > 0);
        assert!(s.stats.peak_mappings > 0);
        assert!(s.report.peak_mappings > 0);
        assert_eq!(s.report.subscribers, 300);
    }

    #[test]
    fn same_seed_same_summary() {
        let a = run(&small(WorkloadMix::p2p_heavy(), 42));
        let b = run(&small(WorkloadMix::p2p_heavy(), 42));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&small(WorkloadMix::p2p_heavy(), 1));
        let b = run(&small(WorkloadMix::p2p_heavy(), 2));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn p2p_demands_more_ports_than_iot() {
        let p2p = run(&small(WorkloadMix::p2p_heavy(), 9));
        let iot = run(&small(WorkloadMix::iot_fleet(), 9));
        assert!(
            p2p.report.peak_mappings > iot.report.peak_mappings * 3,
            "p2p {} vs iot {}",
            p2p.report.peak_mappings,
            iot.report.peak_mappings
        );
    }

    #[test]
    fn flash_crowd_raises_peak() {
        let mix = WorkloadMix::gaming_event;
        let calm = run(&small(mix(), 5));
        let mut cfg = small(mix(), 5);
        cfg.modulation.flash = Some(FlashCrowd::new(60, 180, 4.0));
        let stormy = run(&cfg);
        assert!(
            stormy.report.peak_mappings as f64 > calm.report.peak_mappings as f64 * 1.5,
            "calm {} stormy {}",
            calm.report.peak_mappings,
            stormy.report.peak_mappings
        );
    }

    #[test]
    fn diurnal_trough_lowers_load() {
        let mix = WorkloadMix::residential_evening;
        // Flat vs. a curve whose trough covers the whole short run.
        let flat = run(&small(mix(), 3));
        let mut cfg = small(mix(), 3);
        cfg.modulation.diurnal = Some(DiurnalCurve {
            day_secs: 86_400,
            amplitude: 0.45,
            // Run [0, 240 s] sits right at the trough.
            peak_phase: 0.5,
        });
        let quiet = run(&cfg);
        assert!(
            (quiet.flows_started as f64) < flat.flows_started as f64 * 0.75,
            "flat {} quiet {}",
            flat.flows_started,
            quiet.flows_started
        );
    }

    #[test]
    fn session_limit_blocks_flows() {
        let mut cfg = small(WorkloadMix::p2p_heavy(), 8);
        cfg.nat.max_sessions_per_host = Some(4);
        let s = run(&cfg);
        assert!(s.flows_blocked > 0, "limit must bite");
        assert!(s.stats.drop_session_limit > 0);
        assert_eq!(
            s.report.drops_session_limit, s.stats.drop_session_limit,
            "report mirrors engine counters"
        );
    }

    #[test]
    fn tiny_port_range_exhausts() {
        let mut cfg = small(WorkloadMix::p2p_heavy(), 8);
        cfg.external_ips_per_instance = 1;
        cfg.nat.port_range = (1024, 1024 + 255);
        let s = run(&cfg);
        assert!(
            s.stats.drop_port_exhausted > 0,
            "256 ports cannot hold p2p load"
        );
        assert!(s.report.worst_ip_utilization > 0.95);
    }
}
