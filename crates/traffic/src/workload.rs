//! Per-subscriber application workload models.
//!
//! Each [`AppProfile`] is a small parametric model of one application
//! class: a flow-arrival rate, a destination fan-out, a protocol split,
//! a flow-duration distribution and a keepalive cadence. A
//! [`WorkloadMix`] assigns profiles to a subscriber population by
//! weight. The parameters are stylized (they are not fitted to a packet
//! trace) but are chosen so each class stresses a different CGN
//! resource, mirroring what the paper measures from the outside:
//!
//! * **Web** — many short flows to a broad set of servers: mapping-table
//!   churn, the regime where short UDP/TCP-transitory timeouts (Fig. 12)
//!   decide table size;
//! * **Streaming** — few long-lived TCP flows: established-TCP state
//!   that survives the 2h-plus RFC 5382 timeout;
//! * **P2P / BitTorrent** — high fan-out to hundreds of peers: the port
//!   consumer that per-subscriber chunks (Fig. 8c, Table 6) and session
//!   limits (§2: down to 512 per customer) exist to contain;
//! * **Gaming / VoIP** — sparse long-lived UDP with aggressive
//!   keepalives: the flows that 10–200 s UDP timeouts (Fig. 12) would
//!   otherwise kill;
//! * **IoT / idle** — rare telemetry beacons: near-zero demand, the
//!   population that makes high subscriber-to-address multiplexing
//!   ratios (§2's 20:1 reports) feasible.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Application classes modelled by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppProfile {
    Web,
    Streaming,
    P2p,
    Gaming,
    Iot,
}

impl AppProfile {
    pub const ALL: [AppProfile; 5] = [
        AppProfile::Web,
        AppProfile::Streaming,
        AppProfile::P2p,
        AppProfile::Gaming,
        AppProfile::Iot,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AppProfile::Web => "web",
            AppProfile::Streaming => "streaming",
            AppProfile::P2p => "p2p",
            AppProfile::Gaming => "gaming",
            AppProfile::Iot => "iot",
        }
    }

    /// Model parameters for this class.
    pub fn params(self) -> AppParams {
        match self {
            AppProfile::Web => AppParams {
                flows_per_min: 6.0,
                udp_share: 0.15,
                fanout: 24,
                dest_universe: 4096,
                mean_flow_secs: 12.0,
                refresh_secs: 5,
                dst_ports: &[80, 443, 443, 443],
                flash_sensitive: true,
            },
            AppProfile::Streaming => AppParams {
                flows_per_min: 1.2,
                udp_share: 0.30,
                fanout: 6,
                dest_universe: 256,
                mean_flow_secs: 180.0,
                refresh_secs: 20,
                dst_ports: &[443],
                flash_sensitive: true,
            },
            AppProfile::P2p => AppParams {
                // A live torrent client holds on the order of a hundred
                // concurrent peer connections (rate x mean duration here
                // sustains ~50): the port consumer chunk allocation is
                // sized against.
                flows_per_min: 24.0,
                udp_share: 0.80,
                fanout: 200,
                dest_universe: 65536,
                mean_flow_secs: 120.0,
                refresh_secs: 20,
                dst_ports: &[6881, 6882, 6889, 51413],
                flash_sensitive: false,
            },
            AppProfile::Gaming => AppParams {
                flows_per_min: 2.0,
                udp_share: 0.90,
                fanout: 8,
                dest_universe: 512,
                mean_flow_secs: 300.0,
                refresh_secs: 10,
                dst_ports: &[3478, 3479, 27015],
                flash_sensitive: true,
            },
            AppProfile::Iot => AppParams {
                flows_per_min: 0.3,
                udp_share: 0.70,
                fanout: 3,
                dest_universe: 64,
                mean_flow_secs: 8.0,
                refresh_secs: 4,
                dst_ports: &[8883, 5683],
                flash_sensitive: false,
            },
        }
    }
}

/// Parameters of one application class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Mean new flows per subscriber-minute at modulation factor 1.0.
    pub flows_per_min: f64,
    /// Probability a flow is UDP (the rest are TCP).
    pub udp_share: f64,
    /// Distinct destination hosts one subscriber talks to.
    pub fanout: u16,
    /// Size of the class's global server/peer universe that per-
    /// subscriber destination pools are drawn from.
    pub dest_universe: u32,
    /// Mean of the exponential flow-duration distribution.
    pub mean_flow_secs: f64,
    /// Keepalive cadence while a flow lives.
    pub refresh_secs: u64,
    /// Destination ports the class uses (drawn uniformly).
    pub dst_ports: &'static [u16],
    /// Whether a flash-crowd event multiplies this class's arrivals.
    pub flash_sensitive: bool,
}

impl AppParams {
    /// Draw a flow duration (exponential, floored at one second).
    pub fn sample_duration_secs(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        (-u.ln() * self.mean_flow_secs).max(1.0)
    }

    /// Draw a destination index into the class universe with a mild
    /// popularity skew (squaring a uniform biases toward low indices —
    /// popular servers/peers get most flows).
    pub fn sample_dest(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        ((u * u) * self.dest_universe as f64) as u32 % self.dest_universe.max(1)
    }

    pub fn sample_dst_port(&self, rng: &mut StdRng) -> u16 {
        self.dst_ports[rng.gen_range(0..self.dst_ports.len())]
    }
}

/// A weighted assignment of application classes to the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    pub name: String,
    /// `(profile, weight)` pairs; weights need not sum to one (they are
    /// normalized at assignment time).
    pub weights: Vec<(AppProfile, f64)>,
}

impl WorkloadMix {
    pub fn new(name: &str, weights: &[(AppProfile, f64)]) -> WorkloadMix {
        assert!(!weights.is_empty(), "a mix needs at least one profile");
        assert!(
            weights.iter().all(|(_, w)| *w >= 0.0) && weights.iter().any(|(_, w)| *w > 0.0),
            "mix weights must be non-negative and not all zero"
        );
        WorkloadMix {
            name: name.to_string(),
            weights: weights.to_vec(),
        }
    }

    /// Typical fixed-line residential evening traffic.
    pub fn residential_evening() -> WorkloadMix {
        WorkloadMix::new(
            "residential-evening",
            &[
                (AppProfile::Web, 0.45),
                (AppProfile::Streaming, 0.30),
                (AppProfile::P2p, 0.10),
                (AppProfile::Gaming, 0.10),
                (AppProfile::Iot, 0.05),
            ],
        )
    }

    /// Cellular daytime: web-dominated, no P2P (§6.2 finds cellular
    /// CGNs the most restrictive — this is the load they see).
    pub fn cellular_daytime() -> WorkloadMix {
        WorkloadMix::new(
            "cellular-daytime",
            &[
                (AppProfile::Web, 0.60),
                (AppProfile::Streaming, 0.20),
                (AppProfile::Gaming, 0.10),
                (AppProfile::Iot, 0.10),
            ],
        )
    }

    /// BitTorrent-heavy population: the port-demand worst case that
    /// chunk allocation (Fig. 8c) has to absorb.
    pub fn p2p_heavy() -> WorkloadMix {
        WorkloadMix::new(
            "p2p-heavy",
            &[
                (AppProfile::P2p, 0.50),
                (AppProfile::Web, 0.30),
                (AppProfile::Streaming, 0.15),
                (AppProfile::Iot, 0.05),
            ],
        )
    }

    /// Mostly-idle device fleet: maximal address multiplexing.
    pub fn iot_fleet() -> WorkloadMix {
        WorkloadMix::new(
            "iot-fleet",
            &[
                (AppProfile::Iot, 0.85),
                (AppProfile::Web, 0.10),
                (AppProfile::Gaming, 0.05),
            ],
        )
    }

    /// Launch-night gaming event: long-lived UDP plus a flash crowd.
    pub fn gaming_event() -> WorkloadMix {
        WorkloadMix::new(
            "gaming-event",
            &[
                (AppProfile::Gaming, 0.40),
                (AppProfile::Streaming, 0.30),
                (AppProfile::Web, 0.30),
            ],
        )
    }

    /// Every built-in mix, in a stable order.
    pub fn all() -> Vec<WorkloadMix> {
        vec![
            WorkloadMix::residential_evening(),
            WorkloadMix::cellular_daytime(),
            WorkloadMix::p2p_heavy(),
            WorkloadMix::iot_fleet(),
            WorkloadMix::gaming_event(),
        ]
    }

    /// Deterministically assign a profile to subscriber `idx` (weighted
    /// round-robin via a fixed hash of the index — independent of the
    /// driver RNG so the same population is generated for every mix
    /// seed).
    pub fn assign(&self, idx: u32) -> AppProfile {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        // SplitMix64 of the index gives a uniform in [0,1).
        let mut z = (idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut u = (z >> 11) as f64 / (1u64 << 53) as f64 * total;
        for (p, w) in &self.weights {
            if u < *w {
                return *p;
            }
            u -= w;
        }
        self.weights.last().expect("nonempty").0
    }

    /// Mean offered new-flow rate per subscriber-second at modulation
    /// 1.0, for sizing runs.
    pub fn mean_flow_rate_per_sec(&self) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        self.weights
            .iter()
            .map(|(p, w)| w / total * p.params().flows_per_min / 60.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_params() {
        for p in AppProfile::ALL {
            let a = p.params();
            assert!(a.flows_per_min > 0.0, "{}", p.name());
            assert!((0.0..=1.0).contains(&a.udp_share));
            assert!(a.fanout > 0 && a.dest_universe as u64 >= a.fanout as u64);
            assert!(a.mean_flow_secs >= 1.0);
            assert!(a.refresh_secs > 0);
            assert!(!a.dst_ports.is_empty());
        }
    }

    #[test]
    fn all_mixes_are_distinct_and_at_least_four() {
        let mixes = WorkloadMix::all();
        assert!(mixes.len() >= 4);
        let names: std::collections::HashSet<&str> =
            mixes.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), mixes.len());
    }

    #[test]
    fn assignment_is_deterministic_and_roughly_weighted() {
        let mix = WorkloadMix::residential_evening();
        let n = 20_000u32;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            assert_eq!(mix.assign(i), mix.assign(i), "assignment must be stable");
            *counts.entry(mix.assign(i)).or_insert(0u32) += 1;
        }
        let web_share = counts[&AppProfile::Web] as f64 / n as f64;
        assert!((web_share - 0.45).abs() < 0.03, "web share {web_share}");
        let iot_share = counts[&AppProfile::Iot] as f64 / n as f64;
        assert!((iot_share - 0.05).abs() < 0.02, "iot share {iot_share}");
    }

    #[test]
    fn duration_sampling_matches_mean() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let p = AppProfile::Web.params();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample_duration_secs(&mut rng)).sum();
        let mean = total / n as f64;
        // Exponential with floor at 1 s: mean a touch above 12.
        assert!((mean - p.mean_flow_secs).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn dest_sampling_is_skewed_toward_popular() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let p = AppProfile::P2p.params();
        let n = 10_000;
        let low = (0..n)
            .filter(|_| p.sample_dest(&mut rng) < p.dest_universe / 4)
            .count();
        // Squared-uniform puts half the mass in the first quarter.
        assert!(
            low as f64 / n as f64 > 0.40,
            "low-index share {}",
            low as f64 / n as f64
        );
    }

    #[test]
    fn mean_rate_reflects_weights() {
        let p2p = WorkloadMix::p2p_heavy().mean_flow_rate_per_sec();
        let iot = WorkloadMix::iot_fleet().mean_flow_rate_per_sec();
        assert!(p2p > iot * 5.0, "p2p {p2p} vs iot {iot}");
    }
}
