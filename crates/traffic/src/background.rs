//! Per-AS background load against an **externally owned** CGN engine.
//!
//! The dimensioning [`crate::driver`] builds its own [`ShardedNat`] and
//! address plan; the detection campaign needs the opposite: a
//! simulated world (`topology` → `simnet`) already owns one sharded
//! CGN engine per deployment, and the campaign must push a realistic
//! subscriber workload *through that instance* so the external
//! observer sees port allocation, pooling and churn under load while
//! internal probes run against the very same state.
//!
//! [`drive`] is that generator. It reuses the [`crate::workload`]
//! application models, gives every host its own RNG stream, and feeds
//! each epoch's packets through `ShardedNat::partition`-style batches
//! on up to `threads` worker threads
//! ([`ShardedNat::process_batches`]) — so a 100k-subscriber AS loads
//! its CGN at full multi-core speed while remaining **bit-identical
//! for every thread count** (the engine's batch guarantee; pinned by
//! this module's tests).
//!
//! A configurable share of hosts are *announcers* — BitTorrent-style
//! peers whose flows an external crawler can observe. For those, every
//! admitted flow yields a [`PeerObservation`]: the peer's identity and
//! announced internal address together with the translated external
//! endpoint the remote side saw. That stream is exactly the input of
//! the external (DHT/BitTorrent) detection perspective: distinct peers
//! per external address, per-peer port churn, and allocation-pattern
//! signatures (per-connection vs. port-block vs. deterministic).

use crate::workload::WorkloadMix;
use nat_engine::sharded::mix64;
use nat_engine::{NatVerdict, ShardedNat};
use netcore::{Endpoint, Packet, SimTime, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Configuration of one background-load run (one CGN instance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Application mix assigned across the host population.
    pub mix: WorkloadMix,
    /// Simulated seconds of load.
    pub duration_secs: u64,
    /// Epoch length: packets are generated and batched per epoch, and
    /// expired mappings are swept at every epoch boundary (the churn
    /// clock the external observer sees).
    pub epoch_secs: u64,
    /// Worker threads for batch processing (`<= 1` = sequential; the
    /// result never depends on it).
    pub threads: usize,
    /// Share of hosts whose flows the external observer can see.
    pub announce_share: f64,
    /// Observation cap per announcer (bounds memory at ISP scale).
    pub max_observations_per_host: usize,
    pub seed: u64,
}

impl BackgroundLoad {
    /// A light default suitable for tests: two minutes of mixed load.
    pub fn quick(seed: u64) -> BackgroundLoad {
        BackgroundLoad {
            mix: WorkloadMix::residential_evening(),
            duration_secs: 120,
            epoch_secs: 30,
            threads: 1,
            announce_share: 0.5,
            max_observations_per_host: 8,
            seed,
        }
    }
}

/// One flow of an announcer host as the external observer records it:
/// BitTorrent handshakes leak the peer's identity and internal
/// address while the packet arrives from the translated endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerObservation {
    /// Stable peer identity (index into the host list) — what a
    /// crawler derives from the BitTorrent peer id.
    pub peer: u32,
    /// The internal address the peer announces.
    pub internal: Ipv4Addr,
    /// The source endpoint the observer saw (post-translation).
    pub external: Endpoint,
    /// Observation time in milliseconds of virtual time.
    pub at_ms: u64,
}

/// Aggregate outcome of one background-load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    pub hosts: u32,
    /// New-flow packets offered to the engine.
    pub flows_offered: u64,
    /// Flows the engine admitted (mapping created or refreshed).
    pub flows_admitted: u64,
    /// Flows dropped at admission (port/chunk/session exhaustion).
    pub flows_blocked: u64,
    /// External observations collected from announcer hosts, in
    /// deterministic (epoch, shard, batch) order.
    pub observations: Vec<PeerObservation>,
}

/// Per-host generator state.
struct HostState {
    rng: StdRng,
    announcer: bool,
    next_src_port: u16,
    observations: usize,
    /// Fractional-flow carry so low-rate profiles still emit flows.
    carry: f64,
}

/// Synthetic destination for a flow (stable per host/slot, public-ish
/// space distinct from pools and subscriber ranges).
fn dest_endpoint(host_idx: u32, flow: u64, port: u16) -> Endpoint {
    let z = mix64(((host_idx as u64) << 20) ^ flow);
    Endpoint::new(
        Ipv4Addr::from(u32::from(Ipv4Addr::new(23, 0, 0, 0)) + (z as u32 & 0x00FF_FFFF)),
        port,
    )
}

/// Drive `cfg.duration_secs` of workload from `hosts` through `nat`,
/// starting at virtual time `start`. The caller owns the engine (and,
/// in the campaign, the surrounding simulated network); this function
/// only creates/refreshes mappings and sweeps expiry at epoch
/// boundaries — it never touches engine configuration.
///
/// Results (counters and observations) are bit-identical for every
/// `threads` value.
pub fn drive(
    nat: &mut ShardedNat,
    hosts: &[Ipv4Addr],
    start: SimTime,
    cfg: &BackgroundLoad,
) -> LoadSummary {
    assert!(cfg.epoch_secs > 0, "epoch must be positive");
    let shard_count = nat.shard_count();
    let mut states: Vec<HostState> = hosts
        .iter()
        .enumerate()
        .map(|(idx, _)| {
            let mut rng = StdRng::seed_from_u64(mix64(cfg.seed ^ mix64(idx as u64 + 1)));
            let announcer = rng.gen_bool(cfg.announce_share.clamp(0.0, 1.0));
            HostState {
                rng,
                announcer,
                next_src_port: 0,
                observations: 0,
                carry: 0.0,
            }
        })
        .collect();

    let mut flows_offered = 0u64;
    let mut flows_admitted = 0u64;
    let mut flows_blocked = 0u64;
    let mut observations = Vec::new();
    let start_ms = start.as_millis();

    let mut t = 0u64;
    let mut flow_counter = 0u64;
    while t < cfg.duration_secs {
        let epoch = cfg.epoch_secs.min(cfg.duration_secs - t);
        let now = SimTime::from_millis(start_ms + t * 1000);

        // Generate this epoch's new-flow packets, batched per shard
        // with the originating host recorded alongside.
        let mut batches: Vec<Vec<Packet>> = vec![Vec::new(); shard_count];
        let mut meta: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (idx, addr) in hosts.iter().enumerate() {
            let st = &mut states[idx];
            let params = cfg.mix.assign(idx as u32).params();
            let expect = params.flows_per_min / 60.0 * epoch as f64 + st.carry;
            let n = expect.floor() as u64;
            st.carry = expect - n as f64;
            let shard = nat.shard_of(*addr);
            for _ in 0..n {
                let src_port = 20_000 + (st.next_src_port % 45_000);
                st.next_src_port = st.next_src_port.wrapping_add(1) % 45_000;
                let src = Endpoint::new(*addr, src_port);
                flow_counter += 1;
                let dst = dest_endpoint(
                    idx as u32,
                    flow_counter,
                    params.sample_dst_port(&mut st.rng),
                );
                let pkt = if st.rng.gen_bool(params.udp_share) {
                    Packet::udp(src, dst, vec![])
                } else {
                    Packet::tcp(src, dst, TcpFlags::SYN, vec![])
                };
                batches[shard].push(pkt);
                meta[shard].push(idx as u32);
            }
        }
        flows_offered += batches.iter().map(|b| b.len() as u64).sum::<u64>();

        // One multi-threaded pass through the engine; verdicts come
        // back in (shard, batch) order, so observation order is
        // deterministic and thread-count independent.
        let verdicts = nat.process_batches(batches, now, cfg.threads);
        for (shard, vs) in verdicts.into_iter().enumerate() {
            for (k, v) in vs.into_iter().enumerate() {
                match v {
                    NatVerdict::Forward(p) | NatVerdict::Hairpin(p) => {
                        flows_admitted += 1;
                        let idx = meta[shard][k] as usize;
                        let st = &mut states[idx];
                        if st.announcer && st.observations < cfg.max_observations_per_host {
                            st.observations += 1;
                            observations.push(PeerObservation {
                                peer: idx as u32,
                                internal: hosts[idx],
                                external: p.src,
                                at_ms: now.as_millis(),
                            });
                        }
                    }
                    NatVerdict::Drop(_) => flows_blocked += 1,
                }
            }
        }

        t += epoch;
        // Epoch boundary: expire idle mappings so ports churn the way
        // the external observer expects.
        nat.sweep(SimTime::from_millis(start_ms + t * 1000));
    }

    LoadSummary {
        hosts: hosts.len() as u32,
        flows_offered,
        flows_admitted,
        flows_blocked,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::NatConfig;
    use netcore::ip;

    fn pool(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|k| ip(198, 51, 100, k + 1)).collect()
    }

    fn hosts(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|k| ip(100, 64, 0, k + 10)).collect()
    }

    #[test]
    fn load_creates_mappings_and_observations() {
        let mut nat = ShardedNat::new(NatConfig::cgn_default(), pool(8), 4, 7);
        let hs = hosts(40);
        let s = drive(&mut nat, &hs, SimTime::ZERO, &BackgroundLoad::quick(3));
        assert!(s.flows_offered > 100, "offered {}", s.flows_offered);
        assert_eq!(s.flows_admitted + s.flows_blocked, s.flows_offered);
        assert!(s.flows_admitted > 0);
        assert!(!s.observations.is_empty());
        // Every observation names a pool address and a real host.
        for o in &s.observations {
            assert!(nat.is_external_ip(o.external.ip));
            assert_eq!(hs[o.peer as usize], o.internal);
        }
        // Announce share ~0.5: observations come from a strict subset.
        let peers: std::collections::BTreeSet<u32> =
            s.observations.iter().map(|o| o.peer).collect();
        assert!(peers.len() < hs.len());
        assert!(peers.len() >= hs.len() / 4);
    }

    #[test]
    fn identical_for_any_thread_count() {
        let run = |threads: usize| {
            let mut nat = ShardedNat::new(NatConfig::cgn_default(), pool(8), 4, 7);
            let mut cfg = BackgroundLoad::quick(11);
            cfg.threads = threads;
            drive(&mut nat, &hosts(60), SimTime::ZERO, &cfg)
        };
        let seq = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(seq, run(threads), "threads={threads} diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed: u64| {
            let mut nat = ShardedNat::new(NatConfig::cgn_default(), pool(8), 2, 7);
            let mut cfg = BackgroundLoad::quick(seed);
            cfg.seed = seed;
            drive(&mut nat, &hosts(60), SimTime::ZERO, &cfg)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn tiny_pool_blocks_flows() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_range = (1024, 1024 + 63);
        let mut nat = ShardedNat::new(cfg, pool(1), 1, 7);
        let mut load = BackgroundLoad::quick(5);
        load.mix = WorkloadMix::p2p_heavy();
        let s = drive(&mut nat, &hosts(50), SimTime::ZERO, &load);
        assert!(s.flows_blocked > 0, "64 ports cannot carry p2p load");
    }

    #[test]
    fn observation_cap_bounds_memory() {
        let mut nat = ShardedNat::new(NatConfig::cgn_default(), pool(4), 2, 7);
        let mut cfg = BackgroundLoad::quick(9);
        cfg.announce_share = 1.0;
        cfg.max_observations_per_host = 2;
        let s = drive(&mut nat, &hosts(20), SimTime::ZERO, &cfg);
        let mut per_host = std::collections::HashMap::new();
        for o in &s.observations {
            *per_host.entry(o.peer).or_insert(0usize) += 1;
        }
        assert!(per_host.values().all(|&n| n <= 2));
    }
}
