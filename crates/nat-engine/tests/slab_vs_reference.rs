//! Differential test: the slab-backed [`nat_engine::Nat`] against a
//! HashMap reference model.
//!
//! `RefNat` below is a faithful port of the engine's pre-slab storage
//! layout — `mappings: HashMap<u64, Mapping>`, tuple-keyed
//! `out_index` / `ext_index`, a `keys_by_id` back-map, and a
//! full-scan sweep — with identical translation, filtering, TCP
//! tracking, pooling and port-allocation logic (including the order
//! of RNG draws, so allocations match draw for draw). Both engines
//! are driven with identical flow/churn/sweep sequences and must
//! produce identical verdicts, expiries, stats and occupancy.
//!
//! One counter is engine-specific by design: `sweep_scans` measures
//! *internal* sweep work (due timer-wheel buckets vs. a watermarked
//! table scan), not behaviour, so it is normalised to zero on both
//! sides before stats are compared. Everything else — including
//! `sweeps` and `mappings_expired` — must match exactly.

use nat_engine::{
    check_runtime, DropReason, FilteringBehavior, MappingBehavior, NatConfig, NatStats, NatVerdict,
    Pooling, PortAllocation, PortAllocator,
};
use netcore::{ip, Endpoint, Packet, PacketBody, Protocol, SimTime, TcpFlags};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// Reference model: the old HashMap-backed engine.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefTcp {
    Transitory,
    Established,
    Closing,
}

#[derive(Debug, Clone)]
struct RefMapping {
    proto: Protocol,
    internal: Endpoint,
    external: Endpoint,
    contacted: HashSet<Endpoint>,
    expiry: SimTime,
    tcp: Option<RefTcp>,
}

impl RefMapping {
    fn expired(&self, now: SimTime) -> bool {
        self.expiry <= now
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OutKey {
    Eim(Protocol, Endpoint),
    Adm(Protocol, Endpoint, Ipv4Addr),
    Apdm(Protocol, Endpoint, Endpoint),
}

struct RefNat {
    config: NatConfig,
    external_ips: Vec<Ipv4Addr>,
    rng: StdRng,
    allocators: HashMap<(Ipv4Addr, Protocol), PortAllocator>,
    mappings: HashMap<u64, RefMapping>,
    out_index: HashMap<OutKey, u64>,
    ext_index: HashMap<(Protocol, Endpoint), u64>,
    keys_by_id: HashMap<u64, OutKey>,
    paired: HashMap<Ipv4Addr, Ipv4Addr>,
    sessions_per_host: HashMap<Ipv4Addr, u32>,
    next_id: u64,
    stats: NatStats,
}

fn record_drop(stats: &mut NatStats, r: DropReason) {
    stats.drops += 1;
    match r {
        DropReason::NoMapping => stats.drop_no_mapping += 1,
        DropReason::Filtered => stats.drop_filtered += 1,
        DropReason::PortExhausted => stats.drop_port_exhausted += 1,
        DropReason::SessionLimit => stats.drop_session_limit += 1,
        DropReason::NoHairpin => stats.drop_no_hairpin += 1,
        DropReason::UnmatchedIcmp => stats.drop_unmatched_icmp += 1,
    }
}

impl RefNat {
    fn new(config: NatConfig, external_ips: Vec<Ipv4Addr>, seed: u64) -> Self {
        RefNat {
            config,
            external_ips,
            rng: StdRng::seed_from_u64(seed),
            allocators: HashMap::new(),
            mappings: HashMap::new(),
            out_index: HashMap::new(),
            ext_index: HashMap::new(),
            keys_by_id: HashMap::new(),
            paired: HashMap::new(),
            sessions_per_host: HashMap::new(),
            next_id: 0,
            stats: NatStats::default(),
        }
    }

    fn is_external_ip(&self, ip: Ipv4Addr) -> bool {
        self.external_ips.contains(&ip)
    }

    fn ports_by_host(&self, now: SimTime) -> HashMap<Ipv4Addr, u32> {
        let mut out: HashMap<Ipv4Addr, u32> = HashMap::new();
        for m in self.mappings.values() {
            if !m.expired(now) {
                *out.entry(m.internal.ip).or_insert(0) += 1;
            }
        }
        out
    }

    /// `(ext_ip, proto, allocated, capacity)` rows, sorted.
    fn port_occupancy(&self) -> Vec<(Ipv4Addr, Protocol, usize, usize)> {
        let mut out: Vec<_> = self
            .allocators
            .iter()
            .map(|((ip, proto), a)| (*ip, *proto, a.allocated(), a.capacity()))
            .collect();
        out.sort_by_key(|o| (o.0, o.1));
        out
    }

    fn sweep(&mut self, now: SimTime) {
        self.stats.sweeps += 1;
        let dead: Vec<u64> = self
            .mappings
            .iter()
            .filter(|(_, m)| m.expired(now))
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            self.remove_mapping(id);
            self.stats.mappings_expired += 1;
        }
    }

    fn remove_mapping(&mut self, id: u64) {
        if let Some(m) = self.mappings.remove(&id) {
            self.ext_index.remove(&(m.proto, m.external));
            if let Some(k) = self.keys_by_id.remove(&id) {
                self.out_index.remove(&k);
            }
            if let Some(a) = self.allocators.get_mut(&(m.external.ip, m.proto)) {
                a.release(m.external.port);
            }
            if let Some(c) = self.sessions_per_host.get_mut(&m.internal.ip) {
                *c = c.saturating_sub(1);
            }
        }
    }

    fn timeout(&self, proto: Protocol, tcp: Option<RefTcp>) -> netcore::SimDuration {
        match proto {
            Protocol::Udp => self.config.udp_timeout,
            Protocol::Tcp => match tcp {
                Some(RefTcp::Established) => self.config.tcp_established_timeout,
                _ => self.config.tcp_transitory_timeout,
            },
        }
    }

    fn out_key(&self, proto: Protocol, internal: Endpoint, dst: Endpoint) -> OutKey {
        match self.config.mapping {
            MappingBehavior::EndpointIndependent => OutKey::Eim(proto, internal),
            MappingBehavior::AddressDependent => OutKey::Adm(proto, internal, dst.ip),
            MappingBehavior::AddressAndPortDependent => OutKey::Apdm(proto, internal, dst),
        }
    }

    fn pick_external_ip(&mut self, internal_host: Ipv4Addr) -> Ipv4Addr {
        match self.config.pooling {
            Pooling::Paired => {
                if let Some(ip) = self.paired.get(&internal_host) {
                    return *ip;
                }
                let idx = self.rng.gen_range(0..self.external_ips.len());
                let ip = self.external_ips[idx];
                self.paired.insert(internal_host, ip);
                ip
            }
            Pooling::Arbitrary => {
                let idx = self.rng.gen_range(0..self.external_ips.len());
                self.external_ips[idx]
            }
        }
    }

    fn tcp_update(state: Option<RefTcp>, flags: TcpFlags) -> Option<RefTcp> {
        Some(match (state, flags) {
            (_, f) if f.rst || f.fin => RefTcp::Closing,
            (None, f) if f.syn && !f.ack => RefTcp::Transitory,
            (Some(RefTcp::Transitory), f) if f.ack => RefTcp::Established,
            (Some(s), _) => s,
            (None, _) => RefTcp::Transitory,
        })
    }

    fn process_outbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        self.stats.out_packets += 1;
        let (proto, flags) = match &pkt.body {
            PacketBody::Udp { .. } => (Protocol::Udp, None),
            PacketBody::Tcp { flags, .. } => (Protocol::Tcp, Some(*flags)),
            PacketBody::Icmp { .. } => return NatVerdict::Forward(pkt),
        };
        let internal = pkt.src;
        let dst = pkt.dst;
        let key = self.out_key(proto, internal, dst);

        let id = match self.out_index.get(&key) {
            Some(id) if !self.mappings[id].expired(now) => Some(*id),
            Some(id) => {
                let id = *id;
                self.remove_mapping(id);
                self.stats.mappings_expired += 1;
                None
            }
            None => None,
        };
        let id = match id {
            Some(id) => id,
            None => match self.create_mapping(key, proto, internal, now) {
                Ok(id) => id,
                Err(reason) => {
                    record_drop(&mut self.stats, reason);
                    return NatVerdict::Drop(reason);
                }
            },
        };

        let external;
        {
            let m = self.mappings.get_mut(&id).expect("just ensured");
            m.contacted.insert(dst);
            if let Some(f) = flags {
                m.tcp = Self::tcp_update(m.tcp, f);
            }
            external = m.external;
        }
        let t = self.timeout(proto, self.mappings[&id].tcp);
        self.mappings.get_mut(&id).expect("ensured").expiry = now + t;

        let mut out = pkt;
        out.src = external;
        if self.is_external_ip(dst.ip) {
            return self.hairpin(out, internal, now);
        }
        NatVerdict::Forward(out)
    }

    fn create_mapping(
        &mut self,
        key: OutKey,
        proto: Protocol,
        internal: Endpoint,
        now: SimTime,
    ) -> Result<u64, DropReason> {
        if let Some(cap) = self.config.max_sessions_per_host {
            let used = self
                .sessions_per_host
                .get(&internal.ip)
                .copied()
                .unwrap_or(0);
            if used >= cap {
                return Err(DropReason::SessionLimit);
            }
        }
        let external = if self.config.transparent {
            internal
        } else {
            let ext_ip = self.pick_external_ip(internal.ip);
            let strategy = self.config.port_alloc;
            let range = self.config.port_range;
            let alloc = self
                .allocators
                .entry((ext_ip, proto))
                .or_insert_with(|| PortAllocator::new(strategy, range));
            let port = alloc
                .allocate(internal.ip, internal.port, proto, &mut self.rng)
                .map_err(|_| DropReason::PortExhausted)?;
            Endpoint::new(ext_ip, port)
        };
        let id = self.next_id;
        self.next_id += 1;
        let timeout = self.timeout(proto, None);
        self.mappings.insert(
            id,
            RefMapping {
                proto,
                internal,
                external,
                contacted: HashSet::new(),
                expiry: now + timeout,
                tcp: None,
            },
        );
        self.out_index.insert(key, id);
        self.keys_by_id.insert(id, key);
        self.ext_index.insert((proto, external), id);
        *self.sessions_per_host.entry(internal.ip).or_insert(0) += 1;
        self.stats.mappings_created += 1;
        self.stats.peak_mappings = self.stats.peak_mappings.max(self.mappings.len() as u64);
        Ok(id)
    }

    fn hairpin(&mut self, translated: Packet, original_src: Endpoint, now: SimTime) -> NatVerdict {
        if !self.config.hairpinning {
            record_drop(&mut self.stats, DropReason::NoHairpin);
            return NatVerdict::Drop(DropReason::NoHairpin);
        }
        let proto = translated.protocol().expect("hairpin only for UDP/TCP");
        let target_id = match self.ext_index.get(&(proto, translated.dst)) {
            Some(id) if !self.mappings[id].expired(now) => *id,
            _ => {
                record_drop(&mut self.stats, DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
        };
        if !self.filter_admits(target_id, translated.src) {
            record_drop(&mut self.stats, DropReason::Filtered);
            return NatVerdict::Drop(DropReason::Filtered);
        }
        let internal_dst = self.mappings[&target_id].internal;
        if self.config.refresh_inbound {
            let t = self.timeout(proto, self.mappings[&target_id].tcp);
            self.mappings.get_mut(&target_id).expect("checked").expiry = now + t;
        }
        let mut delivered = translated;
        delivered.dst = internal_dst;
        if self.config.hairpin_internal_source {
            delivered.src = original_src;
        }
        self.stats.hairpins += 1;
        NatVerdict::Hairpin(delivered)
    }

    fn filter_admits(&self, id: u64, remote: Endpoint) -> bool {
        let m = &self.mappings[&id];
        match self.config.filtering {
            FilteringBehavior::EndpointIndependent => true,
            FilteringBehavior::AddressDependent => m.contacted.iter().any(|e| e.ip == remote.ip),
            FilteringBehavior::AddressAndPortDependent => m.contacted.contains(&remote),
        }
    }

    fn process_inbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        self.stats.in_packets += 1;
        let (proto, flags) = match &pkt.body {
            PacketBody::Udp { .. } => (Protocol::Udp, None),
            PacketBody::Tcp { flags, .. } => (Protocol::Tcp, Some(*flags)),
            PacketBody::Icmp { .. } => unreachable!("reference ops never build ICMP"),
        };
        let id = match self.ext_index.get(&(proto, pkt.dst)) {
            Some(id) if !self.mappings[id].expired(now) => *id,
            Some(id) => {
                let id = *id;
                self.remove_mapping(id);
                self.stats.mappings_expired += 1;
                record_drop(&mut self.stats, DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
            None => {
                record_drop(&mut self.stats, DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
        };
        if !self.filter_admits(id, pkt.src) {
            record_drop(&mut self.stats, DropReason::Filtered);
            return NatVerdict::Drop(DropReason::Filtered);
        }
        let internal = {
            let m = self.mappings.get_mut(&id).expect("checked");
            if let Some(f) = flags {
                m.tcp = Self::tcp_update(m.tcp, f);
            }
            m.internal
        };
        if self.config.refresh_inbound {
            let t = self.timeout(proto, self.mappings[&id].tcp);
            self.mappings.get_mut(&id).expect("checked").expiry = now + t;
        }
        let mut delivered = pkt;
        delivered.dst = internal;
        NatVerdict::Forward(delivered)
    }
}

// ---------------------------------------------------------------------------
// Differential driver
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// Outbound packet: `kind` 0 = UDP, 1 = SYN, 2 = ACK, 3 = FIN;
    /// `to_external` redirects the destination at a previously
    /// allocated external endpoint (the hairpin path).
    Out {
        host: u8,
        sport: u8,
        dst: u8,
        dport: u8,
        kind: u8,
        to_external: bool,
    },
    /// Inbound packet at a previously seen external endpoint
    /// (`target` indexes the recorded list; ignored while empty).
    In {
        target: u8,
        src: u8,
        sport: u8,
        tcp: bool,
    },
    Sweep,
    Advance(u16),
}

#[allow(clippy::too_many_arguments)] // one knob per behaviour axis, by design
fn build_config(
    mapping: u8,
    filtering: u8,
    pooling: u8,
    alloc: u8,
    refresh_inbound: bool,
    hairpinning: bool,
    cap: Option<u32>,
    udp_secs: u64,
) -> NatConfig {
    let mut cfg = NatConfig::cgn_default();
    cfg.mapping = match mapping % 3 {
        0 => MappingBehavior::EndpointIndependent,
        1 => MappingBehavior::AddressDependent,
        _ => MappingBehavior::AddressAndPortDependent,
    };
    cfg.filtering = match filtering % 3 {
        0 => FilteringBehavior::EndpointIndependent,
        1 => FilteringBehavior::AddressDependent,
        _ => FilteringBehavior::AddressAndPortDependent,
    };
    cfg.pooling = if pooling % 2 == 0 {
        Pooling::Paired
    } else {
        Pooling::Arbitrary
    };
    cfg.port_alloc = match alloc % 4 {
        0 => PortAllocation::Preserve,
        1 => PortAllocation::Sequential,
        2 => PortAllocation::Random,
        _ => PortAllocation::RandomChunk { chunk_size: 8 },
    };
    cfg.refresh_inbound = refresh_inbound;
    cfg.hairpinning = hairpinning;
    cfg.max_sessions_per_host = cap;
    cfg.udp_timeout = netcore::SimDuration::from_secs(udp_secs);
    cfg.tcp_transitory_timeout = netcore::SimDuration::from_secs(udp_secs * 2);
    // Small range so exhaustion, chunk-full and reuse paths all fire.
    cfg.port_range = (5000, 5063);
    cfg
}

fn pool() -> Vec<Ipv4Addr> {
    vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)]
}

fn run_differential(cfg: NatConfig, seed: u64, ops: &[Op]) {
    let mut slab = nat_engine::Nat::new(cfg.clone(), pool(), seed);
    let mut reference = RefNat::new(cfg, pool(), seed);
    let mut now_ms = 0u64;
    let mut externals: Vec<Endpoint> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        let now = SimTime::from_millis(now_ms);
        match op {
            Op::Out {
                host,
                sport,
                dst,
                dport,
                kind,
                to_external,
            } => {
                let src = Endpoint::new(ip(100, 64, 0, host % 8), 40_000 + (*sport as u16) % 12);
                let dst = if *to_external && !externals.is_empty() {
                    externals[*dst as usize % externals.len()]
                } else {
                    Endpoint::new(ip(203, 0, 113, dst % 6), 8_000 + (*dport as u16) % 5)
                };
                let pkt = match kind % 4 {
                    0 => Packet::udp(src, dst, vec![]),
                    1 => Packet::tcp(src, dst, TcpFlags::SYN, vec![]),
                    2 => Packet::tcp(src, dst, TcpFlags::ACK, vec![]),
                    _ => Packet::tcp(src, dst, TcpFlags::FIN, vec![]),
                };
                let a = slab.process_outbound(pkt.clone(), now);
                let b = reference.process_outbound(pkt, now);
                assert_eq!(a, b, "outbound verdict diverged at op {i}");
                if let NatVerdict::Forward(p) = &a {
                    if !externals.contains(&p.src) {
                        externals.push(p.src);
                    }
                }
            }
            Op::In {
                target,
                src,
                sport,
                tcp,
            } => {
                if externals.is_empty() {
                    continue;
                }
                let dst = externals[*target as usize % externals.len()];
                let remote = Endpoint::new(ip(203, 0, 113, src % 6), 8_000 + (*sport as u16) % 5);
                let pkt = if *tcp {
                    Packet::tcp(remote, dst, TcpFlags::ACK, vec![])
                } else {
                    Packet::udp(remote, dst, vec![])
                };
                let a = slab.process_inbound(pkt.clone(), now);
                let b = reference.process_inbound(pkt, now);
                assert_eq!(a, b, "inbound verdict diverged at op {i}");
            }
            Op::Sweep => {
                slab.sweep(now);
                reference.sweep(now);
                assert_eq!(
                    slab.mapping_count(),
                    reference.mappings.len(),
                    "sweep left different table sizes at op {i}"
                );
            }
            Op::Advance(dt) => {
                now_ms += *dt as u64 * 250; // up to ~16s per step
            }
        }
    }

    let now = SimTime::from_millis(now_ms);

    // Behavioural state must match exactly.
    assert_eq!(slab.mapping_count(), reference.mappings.len());
    assert_eq!(slab.ports_by_host(now), reference.ports_by_host(now));
    let slab_occ: Vec<_> = slab
        .port_occupancy()
        .into_iter()
        .map(|o| (o.ext_ip, o.proto, o.allocated, o.capacity))
        .collect();
    assert_eq!(slab_occ, reference.port_occupancy());

    // Stats match, modulo the engine-specific sweep_scans counter.
    let mut a = slab.stats().clone();
    let mut b = reference.stats.clone();
    a.sweep_scans = 0;
    b.sweep_scans = 0;
    assert_eq!(a, b);

    // And the slab store upholds its own invariants after the churn.
    let audit = check_runtime(&slab, now);
    assert!(audit.is_clean(), "{:?}", audit.violations);
}

fn out_op(r: u64) -> Op {
    Op::Out {
        host: (r >> 8) as u8,
        sport: (r >> 16) as u8,
        dst: (r >> 24) as u8,
        dport: (r >> 32) as u8,
        kind: (r >> 40) as u8,
        to_external: r >> 48 & 1 == 1,
    }
}

fn in_op(r: u64) -> Op {
    Op::In {
        target: (r >> 8) as u8,
        src: (r >> 16) as u8,
        sport: (r >> 24) as u8,
        tcp: r & 1 == 1,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The compat prop_oneof! picks arms uniformly; outbound traffic is
    // listed twice to dominate the mix.
    prop_oneof![
        any::<u64>().prop_map(out_op),
        any::<u64>().prop_map(out_op),
        any::<u64>().prop_map(in_op),
        (0u8..2).prop_map(|_| Op::Sweep),
        (1u16..80).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary configurations and flow/churn/sweep sequences,
    /// the slab-backed engine is behaviourally identical to the
    /// HashMap reference model: same translations, same expiries,
    /// same stats.
    #[test]
    fn prop_slab_matches_hashmap_reference(
        mapping in 0u8..3,
        filtering in 0u8..3,
        pooling in 0u8..2,
        alloc in 0u8..4,
        refresh_inbound in any::<bool>(),
        hairpinning in any::<bool>(),
        cap in (0u32..12).prop_map(|v| if v < 6 { None } else { Some(v - 5) }),
        udp_secs in 5u64..90,
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..150),
    ) {
        let cfg = build_config(
            mapping, filtering, pooling, alloc,
            refresh_inbound, hairpinning, cap, udp_secs,
        );
        run_differential(cfg, seed, &ops);
    }
}

/// A long, deterministic churn run through every op kind — the fixed
/// regression companion to the property above (fails with a stable
/// repro if storage semantics drift).
#[test]
fn long_deterministic_churn_matches_reference() {
    let cfg = build_config(0, 2, 0, 2, true, true, Some(5), 30);
    let mut ops = Vec::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for k in 0..2_000u32 {
        let r = next();
        ops.push(match r % 10 {
            0..=4 => Op::Out {
                host: (r >> 8) as u8,
                sport: (r >> 16) as u8,
                dst: (r >> 24) as u8,
                dport: (r >> 32) as u8,
                kind: (r >> 40) as u8,
                to_external: r >> 48 & 1 == 1,
            },
            5..=6 => Op::In {
                target: (r >> 8) as u8,
                sport: (r >> 16) as u8,
                src: (r >> 24) as u8,
                tcp: r >> 32 & 1 == 1,
            },
            7 => Op::Sweep,
            _ => Op::Advance((r % 60) as u16 + 1),
        });
        if k % 97 == 0 {
            ops.push(Op::Sweep);
        }
    }
    run_differential(cfg, 2016, &ops);
}
