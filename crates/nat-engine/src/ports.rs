//! External port allocation.
//!
//! A [`PortAllocator`] manages the free external port space of **one
//! external IP address** for **one transport protocol**. The NAT engine owns
//! one allocator per (external IP, protocol) pair.
//!
//! The allocator implements the four strategies of §6.2 —
//! preservation, sequential, random, and random-within-chunk — plus
//! the two traceability-driven policies the deployment survey turns
//! on: contiguous **port-block** allocation
//! ([`PortAllocation::PortBlock`], one telemetry record per block
//! instead of one per connection) and **deterministic NAT**
//! ([`PortAllocation::Deterministic`], RFC 7422: the block is computed
//! from the internal address by [`deterministic_block`], so no record
//! is needed at all).

use crate::config::PortAllocation;
use netcore::Protocol;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Dense membership set over the full `u16` port space: a fixed 8 KiB
/// bitmap plus a count. Replaces the old `HashSet<u16>` — at CGN fill
/// levels (tens of thousands of ports per external IP) the hash set
/// cost one cache miss per probe and grew with the population, while
/// the bitmap stays 8 KiB regardless of fill and needs no hashing.
#[derive(Debug, Clone)]
struct PortSet {
    words: Box<[u64; 1024]>,
    len: usize,
}

impl PortSet {
    fn new() -> Self {
        PortSet {
            words: Box::new([0u64; 1024]),
            len: 0,
        }
    }

    /// Insert `p`; returns `true` if it was not already present
    /// (`HashSet::insert` semantics).
    fn insert(&mut self, p: u16) -> bool {
        let (w, bit) = (p as usize >> 6, 1u64 << (p & 63));
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.len += 1;
        true
    }

    fn remove(&mut self, p: u16) -> bool {
        let (w, bit) = (p as usize >> 6, 1u64 << (p & 63));
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    /// First absent port in `[from, to]` (inclusive), scanning upward.
    ///
    /// A u64 word scan: each iteration negates one bitmap word, masks
    /// the range edges, and jumps straight to the first free bit with
    /// `trailing_zeros` — so a densely-filled range advances 64 ports
    /// per word instead of probing bit by bit. Callers compose their
    /// strategy's exact candidate order (wrap-around scans are two
    /// calls), and the debug build asserts the scan returns precisely
    /// what the old per-bit probe returned.
    fn first_free_in(&self, from: u16, to: u16) -> Option<u16> {
        let found = (|| {
            if from > to {
                return None;
            }
            let (first_w, last_w) = (from as usize >> 6, to as usize >> 6);
            for w in first_w..=last_w {
                let mut free = !self.words[w];
                if w == first_w {
                    free &= !0u64 << (from & 63);
                }
                if w == last_w {
                    free &= !0u64 >> (63 - (to & 63));
                }
                if free != 0 {
                    return Some(((w as u32) << 6 | free.trailing_zeros()) as u16);
                }
            }
            None
        })();
        debug_assert_eq!(
            found,
            self.first_free_in_ref(from, to),
            "word scan must preserve per-bit allocation order in [{from}, {to}]"
        );
        found
    }

    /// The per-bit reference probe the word scan replaced — kept as
    /// the debug-build oracle for allocation-order equivalence (the
    /// `debug_assert_eq!` above compiles out of release builds).
    fn first_free_in_ref(&self, from: u16, to: u16) -> Option<u16> {
        (from..=to).find(|&p| self.words[p as usize >> 6] & (1u64 << (p & 63)) == 0)
    }
}

/// Why a port could not be allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    /// The whole configured range is in use.
    Exhausted,
    /// The subscriber's chunk is full (chunk allocation only).
    ChunkFull,
    /// No free chunk is left for a new subscriber.
    NoFreeChunk,
}

/// Whether a [`BlockGrant`] records a block being handed out or
/// returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockGrantKind {
    Allocated,
    Released,
}

/// A pending port-block grant or return recorded by the allocator
/// under the [`PortAllocation::PortBlock`] strategy. The engine drains
/// it after every allocate/release call
/// ([`PortAllocator::take_block_grant`]) and forwards it — stamped
/// with the external IP and virtual time — to its telemetry sink:
/// this is the "one log record per block" that makes bulk allocation
/// hundreds of times cheaper to log than per-connection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrant {
    pub kind: BlockGrantKind,
    /// Internal host the block belongs(ed) to.
    pub host: Ipv4Addr,
    /// First port of the block.
    pub start: u16,
    /// Ports in the block.
    pub len: u16,
}

/// The algorithmic placement of deterministic NAT (RFC 7422): which
/// external-pool index and port block an internal host owns, as a pure
/// function of its address. The host's **ordinal** is its offset
/// within the enclosing /10 (the RFC 6598 shared space CGN subscribers
/// live in); ordinals round-robin across the pool first, then across
/// each address's `capacity / ports_per_host` blocks — so a pool of
/// `N` IPs with `B` blocks each holds `N × B` collision-free
/// subscriber slots, and attribution is a computation instead of a
/// log lookup. Returns `(pool index, block start, block len)`.
/// A host's deterministic-NAT **ordinal**: its offset within the
/// enclosing /10 (the RFC 6598 shared space CGN subscribers live in).
/// The single definition both the forward arithmetic
/// ([`deterministic_block`]) and the attribution inverse
/// (`cgn_telemetry::DeterministicMap`) build on — they must never
/// drift apart.
pub fn det_ordinal(host: Ipv4Addr) -> u64 {
    (u32::from(host) & 0x003F_FFFF) as u64
}

pub fn deterministic_block(
    host: Ipv4Addr,
    pool_len: usize,
    range: (u16, u16),
    ports_per_host: u16,
) -> (usize, u16, u16) {
    let ordinal = det_ordinal(host);
    let capacity = (range.1 - range.0) as u64 + 1;
    let pph = ports_per_host.max(1) as u64;
    let blocks_per_ip = (capacity / pph).max(1);
    let n = pool_len.max(1) as u64;
    let ip_index = (ordinal % n) as usize;
    let block_within = (ordinal / n) % blocks_per_ip;
    let start = range.0 as u64 + block_within * pph;
    let len = pph.min(range.1 as u64 + 1 - start);
    (ip_index, start as u16, len as u16)
}

/// State of one contiguous block under [`PortAllocation::PortBlock`].
#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    owner: Option<Ipv4Addr>,
    in_use: u16,
}

/// Free-port bookkeeping for one (external IP, protocol).
#[derive(Debug)]
pub struct PortAllocator {
    strategy: PortAllocation,
    range: (u16, u16),
    in_use: PortSet,
    /// Next candidate for sequential allocation.
    next_seq: u16,
    /// Chunk assignment per internal host (chunk strategies only).
    chunks: HashMap<Ipv4Addr, u16>, // host -> chunk index
    chunks_taken: HashSet<u16>,
    /// Per-block owner/fill state (`PortBlock` strategy only; lazily
    /// sized to `capacity / block_size` on first use).
    blocks: Vec<BlockState>,
    /// Blocks currently granted per host, in grant order.
    host_blocks: HashMap<Ipv4Addr, Vec<u16>>,
    /// Block grant/return recorded by the last allocate/release call,
    /// awaiting [`PortAllocator::take_block_grant`].
    pending_block: Option<BlockGrant>,
}

impl PortAllocator {
    pub fn new(strategy: PortAllocation, range: (u16, u16)) -> Self {
        assert!(range.0 < range.1, "invalid port range {range:?}");
        PortAllocator {
            strategy,
            range,
            in_use: PortSet::new(),
            next_seq: range.0,
            chunks: HashMap::new(),
            chunks_taken: HashSet::new(),
            blocks: Vec::new(),
            host_blocks: HashMap::new(),
            pending_block: None,
        }
    }

    /// Number of ports currently allocated.
    pub fn allocated(&self) -> usize {
        self.in_use.len()
    }

    /// Total ports in the managed range.
    pub fn capacity(&self) -> usize {
        (self.range.1 - self.range.0) as usize + 1
    }

    /// The chunk (index, size) assigned to `host`, if any.
    pub fn chunk_of(&self, host: Ipv4Addr) -> Option<(u16, u16)> {
        match self.strategy {
            PortAllocation::RandomChunk { chunk_size } => {
                self.chunks.get(&host).map(|idx| (*idx, chunk_size))
            }
            _ => None,
        }
    }

    /// Allocate an external port for a flow from `internal_host` whose
    /// internal source port is `internal_port`.
    ///
    /// Panics under [`PortAllocation::Deterministic`]: that placement
    /// is a pure function of the internal address and the *pool*, so
    /// a per-IP allocator cannot compute it — the owning engine
    /// derives the block with [`deterministic_block`] and calls
    /// [`PortAllocator::allocate_deterministic`] instead.
    pub fn allocate(
        &mut self,
        internal_host: Ipv4Addr,
        internal_port: u16,
        _proto: Protocol,
        rng: &mut StdRng,
    ) -> Result<u16, PortError> {
        match self.strategy {
            PortAllocation::Preserve => self.alloc_preserve(internal_port),
            PortAllocation::Sequential => self.alloc_sequential(),
            PortAllocation::Random => self.alloc_random(rng),
            PortAllocation::RandomChunk { chunk_size } => {
                self.alloc_chunk(internal_host, chunk_size, rng)
            }
            PortAllocation::PortBlock { block_size } => self.alloc_block(internal_host, block_size),
            PortAllocation::Deterministic { .. } => panic!(
                "deterministic placement is computed by the engine \
                 (ports::deterministic_block) and allocated via \
                 PortAllocator::allocate_deterministic"
            ),
        }
    }

    /// Allocate the first free port of a host's computed deterministic
    /// block (`[start, start + len)`) — the engine derives the block
    /// with [`deterministic_block`]. No state beyond the port bitmap,
    /// no RNG, no grant records.
    pub fn allocate_deterministic(&mut self, start: u16, len: u16) -> Result<u16, PortError> {
        let hi = (start as u32 + len as u32).min(self.range.1 as u32 + 1);
        if hi > start as u32 {
            if let Some(p) = self.in_use.first_free_in(start, (hi - 1) as u16) {
                self.in_use.insert(p);
                return Ok(p);
            }
        }
        Err(PortError::Exhausted)
    }

    /// Release a previously allocated port (mapping expiry). Under the
    /// `PortBlock` strategy, draining a block's last port returns the
    /// block (recorded as a pending [`BlockGrant`]).
    pub fn release(&mut self, port: u16) {
        if !self.in_use.remove(port) {
            return;
        }
        if let PortAllocation::PortBlock { block_size } = self.strategy {
            if port < self.range.0 {
                return;
            }
            let b = ((port - self.range.0) / block_size) as usize;
            let Some(state) = self.blocks.get_mut(b) else {
                return;
            };
            state.in_use = state.in_use.saturating_sub(1);
            if state.in_use == 0 {
                if let Some(owner) = state.owner.take() {
                    if let Some(list) = self.host_blocks.get_mut(&owner) {
                        list.retain(|x| *x as usize != b);
                        if list.is_empty() {
                            self.host_blocks.remove(&owner);
                        }
                    }
                    let (start, len) = self.block_bounds(b as u16, block_size);
                    self.pending_block = Some(BlockGrant {
                        kind: BlockGrantKind::Released,
                        host: owner,
                        start,
                        len,
                    });
                }
            }
        }
    }

    /// Drain the block grant/return recorded by the last
    /// allocate/release call, if any. The engine calls this after
    /// every allocator operation so at most one grant is ever pending.
    pub fn take_block_grant(&mut self) -> Option<BlockGrant> {
        self.pending_block.take()
    }

    /// The blocks currently granted to `host` under the `PortBlock`
    /// strategy, as `(start, len)` ranges in grant order.
    pub fn blocks_of(&self, host: Ipv4Addr) -> Vec<(u16, u16)> {
        let PortAllocation::PortBlock { block_size } = self.strategy else {
            return Vec::new();
        };
        self.host_blocks
            .get(&host)
            .map(|list| {
                list.iter()
                    .map(|&b| self.block_bounds(b, block_size))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn in_range(&self, p: u16) -> bool {
        p >= self.range.0 && p <= self.range.1
    }

    fn alloc_preserve(&mut self, wanted: u16) -> Result<u16, PortError> {
        if self.in_range(wanted) && self.in_use.insert(wanted) {
            return Ok(wanted);
        }
        // Collision (or out of range): sequential scan upward from the
        // wanted port, wrapping once — "an alternate port must be chosen".
        let start = if self.in_range(wanted) {
            wanted
        } else {
            self.range.0
        };
        match self.wrap_scan_after(start) {
            Some(p) => {
                self.in_use.insert(p);
                Ok(p)
            }
            None => Err(PortError::Exhausted),
        }
    }

    /// First free port in the wrap-around order `start+1..=hi, lo..=start`
    /// — the candidate order every "scan upward, wrapping once" strategy
    /// shares, expressed as two ascending word scans.
    fn wrap_scan_after(&self, start: u16) -> Option<u16> {
        let upper = if start < self.range.1 {
            self.in_use.first_free_in(start + 1, self.range.1)
        } else {
            None
        };
        upper.or_else(|| self.in_use.first_free_in(self.range.0, start))
    }

    /// Like [`wrap_scan_after`](Self::wrap_scan_after) but with `start`
    /// itself as the first candidate: `start..=hi, lo..start`.
    fn wrap_scan_from(&self, start: u16) -> Option<u16> {
        self.in_use.first_free_in(start, self.range.1).or_else(|| {
            if start > self.range.0 {
                self.in_use.first_free_in(self.range.0, start - 1)
            } else {
                None
            }
        })
    }

    fn alloc_sequential(&mut self) -> Result<u16, PortError> {
        match self.wrap_scan_from(self.next_seq) {
            Some(p) => {
                self.in_use.insert(p);
                self.next_seq = if p == self.range.1 {
                    self.range.0
                } else {
                    p + 1
                };
                Ok(p)
            }
            None => Err(PortError::Exhausted),
        }
    }

    fn alloc_random(&mut self, rng: &mut StdRng) -> Result<u16, PortError> {
        if self.in_use.len() >= self.capacity() {
            return Err(PortError::Exhausted);
        }
        // Rejection sampling with a deterministic linear-scan fallback so
        // allocation terminates even when the range is nearly full.
        for _ in 0..64 {
            let p = rng.gen_range(self.range.0..=self.range.1);
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        let start = rng.gen_range(self.range.0..=self.range.1);
        match self.wrap_scan_from(start) {
            Some(p) => {
                self.in_use.insert(p);
                Ok(p)
            }
            None => Err(PortError::Exhausted),
        }
    }

    fn alloc_chunk(
        &mut self,
        host: Ipv4Addr,
        chunk_size: u16,
        rng: &mut StdRng,
    ) -> Result<u16, PortError> {
        assert!(chunk_size > 0);
        let n_chunks = (self.capacity() / chunk_size as usize).max(1) as u16;
        let chunk = match self.chunks.get(&host) {
            Some(c) => *c,
            None => {
                // Pick a random free chunk for this subscriber.
                let free: Vec<u16> = (0..n_chunks)
                    .filter(|c| !self.chunks_taken.contains(c))
                    .collect();
                if free.is_empty() {
                    return Err(PortError::NoFreeChunk);
                }
                let c = free[rng.gen_range(0..free.len())];
                self.chunks.insert(host, c);
                self.chunks_taken.insert(c);
                c
            }
        };
        let lo = self.range.0 + chunk * chunk_size;
        let hi_exclusive = (lo as u32 + chunk_size as u32).min(self.range.1 as u32 + 1);
        if (hi_exclusive - lo as u32) == 0 {
            return Err(PortError::ChunkFull);
        }
        for _ in 0..64 {
            let p = rng.gen_range(lo as u32..hi_exclusive) as u16;
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        match self.in_use.first_free_in(lo, (hi_exclusive - 1) as u16) {
            Some(p) => {
                self.in_use.insert(p);
                Ok(p)
            }
            None => Err(PortError::ChunkFull),
        }
    }

    /// `(start, len)` of block `b` under a `block_size`-port layout.
    fn block_bounds(&self, b: u16, block_size: u16) -> (u16, u16) {
        let lo = self.range.0 as u32 + b as u32 * block_size as u32;
        let hi_exclusive = (lo + block_size as u32).min(self.range.1 as u32 + 1);
        (lo as u16, (hi_exclusive - lo) as u16)
    }

    /// First free port within block `b`, marking it used.
    fn alloc_in_block(&mut self, b: u16, block_size: u16) -> Option<u16> {
        let (lo, len) = self.block_bounds(b, block_size);
        if self.blocks[b as usize].in_use >= len {
            return None; // full block: skip the scan entirely
        }
        let hi = (lo as u32 + len as u32 - 1) as u16;
        match self.in_use.first_free_in(lo, hi) {
            Some(p) => {
                self.in_use.insert(p);
                self.blocks[b as usize].in_use += 1;
                Some(p)
            }
            None => None,
        }
    }

    /// Contiguous-block allocation: sequential fill of the host's
    /// granted blocks; a fresh block (lowest free index —
    /// deterministic, no RNG) is granted when they run out and
    /// recorded as a pending [`BlockGrant`].
    fn alloc_block(&mut self, host: Ipv4Addr, block_size: u16) -> Result<u16, PortError> {
        assert!(block_size > 0);
        if self.blocks.is_empty() {
            let n_blocks = (self.capacity() / block_size as usize).max(1);
            self.blocks = vec![BlockState::default(); n_blocks];
        }
        // Fill the host's existing blocks in grant order. (The short
        // index list is copied out so the block scan can borrow the
        // allocator mutably; hosts hold a handful of blocks at most.)
        let owned: Vec<u16> = self.host_blocks.get(&host).cloned().unwrap_or_default();
        for b in owned {
            if let Some(p) = self.alloc_in_block(b, block_size) {
                return Ok(p);
            }
        }
        // Grant the lowest-index free block.
        let Some(b) = self.blocks.iter().position(|s| s.owner.is_none()) else {
            return Err(PortError::NoFreeChunk);
        };
        let b = b as u16;
        self.blocks[b as usize].owner = Some(host);
        self.host_blocks.entry(host).or_default().push(b);
        let (start, len) = self.block_bounds(b, block_size);
        self.pending_block = Some(BlockGrant {
            kind: BlockGrantKind::Allocated,
            host,
            start,
            len,
        });
        self.alloc_in_block(b, block_size)
            .ok_or(PortError::ChunkFull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn host() -> Ipv4Addr {
        ip(100, 64, 0, 10)
    }

    #[test]
    fn word_scan_matches_per_bit_probe() {
        // Dense edge patterns the word scan must get right: range edges
        // inside a word, full words, boundaries at multiples of 64.
        let mut set = PortSet::new();
        assert_eq!(set.first_free_in(1024, 1024), Some(1024));
        for p in 1024..=1100u16 {
            set.insert(p);
        }
        assert_eq!(set.first_free_in(1024, 1100), None);
        assert_eq!(set.first_free_in(1024, 1101), Some(1101));
        assert_eq!(set.first_free_in(1000, 1050), Some(1000));
        set.remove(1063); // last bit of a word
        assert_eq!(set.first_free_in(1024, 1100), Some(1063));
        set.remove(1064); // first bit of the next word
        assert_eq!(set.first_free_in(1064, 1100), Some(1064));
        assert_eq!(set.first_free_in(65535, 65535), Some(65535));
        set.insert(65535);
        assert_eq!(set.first_free_in(65535, 65535), None);
    }

    proptest! {
        /// The u64 word scan returns exactly what the per-bit probe it
        /// replaced would have: allocation order is unchanged.
        #[test]
        fn prop_word_scan_preserves_allocation_order(
            occupied in proptest::collection::vec(0u16..=65535, 0..200),
            from in 0u16..=65535,
            width in 0u16..512,
        ) {
            let mut set = PortSet::new();
            for p in &occupied {
                set.insert(*p);
            }
            let to = from.saturating_add(width);
            let naive = (from..=to)
                .find(|&p| set.words[p as usize >> 6] & (1u64 << (p & 63)) == 0);
            prop_assert_eq!(set.first_free_in(from, to), naive);
        }
    }

    #[test]
    fn preserve_keeps_port_when_free() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (1024, 65535));
        let p = a
            .allocate(host(), 50000, Protocol::Tcp, &mut rng())
            .unwrap();
        assert_eq!(p, 50000);
    }

    #[test]
    fn preserve_falls_back_on_collision() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (1024, 65535));
        let mut r = rng();
        assert_eq!(
            a.allocate(host(), 50000, Protocol::Tcp, &mut r).unwrap(),
            50000
        );
        let p2 = a
            .allocate(ip(100, 64, 0, 11), 50000, Protocol::Tcp, &mut r)
            .unwrap();
        assert_ne!(p2, 50000);
        // Fallback is the next sequential port.
        assert_eq!(p2, 50001);
    }

    #[test]
    fn preserve_out_of_range_request() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (2000, 3000));
        let p = a.allocate(host(), 80, Protocol::Tcp, &mut rng()).unwrap();
        assert!((2000..=3000).contains(&p));
    }

    #[test]
    fn sequential_is_monotone_with_small_gaps() {
        let mut a = PortAllocator::new(PortAllocation::Sequential, (1024, 65535));
        let mut r = rng();
        let ports: Vec<u16> = (0..10)
            .map(|_| a.allocate(host(), 9999, Protocol::Tcp, &mut r).unwrap())
            .collect();
        assert_eq!(ports, (1024..1034).collect::<Vec<u16>>());
    }

    #[test]
    fn sequential_wraps_after_release() {
        let mut a = PortAllocator::new(PortAllocation::Sequential, (10, 12));
        let mut r = rng();
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 10);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 11);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 12);
        assert_eq!(
            a.allocate(host(), 0, Protocol::Udp, &mut r),
            Err(PortError::Exhausted)
        );
        a.release(11);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 11);
    }

    #[test]
    fn random_spans_whole_space() {
        // Fig. 8a: CGNs with port translation utilize the entire port space,
        // unlike OS ephemeral ranges.
        let mut a = PortAllocator::new(PortAllocation::Random, (1024, 65535));
        let mut r = rng();
        let ports: Vec<u16> = (0..2000)
            .map(|_| a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap())
            .collect();
        let min = *ports.iter().min().unwrap();
        let max = *ports.iter().max().unwrap();
        assert!(
            min < 4000,
            "random allocation should reach low ports, min={min}"
        );
        assert!(
            max > 62000,
            "random allocation should reach high ports, max={max}"
        );
    }

    #[test]
    fn random_exhaustion() {
        let mut a = PortAllocator::new(PortAllocation::Random, (1, 4));
        let mut r = rng();
        for _ in 0..4 {
            a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        }
        assert_eq!(
            a.allocate(host(), 0, Protocol::Udp, &mut r),
            Err(PortError::Exhausted)
        );
    }

    #[test]
    fn chunk_allocation_confines_subscriber() {
        let chunk_size = 4096u16;
        let mut a = PortAllocator::new(PortAllocation::RandomChunk { chunk_size }, (1024, 65535));
        let mut r = rng();
        let mut ports = Vec::new();
        for _ in 0..100 {
            ports.push(a.allocate(host(), 0, Protocol::Tcp, &mut r).unwrap());
        }
        let (idx, size) = a.chunk_of(host()).unwrap();
        assert_eq!(size, chunk_size);
        let lo = 1024 + idx * chunk_size;
        for p in &ports {
            assert!(
                *p >= lo && (*p as u32) < lo as u32 + chunk_size as u32,
                "port {p} outside chunk"
            );
        }
        // All observed ports of one subscriber fall within a range smaller
        // than the chunk size — the paper's chunk-detection signal.
        let spread = *ports.iter().max().unwrap() - *ports.iter().min().unwrap();
        assert!(spread < chunk_size);
    }

    #[test]
    fn chunks_differ_between_subscribers() {
        let mut a = PortAllocator::new(
            PortAllocation::RandomChunk { chunk_size: 1024 },
            (1024, 65535),
        );
        let mut r = rng();
        a.allocate(ip(10, 0, 0, 1), 0, Protocol::Udp, &mut r)
            .unwrap();
        a.allocate(ip(10, 0, 0, 2), 0, Protocol::Udp, &mut r)
            .unwrap();
        let c1 = a.chunk_of(ip(10, 0, 0, 1)).unwrap().0;
        let c2 = a.chunk_of(ip(10, 0, 0, 2)).unwrap().0;
        assert_ne!(c1, c2);
    }

    #[test]
    fn chunk_capacity_limits_subscribers() {
        // 64 subscribers per IP with 1K chunks (§6.2: "we find 64 subscribers
        // per IP address in the case of a 1K port chunk").
        let mut a =
            PortAllocator::new(PortAllocation::RandomChunk { chunk_size: 1024 }, (0, 65535));
        let mut r = rng();
        let mut ok = 0;
        for i in 0..70u32 {
            let h = Ipv4Addr::from(0x0a000000u32 + i);
            if a.allocate(h, 0, Protocol::Udp, &mut r).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 64);
    }

    #[test]
    fn port_block_fills_sequentially_and_grows_by_blocks() {
        let mut a = PortAllocator::new(PortAllocation::PortBlock { block_size: 4 }, (1000, 1015));
        let mut r = rng();
        // First allocation grants the lowest free block and records it.
        let p = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        assert_eq!(p, 1000);
        let g = a.take_block_grant().expect("fresh block recorded");
        assert_eq!(
            (g.kind, g.host, g.start, g.len),
            (BlockGrantKind::Allocated, host(), 1000, 4)
        );
        assert!(a.take_block_grant().is_none(), "grant drains once");
        // Sequential fill within the block, no further grants.
        for want in [1001, 1002, 1003] {
            assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), want);
            assert!(a.take_block_grant().is_none());
        }
        // Block full: a second block is granted.
        let p = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        assert_eq!(p, 1004);
        let g = a.take_block_grant().expect("growth records a block");
        assert_eq!((g.start, g.len), (1004, 4));
        assert_eq!(a.blocks_of(host()), vec![(1000, 4), (1004, 4)]);
    }

    #[test]
    fn port_block_release_returns_drained_blocks() {
        let mut a = PortAllocator::new(PortAllocation::PortBlock { block_size: 4 }, (1000, 1015));
        let mut r = rng();
        let ports: Vec<u16> = (0..4)
            .map(|_| a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap())
            .collect();
        a.take_block_grant();
        // Partial drain keeps the block.
        for &p in &ports[..3] {
            a.release(p);
            assert!(a.take_block_grant().is_none(), "block still has a port");
        }
        // Last port out: the block is returned to the free pool.
        a.release(ports[3]);
        let g = a.take_block_grant().expect("drained block returned");
        assert_eq!(
            (g.kind, g.host, g.start, g.len),
            (BlockGrantKind::Released, host(), 1000, 4)
        );
        assert!(a.blocks_of(host()).is_empty());
        // The block is reusable — by anyone.
        let other = ip(100, 64, 0, 99);
        assert_eq!(a.allocate(other, 0, Protocol::Udp, &mut r).unwrap(), 1000);
        assert_eq!(a.take_block_grant().unwrap().host, other);
    }

    #[test]
    fn port_block_exhaustion_when_no_free_block() {
        let mut a = PortAllocator::new(PortAllocation::PortBlock { block_size: 8 }, (1000, 1015));
        let mut r = rng();
        // Two hosts take the two 8-port blocks.
        a.allocate(ip(10, 0, 0, 1), 0, Protocol::Udp, &mut r)
            .unwrap();
        a.allocate(ip(10, 0, 0, 2), 0, Protocol::Udp, &mut r)
            .unwrap();
        // A third host finds no free block.
        assert_eq!(
            a.allocate(ip(10, 0, 0, 3), 0, Protocol::Udp, &mut r),
            Err(PortError::NoFreeChunk)
        );
    }

    #[test]
    fn deterministic_block_is_algorithmic_and_collision_free() {
        let range = (1024, 65535);
        let pph = 64;
        let pool_len = 4;
        let blocks_per_ip = 64512 / 64; // 1008
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u32 {
            let h = Ipv4Addr::from(u32::from(ip(100, 64, 0, 0)) + k);
            let (ip_idx, start, len) = deterministic_block(h, pool_len, range, pph);
            // Pure function: recomputation agrees.
            assert_eq!(
                deterministic_block(h, pool_len, range, pph),
                (ip_idx, start, len)
            );
            assert!(ip_idx < pool_len);
            assert_eq!(len, pph);
            assert!(start >= range.0 && start as u32 + len as u32 - 1 <= range.1 as u32);
            assert_eq!((start - range.0) % pph, 0, "block-aligned start");
            // Ordinals below pool_len * blocks_per_ip are collision-free.
            assert!(
                seen.insert((ip_idx, start)),
                "host {k} collided at ({ip_idx}, {start})"
            );
        }
        let _ = blocks_per_ip;
    }

    #[test]
    fn deterministic_allocation_fills_only_the_computed_block() {
        let mut a = PortAllocator::new(
            PortAllocation::Deterministic { ports_per_host: 4 },
            (1000, 1015),
        );
        for want in [1004, 1005, 1006, 1007] {
            assert_eq!(a.allocate_deterministic(1004, 4), Ok(want));
        }
        // The host's block is full — the deterministic cap bites.
        assert_eq!(a.allocate_deterministic(1004, 4), Err(PortError::Exhausted));
        // Neighbouring blocks were never touched.
        assert_eq!(a.allocated(), 4);
        a.release(1005);
        assert_eq!(a.allocate_deterministic(1004, 4), Ok(1005));
        assert!(
            a.take_block_grant().is_none(),
            "deterministic NAT records nothing"
        );
    }

    #[test]
    fn release_frees_capacity() {
        let mut a = PortAllocator::new(PortAllocation::Random, (1, 2));
        let mut r = rng();
        let p1 = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        let _p2 = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        assert_eq!(a.allocated(), 2);
        a.release(p1);
        assert_eq!(a.allocated(), 1);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), p1);
    }

    #[test]
    #[should_panic(expected = "invalid port range")]
    fn invalid_range_panics() {
        let _ = PortAllocator::new(PortAllocation::Random, (5, 5));
    }

    proptest! {
        /// No strategy ever returns an out-of-range or duplicate port.
        #[test]
        fn prop_no_duplicates_in_range(
            strat in 0usize..5,
            lo in 1024u16..2000,
            span in 100u16..1000,
            n in 1usize..80,
            seed in any::<u64>(),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                3 => PortAllocation::PortBlock { block_size: 64 },
                _ => PortAllocation::RandomChunk { chunk_size: 64 },
            };
            let range = (lo, lo + span);
            let mut a = PortAllocator::new(strategy, range);
            let mut r = StdRng::seed_from_u64(seed);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                match a.allocate(host(), 40000 + i as u16, Protocol::Udp, &mut r) {
                    Ok(p) => {
                        prop_assert!(p >= range.0 && p <= range.1, "port {} out of range", p);
                        prop_assert!(seen.insert(p), "duplicate port {}", p);
                    }
                    Err(_) => break,
                }
            }
        }

        /// Allocate-then-release returns the allocator to its prior size.
        #[test]
        fn prop_release_inverse(seed in any::<u64>(), n in 1usize..50) {
            let mut a = PortAllocator::new(PortAllocation::Random, (1024, 65535));
            let mut r = StdRng::seed_from_u64(seed);
            let mut ports = Vec::new();
            for _ in 0..n {
                ports.push(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap());
            }
            for p in ports {
                a.release(p);
            }
            prop_assert_eq!(a.allocated(), 0);
        }

        /// Interleaved allocate/release never double-allocates: a port
        /// handed out is never handed out again until it was released,
        /// under every strategy.
        #[test]
        fn prop_no_double_allocation_with_churn(
            strat in 0usize..5,
            seed in any::<u64>(),
            ops in proptest::collection::vec((any::<u8>(), 0u16..200), 1..120),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                3 => PortAllocation::PortBlock { block_size: 32 },
                _ => PortAllocation::RandomChunk { chunk_size: 32 },
            };
            let mut a = PortAllocator::new(strategy, (2000, 2400));
            let mut r = StdRng::seed_from_u64(seed);
            let mut live = std::collections::HashSet::new();
            for (op, arg) in ops {
                if op % 3 != 0 || live.is_empty() {
                    if let Ok(p) = a.allocate(host(), 30000 + arg, Protocol::Udp, &mut r) {
                        prop_assert!(
                            live.insert(p),
                            "port {} double-allocated while still live", p
                        );
                    }
                } else {
                    // Release an arbitrary live port (deterministic pick).
                    let p = *live.iter().min().expect("nonempty");
                    live.remove(&p);
                    a.release(p);
                }
                prop_assert_eq!(a.allocated(), live.len());
            }
        }

        /// Chunk allocation confines every subscriber to one fixed
        /// `chunk_size`-aligned block for the allocator's lifetime.
        #[test]
        fn prop_chunk_bound_containment(
            chunk_exp in 4u32..9, // chunk sizes 16..256
            hosts in 1u32..8,
            per_host in 1usize..24,
            seed in any::<u64>(),
        ) {
            let chunk_size = 2u16.pow(chunk_exp);
            let mut a = PortAllocator::new(
                PortAllocation::RandomChunk { chunk_size },
                (1024, 65535),
            );
            let mut r = StdRng::seed_from_u64(seed);
            for h in 0..hosts {
                let host_ip = Ipv4Addr::from(0x0a00_0000u32 + h);
                let mut observed = Vec::new();
                for _ in 0..per_host {
                    match a.allocate(host_ip, 0, Protocol::Udp, &mut r) {
                        Ok(p) => observed.push(p),
                        Err(PortError::ChunkFull) => break,
                        Err(e) => prop_assert!(false, "unexpected error {:?}", e),
                    }
                }
                let (idx, size) = a.chunk_of(host_ip).expect("chunk assigned");
                prop_assert_eq!(size, chunk_size);
                let lo = 1024 + idx as u32 * chunk_size as u32;
                for p in observed {
                    prop_assert!(
                        (p as u32) >= lo && (p as u32) < lo + chunk_size as u32,
                        "port {} escaped chunk [{}, {})", p, lo, lo + chunk_size as u32
                    );
                }
            }
        }

        /// A released port becomes allocatable again (the sweep path:
        /// mapping expiry must return capacity), for every strategy.
        #[test]
        fn prop_port_reuse_after_release(
            strat in 0usize..5,
            seed in any::<u64>(),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                3 => PortAllocation::PortBlock { block_size: 8 },
                _ => PortAllocation::RandomChunk { chunk_size: 8 },
            };
            // A range exactly one 8-port chunk wide: full exhaustion is
            // reachable under every strategy.
            let mut a = PortAllocator::new(strategy, (5000, 5007));
            let mut r = StdRng::seed_from_u64(seed);
            let mut ports = Vec::new();
            while let Ok(p) = a.allocate(host(), 5000, Protocol::Udp, &mut r) {
                ports.push(p);
            }
            prop_assert_eq!(ports.len(), 8, "whole range must be allocatable");
            // Exhausted now; releasing any port makes exactly it available.
            for &p in &ports {
                a.release(p);
                let again = a.allocate(host(), 5000, Protocol::Udp, &mut r);
                prop_assert_eq!(again, Ok(p), "released port must be reusable");
            }
            prop_assert!(a.allocate(host(), 5000, Protocol::Udp, &mut r).is_err());
        }
    }
}
