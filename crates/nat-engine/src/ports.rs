//! External port allocation.
//!
//! A [`PortAllocator`] manages the free external port space of **one
//! external IP address** for **one transport protocol**. The NAT engine owns
//! one allocator per (external IP, protocol) pair.
//!
//! The allocator implements the four strategies of §6.2:
//! preservation, sequential, random, and random-within-chunk.

use crate::config::PortAllocation;
use netcore::Protocol;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Dense membership set over the full `u16` port space: a fixed 8 KiB
/// bitmap plus a count. Replaces the old `HashSet<u16>` — at CGN fill
/// levels (tens of thousands of ports per external IP) the hash set
/// cost one cache miss per probe and grew with the population, while
/// the bitmap stays 8 KiB regardless of fill and needs no hashing.
#[derive(Debug, Clone)]
struct PortSet {
    words: Box<[u64; 1024]>,
    len: usize,
}

impl PortSet {
    fn new() -> Self {
        PortSet {
            words: Box::new([0u64; 1024]),
            len: 0,
        }
    }

    /// Insert `p`; returns `true` if it was not already present
    /// (`HashSet::insert` semantics).
    fn insert(&mut self, p: u16) -> bool {
        let (w, bit) = (p as usize >> 6, 1u64 << (p & 63));
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.len += 1;
        true
    }

    fn remove(&mut self, p: u16) -> bool {
        let (w, bit) = (p as usize >> 6, 1u64 << (p & 63));
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Why a port could not be allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    /// The whole configured range is in use.
    Exhausted,
    /// The subscriber's chunk is full (chunk allocation only).
    ChunkFull,
    /// No free chunk is left for a new subscriber.
    NoFreeChunk,
}

/// Free-port bookkeeping for one (external IP, protocol).
#[derive(Debug)]
pub struct PortAllocator {
    strategy: PortAllocation,
    range: (u16, u16),
    in_use: PortSet,
    /// Next candidate for sequential allocation.
    next_seq: u16,
    /// Chunk assignment per internal host (chunk strategies only).
    chunks: HashMap<Ipv4Addr, u16>, // host -> chunk index
    chunks_taken: HashSet<u16>,
}

impl PortAllocator {
    pub fn new(strategy: PortAllocation, range: (u16, u16)) -> Self {
        assert!(range.0 < range.1, "invalid port range {range:?}");
        PortAllocator {
            strategy,
            range,
            in_use: PortSet::new(),
            next_seq: range.0,
            chunks: HashMap::new(),
            chunks_taken: HashSet::new(),
        }
    }

    /// Number of ports currently allocated.
    pub fn allocated(&self) -> usize {
        self.in_use.len()
    }

    /// Total ports in the managed range.
    pub fn capacity(&self) -> usize {
        (self.range.1 - self.range.0) as usize + 1
    }

    /// The chunk (index, size) assigned to `host`, if any.
    pub fn chunk_of(&self, host: Ipv4Addr) -> Option<(u16, u16)> {
        match self.strategy {
            PortAllocation::RandomChunk { chunk_size } => {
                self.chunks.get(&host).map(|idx| (*idx, chunk_size))
            }
            _ => None,
        }
    }

    /// Allocate an external port for a flow from `internal_host` whose
    /// internal source port is `internal_port`.
    pub fn allocate(
        &mut self,
        internal_host: Ipv4Addr,
        internal_port: u16,
        _proto: Protocol,
        rng: &mut StdRng,
    ) -> Result<u16, PortError> {
        match self.strategy {
            PortAllocation::Preserve => self.alloc_preserve(internal_port),
            PortAllocation::Sequential => self.alloc_sequential(),
            PortAllocation::Random => self.alloc_random(rng),
            PortAllocation::RandomChunk { chunk_size } => {
                self.alloc_chunk(internal_host, chunk_size, rng)
            }
        }
    }

    /// Release a previously allocated port (mapping expiry).
    pub fn release(&mut self, port: u16) {
        self.in_use.remove(port);
    }

    fn in_range(&self, p: u16) -> bool {
        p >= self.range.0 && p <= self.range.1
    }

    fn alloc_preserve(&mut self, wanted: u16) -> Result<u16, PortError> {
        if self.in_range(wanted) && self.in_use.insert(wanted) {
            return Ok(wanted);
        }
        // Collision (or out of range): sequential scan upward from the
        // wanted port, wrapping once — "an alternate port must be chosen".
        let start = if self.in_range(wanted) {
            wanted
        } else {
            self.range.0
        };
        let span = self.capacity() as u32;
        for off in 1..=span {
            let p = self.range.0 + (((start - self.range.0) as u32 + off) % span) as u16;
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        Err(PortError::Exhausted)
    }

    fn alloc_sequential(&mut self) -> Result<u16, PortError> {
        let span = self.capacity() as u32;
        for off in 0..span {
            let p = self.range.0 + (((self.next_seq - self.range.0) as u32 + off) % span) as u16;
            if self.in_use.insert(p) {
                self.next_seq = if p == self.range.1 {
                    self.range.0
                } else {
                    p + 1
                };
                return Ok(p);
            }
        }
        Err(PortError::Exhausted)
    }

    fn alloc_random(&mut self, rng: &mut StdRng) -> Result<u16, PortError> {
        if self.in_use.len() >= self.capacity() {
            return Err(PortError::Exhausted);
        }
        // Rejection sampling with a deterministic linear-scan fallback so
        // allocation terminates even when the range is nearly full.
        for _ in 0..64 {
            let p = rng.gen_range(self.range.0..=self.range.1);
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        let start = rng.gen_range(self.range.0..=self.range.1);
        let span = self.capacity() as u32;
        for off in 0..span {
            let p = self.range.0 + (((start - self.range.0) as u32 + off) % span) as u16;
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        Err(PortError::Exhausted)
    }

    fn alloc_chunk(
        &mut self,
        host: Ipv4Addr,
        chunk_size: u16,
        rng: &mut StdRng,
    ) -> Result<u16, PortError> {
        assert!(chunk_size > 0);
        let n_chunks = (self.capacity() / chunk_size as usize).max(1) as u16;
        let chunk = match self.chunks.get(&host) {
            Some(c) => *c,
            None => {
                // Pick a random free chunk for this subscriber.
                let free: Vec<u16> = (0..n_chunks)
                    .filter(|c| !self.chunks_taken.contains(c))
                    .collect();
                if free.is_empty() {
                    return Err(PortError::NoFreeChunk);
                }
                let c = free[rng.gen_range(0..free.len())];
                self.chunks.insert(host, c);
                self.chunks_taken.insert(c);
                c
            }
        };
        let lo = self.range.0 + chunk * chunk_size;
        let hi_exclusive = (lo as u32 + chunk_size as u32).min(self.range.1 as u32 + 1);
        if (hi_exclusive - lo as u32) == 0 {
            return Err(PortError::ChunkFull);
        }
        for _ in 0..64 {
            let p = rng.gen_range(lo as u32..hi_exclusive) as u16;
            if self.in_use.insert(p) {
                return Ok(p);
            }
        }
        for p in lo as u32..hi_exclusive {
            if self.in_use.insert(p as u16) {
                return Ok(p as u16);
            }
        }
        Err(PortError::ChunkFull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn host() -> Ipv4Addr {
        ip(100, 64, 0, 10)
    }

    #[test]
    fn preserve_keeps_port_when_free() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (1024, 65535));
        let p = a
            .allocate(host(), 50000, Protocol::Tcp, &mut rng())
            .unwrap();
        assert_eq!(p, 50000);
    }

    #[test]
    fn preserve_falls_back_on_collision() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (1024, 65535));
        let mut r = rng();
        assert_eq!(
            a.allocate(host(), 50000, Protocol::Tcp, &mut r).unwrap(),
            50000
        );
        let p2 = a
            .allocate(ip(100, 64, 0, 11), 50000, Protocol::Tcp, &mut r)
            .unwrap();
        assert_ne!(p2, 50000);
        // Fallback is the next sequential port.
        assert_eq!(p2, 50001);
    }

    #[test]
    fn preserve_out_of_range_request() {
        let mut a = PortAllocator::new(PortAllocation::Preserve, (2000, 3000));
        let p = a.allocate(host(), 80, Protocol::Tcp, &mut rng()).unwrap();
        assert!((2000..=3000).contains(&p));
    }

    #[test]
    fn sequential_is_monotone_with_small_gaps() {
        let mut a = PortAllocator::new(PortAllocation::Sequential, (1024, 65535));
        let mut r = rng();
        let ports: Vec<u16> = (0..10)
            .map(|_| a.allocate(host(), 9999, Protocol::Tcp, &mut r).unwrap())
            .collect();
        assert_eq!(ports, (1024..1034).collect::<Vec<u16>>());
    }

    #[test]
    fn sequential_wraps_after_release() {
        let mut a = PortAllocator::new(PortAllocation::Sequential, (10, 12));
        let mut r = rng();
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 10);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 11);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 12);
        assert_eq!(
            a.allocate(host(), 0, Protocol::Udp, &mut r),
            Err(PortError::Exhausted)
        );
        a.release(11);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), 11);
    }

    #[test]
    fn random_spans_whole_space() {
        // Fig. 8a: CGNs with port translation utilize the entire port space,
        // unlike OS ephemeral ranges.
        let mut a = PortAllocator::new(PortAllocation::Random, (1024, 65535));
        let mut r = rng();
        let ports: Vec<u16> = (0..2000)
            .map(|_| a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap())
            .collect();
        let min = *ports.iter().min().unwrap();
        let max = *ports.iter().max().unwrap();
        assert!(
            min < 4000,
            "random allocation should reach low ports, min={min}"
        );
        assert!(
            max > 62000,
            "random allocation should reach high ports, max={max}"
        );
    }

    #[test]
    fn random_exhaustion() {
        let mut a = PortAllocator::new(PortAllocation::Random, (1, 4));
        let mut r = rng();
        for _ in 0..4 {
            a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        }
        assert_eq!(
            a.allocate(host(), 0, Protocol::Udp, &mut r),
            Err(PortError::Exhausted)
        );
    }

    #[test]
    fn chunk_allocation_confines_subscriber() {
        let chunk_size = 4096u16;
        let mut a = PortAllocator::new(PortAllocation::RandomChunk { chunk_size }, (1024, 65535));
        let mut r = rng();
        let mut ports = Vec::new();
        for _ in 0..100 {
            ports.push(a.allocate(host(), 0, Protocol::Tcp, &mut r).unwrap());
        }
        let (idx, size) = a.chunk_of(host()).unwrap();
        assert_eq!(size, chunk_size);
        let lo = 1024 + idx * chunk_size;
        for p in &ports {
            assert!(
                *p >= lo && (*p as u32) < lo as u32 + chunk_size as u32,
                "port {p} outside chunk"
            );
        }
        // All observed ports of one subscriber fall within a range smaller
        // than the chunk size — the paper's chunk-detection signal.
        let spread = *ports.iter().max().unwrap() - *ports.iter().min().unwrap();
        assert!(spread < chunk_size);
    }

    #[test]
    fn chunks_differ_between_subscribers() {
        let mut a = PortAllocator::new(
            PortAllocation::RandomChunk { chunk_size: 1024 },
            (1024, 65535),
        );
        let mut r = rng();
        a.allocate(ip(10, 0, 0, 1), 0, Protocol::Udp, &mut r)
            .unwrap();
        a.allocate(ip(10, 0, 0, 2), 0, Protocol::Udp, &mut r)
            .unwrap();
        let c1 = a.chunk_of(ip(10, 0, 0, 1)).unwrap().0;
        let c2 = a.chunk_of(ip(10, 0, 0, 2)).unwrap().0;
        assert_ne!(c1, c2);
    }

    #[test]
    fn chunk_capacity_limits_subscribers() {
        // 64 subscribers per IP with 1K chunks (§6.2: "we find 64 subscribers
        // per IP address in the case of a 1K port chunk").
        let mut a =
            PortAllocator::new(PortAllocation::RandomChunk { chunk_size: 1024 }, (0, 65535));
        let mut r = rng();
        let mut ok = 0;
        for i in 0..70u32 {
            let h = Ipv4Addr::from(0x0a000000u32 + i);
            if a.allocate(h, 0, Protocol::Udp, &mut r).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 64);
    }

    #[test]
    fn release_frees_capacity() {
        let mut a = PortAllocator::new(PortAllocation::Random, (1, 2));
        let mut r = rng();
        let p1 = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        let _p2 = a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap();
        assert_eq!(a.allocated(), 2);
        a.release(p1);
        assert_eq!(a.allocated(), 1);
        assert_eq!(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap(), p1);
    }

    #[test]
    #[should_panic(expected = "invalid port range")]
    fn invalid_range_panics() {
        let _ = PortAllocator::new(PortAllocation::Random, (5, 5));
    }

    proptest! {
        /// No strategy ever returns an out-of-range or duplicate port.
        #[test]
        fn prop_no_duplicates_in_range(
            strat in 0usize..4,
            lo in 1024u16..2000,
            span in 100u16..1000,
            n in 1usize..80,
            seed in any::<u64>(),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                _ => PortAllocation::RandomChunk { chunk_size: 64 },
            };
            let range = (lo, lo + span);
            let mut a = PortAllocator::new(strategy, range);
            let mut r = StdRng::seed_from_u64(seed);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                match a.allocate(host(), 40000 + i as u16, Protocol::Udp, &mut r) {
                    Ok(p) => {
                        prop_assert!(p >= range.0 && p <= range.1, "port {} out of range", p);
                        prop_assert!(seen.insert(p), "duplicate port {}", p);
                    }
                    Err(_) => break,
                }
            }
        }

        /// Allocate-then-release returns the allocator to its prior size.
        #[test]
        fn prop_release_inverse(seed in any::<u64>(), n in 1usize..50) {
            let mut a = PortAllocator::new(PortAllocation::Random, (1024, 65535));
            let mut r = StdRng::seed_from_u64(seed);
            let mut ports = Vec::new();
            for _ in 0..n {
                ports.push(a.allocate(host(), 0, Protocol::Udp, &mut r).unwrap());
            }
            for p in ports {
                a.release(p);
            }
            prop_assert_eq!(a.allocated(), 0);
        }

        /// Interleaved allocate/release never double-allocates: a port
        /// handed out is never handed out again until it was released,
        /// under every strategy.
        #[test]
        fn prop_no_double_allocation_with_churn(
            strat in 0usize..4,
            seed in any::<u64>(),
            ops in proptest::collection::vec((any::<u8>(), 0u16..200), 1..120),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                _ => PortAllocation::RandomChunk { chunk_size: 32 },
            };
            let mut a = PortAllocator::new(strategy, (2000, 2400));
            let mut r = StdRng::seed_from_u64(seed);
            let mut live = std::collections::HashSet::new();
            for (op, arg) in ops {
                if op % 3 != 0 || live.is_empty() {
                    if let Ok(p) = a.allocate(host(), 30000 + arg, Protocol::Udp, &mut r) {
                        prop_assert!(
                            live.insert(p),
                            "port {} double-allocated while still live", p
                        );
                    }
                } else {
                    // Release an arbitrary live port (deterministic pick).
                    let p = *live.iter().min().expect("nonempty");
                    live.remove(&p);
                    a.release(p);
                }
                prop_assert_eq!(a.allocated(), live.len());
            }
        }

        /// Chunk allocation confines every subscriber to one fixed
        /// `chunk_size`-aligned block for the allocator's lifetime.
        #[test]
        fn prop_chunk_bound_containment(
            chunk_exp in 4u32..9, // chunk sizes 16..256
            hosts in 1u32..8,
            per_host in 1usize..24,
            seed in any::<u64>(),
        ) {
            let chunk_size = 2u16.pow(chunk_exp);
            let mut a = PortAllocator::new(
                PortAllocation::RandomChunk { chunk_size },
                (1024, 65535),
            );
            let mut r = StdRng::seed_from_u64(seed);
            for h in 0..hosts {
                let host_ip = Ipv4Addr::from(0x0a00_0000u32 + h);
                let mut observed = Vec::new();
                for _ in 0..per_host {
                    match a.allocate(host_ip, 0, Protocol::Udp, &mut r) {
                        Ok(p) => observed.push(p),
                        Err(PortError::ChunkFull) => break,
                        Err(e) => prop_assert!(false, "unexpected error {:?}", e),
                    }
                }
                let (idx, size) = a.chunk_of(host_ip).expect("chunk assigned");
                prop_assert_eq!(size, chunk_size);
                let lo = 1024 + idx as u32 * chunk_size as u32;
                for p in observed {
                    prop_assert!(
                        (p as u32) >= lo && (p as u32) < lo + chunk_size as u32,
                        "port {} escaped chunk [{}, {})", p, lo, lo + chunk_size as u32
                    );
                }
            }
        }

        /// A released port becomes allocatable again (the sweep path:
        /// mapping expiry must return capacity), for every strategy.
        #[test]
        fn prop_port_reuse_after_release(
            strat in 0usize..4,
            seed in any::<u64>(),
        ) {
            let strategy = match strat {
                0 => PortAllocation::Preserve,
                1 => PortAllocation::Sequential,
                2 => PortAllocation::Random,
                _ => PortAllocation::RandomChunk { chunk_size: 8 },
            };
            // A range exactly one 8-port chunk wide: full exhaustion is
            // reachable under every strategy.
            let mut a = PortAllocator::new(strategy, (5000, 5007));
            let mut r = StdRng::seed_from_u64(seed);
            let mut ports = Vec::new();
            while let Ok(p) = a.allocate(host(), 5000, Protocol::Udp, &mut r) {
                ports.push(p);
            }
            prop_assert_eq!(ports.len(), 8, "whole range must be allocatable");
            // Exhausted now; releasing any port makes exactly it available.
            for &p in &ports {
                a.release(p);
                let again = a.allocate(host(), 5000, Protocol::Udp, &mut r);
                prop_assert_eq!(again, Ok(p), "released port must be reusable");
            }
            prop_assert!(a.allocate(host(), 5000, Protocol::Udp, &mut r).is_err());
        }
    }
}
