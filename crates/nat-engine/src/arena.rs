//! Chunked, 2 MiB-aligned arena storage with stable addresses.
//!
//! [`MappingStore`](crate::store::MappingStore) originally kept its
//! hot and cold slot rows in plain `Vec`s. A `Vec` doubles by
//! reallocating: at the millions-of-mappings populations a CGN is
//! dimensioned for (§6.2), every growth step memcpys the entire slab
//! through the cache — a copy storm that evicts exactly the working
//! set the burst pipeline just prefetched, and it moves every row, so
//! any address the pipeline resolved mid-burst would dangle.
//!
//! [`Arena`] removes both problems. Storage is a list of fixed-size
//! chunks allocated at 2 MiB alignment (the x86-64 hugepage size, so a
//! chunk maps onto a single TLB entry under transparent hugepages).
//! Growth appends a chunk; existing elements never move, so element
//! addresses are stable for the arena's lifetime and growth cost is
//! O(1) — no reallocation copies, ever. Indexing stays as cheap as a
//! `Vec`: the per-chunk capacity is a power of two, so `index ->
//! (chunk, offset)` is one shift and one mask.
//!
//! Elements are append-only (`push`); the store layers slot reuse on
//! top with its own free-list. The arena only drops elements when it
//! is itself dropped.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};
use std::ptr::NonNull;

/// Best-effort `madvise(MADV_HUGEPAGE)` on a fresh chunk. The chunks
/// are already 2 MiB-sized and 2 MiB-aligned, but on hosts with
/// transparent hugepages in `madvise` mode (the common server
/// default) an aligned mapping alone is *not* backed by a hugepage —
/// without the advice every random slot access at dimensioning scale
/// pays a 4 KiB-page TLB walk (tens of thousands of pages for a 16×
/// working set vs. ~one TLB entry per chunk). Advisory only: the
/// return value is ignored, and on non-Linux or non-x86-64 targets
/// this is a no-op.
///
/// # Safety
///
/// `ptr..ptr + len` must be a live allocation.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn advise_hugepage(ptr: *mut u8, len: usize) {
    const SYS_MADVISE: u64 = 28;
    const MADV_HUGEPAGE: u64 = 14;
    let _ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MADVISE => _ret,
        in("rdi") ptr,
        in("rsi") len,
        in("rdx") MADV_HUGEPAGE,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
unsafe fn advise_hugepage(_ptr: *mut u8, _len: usize) {}

/// Bytes per arena chunk: 2 MiB, the x86-64 hugepage size.
pub(crate) const ARENA_CHUNK_BYTES: usize = 2 * 1024 * 1024;

/// A chunked vector: `Vec`-shaped reads (`Index`, `get`, `iter`),
/// append-only writes, stable element addresses, O(1) growth with no
/// reallocation copies. See the module docs for why the store wants
/// those properties.
pub(crate) struct Arena<T> {
    /// 2 MiB-aligned chunks of [`Arena::CAP`] elements each; all but
    /// the last are full.
    chunks: Vec<NonNull<T>>,
    /// Initialised elements, contiguous from index 0.
    len: usize,
    _marker: PhantomData<T>,
}

impl<T> Arena<T> {
    /// Elements per chunk: the largest power of two that fits in
    /// [`ARENA_CHUNK_BYTES`] — a power of two so indexing is
    /// shift + mask instead of division.
    const CAP: usize = {
        let per = ARENA_CHUNK_BYTES / std::mem::size_of::<T>();
        assert!(per > 0, "arena element larger than a chunk");
        1 << (usize::BITS - 1 - per.leading_zeros())
    };
    const SHIFT: u32 = Self::CAP.trailing_zeros();
    const MASK: usize = Self::CAP - 1;

    pub fn new() -> Self {
        Arena {
            chunks: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    fn chunk_layout() -> Layout {
        // 2 MiB alignment dominates any element alignment; the size is
        // CAP * size_of::<T>() <= ARENA_CHUNK_BYTES, far below the
        // Layout overflow bound.
        Layout::from_size_align(Self::CAP * std::mem::size_of::<T>(), ARENA_CHUNK_BYTES)
            .expect("arena chunk layout")
    }

    /// Raw element pointer. Caller guarantees `i` is within an
    /// allocated chunk (initialised for reads).
    #[inline]
    fn slot_ptr(&self, i: usize) -> *mut T {
        // SAFETY: `i >> SHIFT` is a live chunk (checked by the Vec
        // index) and `i & MASK < CAP` stays inside its allocation.
        unsafe { self.chunks[i >> Self::SHIFT].as_ptr().add(i & Self::MASK) }
    }

    /// Initialised elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Chunks allocated so far — the `cgn_arena_chunks` gauge. Stable
    /// after warm-up: growth only ever appends, so a steady-state
    /// shard performs zero storage reallocations.
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Bounds-checked borrow, `Vec::get`-shaped (the prefetch path's
    /// speculative probe).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i < self.len {
            // SAFETY: `i < len` is initialised.
            Some(unsafe { &*self.slot_ptr(i) })
        } else {
            None
        }
    }

    /// Append an element, growing by one chunk when the last is full.
    /// Existing elements never move.
    pub fn push(&mut self, value: T) {
        let i = self.len;
        if i == self.chunks.len() << Self::SHIFT {
            self.grow();
        }
        // SAFETY: the slot is allocated (grow above) and uninitialised
        // (`i == len`); write takes ownership without dropping it.
        unsafe { std::ptr::write(self.slot_ptr(i), value) };
        self.len = i + 1;
    }

    #[cold]
    fn grow(&mut self) {
        let layout = Self::chunk_layout();
        // SAFETY: layout has non-zero size (CAP >= 1, T is not a ZST
        // by the CAP assertion's division).
        let ptr = unsafe { alloc(layout) }.cast::<T>();
        match NonNull::new(ptr) {
            Some(chunk) => {
                // SAFETY: the chunk is a live ARENA_CHUNK_BYTES
                // allocation at 2 MiB alignment; the advice call only
                // reads the mapping metadata.
                unsafe { advise_hugepage(ptr.cast(), ARENA_CHUNK_BYTES) };
                self.chunks.push(chunk);
            }
            None => handle_alloc_error(layout),
        }
    }

    /// Iterate initialised elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        // SAFETY: every index below `len` is initialised.
        (0..self.len).map(move |i| unsafe { &*self.slot_ptr(i) })
    }
}

impl<T> Index<usize> for Arena<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "arena index out of bounds");
        // SAFETY: `i < len` is initialised.
        unsafe { &*self.slot_ptr(i) }
    }
}

impl<T> IndexMut<usize> for Arena<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "arena index out of bounds");
        // SAFETY: `i < len` is initialised; `&mut self` gives
        // exclusive access.
        unsafe { &mut *self.slot_ptr(i) }
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        let layout = Self::chunk_layout();
        for (c, chunk) in self.chunks.iter().enumerate() {
            let filled = self.len.saturating_sub(c << Self::SHIFT).min(Self::CAP);
            // SAFETY: the first `filled` elements of each chunk are
            // initialised and dropped exactly once; the chunk was
            // allocated with this exact layout.
            unsafe {
                for i in 0..filled {
                    std::ptr::drop_in_place(chunk.as_ptr().add(i));
                }
                dealloc(chunk.as_ptr().cast::<u8>(), layout);
            }
        }
    }
}

// SAFETY: Arena<T> owns its elements like Vec<T>; the raw chunk
// pointers carry no extra sharing, so the auto-trait story is exactly
// Vec's. Needed because NonNull suppresses the auto impls.
unsafe impl<T: Send> Send for Arena<T> {}
unsafe impl<T: Sync> Sync for Arena<T> {}

impl<T> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn pushes_and_reads_across_chunk_boundaries() {
        // 32-byte rows -> 65536 per chunk; cross into a third chunk.
        let mut a: Arena<[u64; 4]> = Arena::new();
        let n = 2 * Arena::<[u64; 4]>::CAP + 17;
        for i in 0..n {
            a.push([i as u64; 4]);
        }
        assert_eq!(a.len(), n);
        assert_eq!(a.chunks(), 3);
        assert_eq!(a[0], [0; 4]);
        assert_eq!(a[n - 1], [(n - 1) as u64; 4]);
        assert_eq!(a.get(n), None);
        assert_eq!(a.iter().count(), n);
        let sum: u64 = a.iter().map(|r| r[0]).sum();
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn addresses_are_stable_across_growth() {
        let mut a: Arena<u64> = Arena::new();
        a.push(7);
        let p = &a[0] as *const u64;
        for i in 0..3 * Arena::<u64>::CAP {
            a.push(i as u64);
        }
        assert_eq!(p, &a[0] as *const u64, "growth must never move rows");
        assert_eq!(a[0], 7);
    }

    #[test]
    fn chunks_are_two_mib_aligned() {
        let mut a: Arena<u64> = Arena::new();
        a.push(1);
        let addr = &a[0] as *const u64 as usize;
        assert_eq!(addr % ARENA_CHUNK_BYTES, 0);
    }

    #[test]
    fn index_mut_writes_through() {
        let mut a: Arena<u64> = Arena::new();
        a.push(1);
        a.push(2);
        a[1] = 99;
        assert_eq!(a[1], 99);
    }

    #[test]
    fn drop_runs_element_destructors_once() {
        struct Witness(Rc<Cell<usize>>);
        impl Drop for Witness {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Rc::new(Cell::new(0));
        {
            let mut a: Arena<Witness> = Arena::new();
            let n = Arena::<Witness>::CAP + 3;
            for _ in 0..n {
                a.push(Witness(Rc::clone(&drops)));
            }
            assert_eq!(drops.get(), 0);
        }
        assert_eq!(drops.get(), Arena::<Witness>::CAP + 3);
    }

    #[test]
    #[should_panic(expected = "arena index out of bounds")]
    fn out_of_bounds_index_panics() {
        let a: Arena<u64> = Arena::new();
        let _ = a[0];
    }
}
