//! Engine-side runtime metrics: the hot-path instrument registry.
//!
//! Mirrors the [`crate::telemetry::EventSink`] discipline exactly: a
//! [`Nat`](crate::Nat) holds an `Option<Box<EngineMetrics>>` — absent
//! by default, so every fire site costs one untaken branch — and the
//! CI `metrics` gate pins the disabled-path cost to ≤ 2% of the
//! baseline's machine-relative throughput ratios. Unlike the event
//! sink (which streams per-event records out of the engine), the
//! registry is pure accumulation: plain counters and histograms owned
//! by the shard's thread, rendered into a [`Snapshot`] only at sample
//! barriers via [`crate::Nat::metrics_snapshot`].

use crate::nat::DropReason;
use cgn_metrics::{Counter, Histogram, Snapshot, Value};

/// The engine's instrument registry: mapping-lifecycle rates, flow
/// rejections by reason, block churn, and sweep cost. Gauges (live
/// mappings, slab occupancy, allocator fill, parked timers) are not
/// stored here — they are levels the engine already tracks, read
/// fresh at snapshot time.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    pub mappings_created: Counter,
    pub mappings_expired: Counter,
    pub rejects_port_exhausted: Counter,
    pub rejects_session_limit: Counter,
    pub block_grants: Counter,
    pub block_releases: Counter,
    pub sweeps: Counter,
    pub sweep_scans: Counter,
    /// Distribution of due-mapping batch sizes per scanning sweep —
    /// the "how bursty is expiry work" observable.
    pub sweep_batch: Histogram,
    /// Calls to [`Nat::process_burst`](crate::Nat::process_burst).
    pub bursts: Counter,
    /// Distribution of burst fill (packets per burst) — how full the
    /// driver's event-wheel drains keep the batched hot path.
    pub burst_fill: Histogram,
    /// Slot prefetches issued by the burst pipeline (resolved reuse
    /// slots; capped at the burst fill).
    pub prefetches: Counter,
    /// Calls to [`Nat::process_inbound_burst`](crate::Nat::process_inbound_burst).
    pub bursts_in: Counter,
    /// Distribution of inbound burst fill (packets per burst) — how
    /// full the driver's reply drains keep the inbound pipeline.
    pub burst_in_fill: Histogram,
    /// Slot prefetches issued by the inbound burst pipeline (resolved
    /// ext-key hits; capped at the burst fill).
    pub prefetches_in: Counter,
}

impl EngineMetrics {
    /// Sweep fire site: every sweep, plus the batch distribution when
    /// the wheel actually had due buckets to scan.
    ///
    /// The `on_*` bodies are outlined (`#[cold]`, `#[inline(never)]`)
    /// so the engine's hot functions keep their registry-disabled code
    /// size: the inlined cost of a fire site is the `Option` null
    /// check and an untaken call, never the accumulation code itself.
    #[cold]
    #[inline(never)]
    pub fn on_sweep(&mut self, scanned: bool, batch: u64) {
        self.sweeps.inc();
        if scanned {
            self.sweep_scans.inc();
            self.sweep_batch.record(batch);
        }
    }

    /// Mapping-expiry fire site (with whether the expiry returned a
    /// port block to the allocator).
    #[cold]
    #[inline(never)]
    pub fn on_expired(&mut self, block_released: bool) {
        self.mappings_expired.inc();
        if block_released {
            self.block_releases.inc();
        }
    }

    /// New-flow rejection fire site, labeled by reason.
    #[cold]
    #[inline(never)]
    pub fn on_rejected(&mut self, reason: DropReason) {
        match reason {
            DropReason::PortExhausted => self.rejects_port_exhausted.inc(),
            DropReason::SessionLimit => self.rejects_session_limit.inc(),
            _ => {}
        }
    }

    /// Mapping-creation fire site.
    #[cold]
    #[inline(never)]
    pub fn on_created(&mut self) {
        self.mappings_created.inc();
    }

    /// Port-block grant fire site.
    #[cold]
    #[inline(never)]
    pub fn on_block_grant(&mut self) {
        self.block_grants.inc();
    }

    /// Burst fire site: once per [`Nat::process_burst`](crate::Nat::process_burst)
    /// call, recording the burst fill and how many slot prefetches the
    /// resolve pass issued.
    #[cold]
    #[inline(never)]
    pub fn on_burst(&mut self, fill: u64, prefetched: u64) {
        self.bursts.inc();
        self.burst_fill.record(fill);
        self.prefetches.add(prefetched);
    }

    /// Inbound-burst fire site: once per
    /// [`Nat::process_inbound_burst`](crate::Nat::process_inbound_burst)
    /// call, recording the burst fill and how many slot prefetches the
    /// resolve pass issued. Fired only on the burst path — the scalar
    /// inbound API touches no instrument.
    #[cold]
    #[inline(never)]
    pub fn on_burst_inbound(&mut self, fill: u64, prefetched: u64) {
        self.bursts_in.inc();
        self.burst_in_fill.record(fill);
        self.prefetches_in.add(prefetched);
    }

    /// Render the accumulated counters as snapshot samples.
    pub fn render_into(&self, out: &mut Snapshot) {
        out.push(
            "cgn_mappings_created_total",
            Value::Counter(self.mappings_created.get()),
        );
        out.push(
            "cgn_mappings_expired_total",
            Value::Counter(self.mappings_expired.get()),
        );
        out.push(
            "cgn_flows_rejected_total{reason=\"port-exhausted\"}",
            Value::Counter(self.rejects_port_exhausted.get()),
        );
        out.push(
            "cgn_flows_rejected_total{reason=\"session-limit\"}",
            Value::Counter(self.rejects_session_limit.get()),
        );
        out.push(
            "cgn_block_grants_total",
            Value::Counter(self.block_grants.get()),
        );
        out.push(
            "cgn_block_releases_total",
            Value::Counter(self.block_releases.get()),
        );
        out.push("cgn_sweeps_total", Value::Counter(self.sweeps.get()));
        out.push(
            "cgn_sweep_scans_total",
            Value::Counter(self.sweep_scans.get()),
        );
        out.push(
            "cgn_sweep_batch_size",
            Value::Histogram(self.sweep_batch.clone()),
        );
        out.push("cgn_bursts_total", Value::Counter(self.bursts.get()));
        out.push("cgn_burst_fill", Value::Histogram(self.burst_fill.clone()));
        out.push(
            "cgn_prefetch_issued_total",
            Value::Counter(self.prefetches.get()),
        );
        out.push(
            "cgn_inbound_bursts_total",
            Value::Counter(self.bursts_in.get()),
        );
        out.push(
            "cgn_inbound_burst_fill",
            Value::Histogram(self.burst_in_fill.clone()),
        );
        out.push(
            "cgn_inbound_prefetch_issued_total",
            Value::Counter(self.prefetches_in.get()),
        );
        out.push(
            "cgn_prefetch_distance",
            Value::Gauge(crate::nat::PREFETCH_DISTANCE as u64),
        );
    }
}

/// The engine-side registry slot: `None` is the disabled (zero-cost)
/// state. Wrapped so `Nat` keeps its derived `Debug` readable.
pub(crate) struct MetricsSlot(pub(crate) Option<Box<EngineMetrics>>);

impl std::fmt::Debug for MetricsSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("EngineMetrics(installed)"),
            None => f.write_str("EngineMetrics(none)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_covers_every_instrument() {
        let mut m = EngineMetrics::default();
        m.mappings_created.add(3);
        m.rejects_session_limit.inc();
        m.sweep_batch.record(17);
        let mut snap = Snapshot::default();
        m.render_into(&mut snap);
        snap.normalize();
        assert_eq!(snap.scalar("cgn_mappings_created_total"), 3);
        assert_eq!(
            snap.scalar("cgn_flows_rejected_total{reason=\"session-limit\"}"),
            1
        );
        assert_eq!(
            snap.scalar("cgn_flows_rejected_total{reason=\"port-exhausted\"}"),
            0
        );
        assert_eq!(snap.scalar("cgn_sweep_batch_size"), 1, "histogram count");
        m.on_burst(32, 7);
        m.on_burst_inbound(16, 5);
        let mut snap = Snapshot::default();
        m.render_into(&mut snap);
        snap.normalize();
        assert_eq!(snap.scalar("cgn_bursts_total"), 1);
        assert_eq!(snap.scalar("cgn_prefetch_issued_total"), 7);
        assert_eq!(snap.scalar("cgn_inbound_bursts_total"), 1);
        assert_eq!(snap.scalar("cgn_inbound_prefetch_issued_total"), 5);
        assert_eq!(snap.samples.len(), 16, "every instrument renders");
    }
}
