//! NAT behaviour configuration.

use netcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Mapping (re-)use behaviour, RFC 4787 §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingBehavior {
    /// One mapping per internal endpoint, reused for every destination
    /// (the IETF-required behaviour; all "cone" NATs).
    EndpointIndependent,
    /// New mapping per destination IP.
    AddressDependent,
    /// New mapping per destination endpoint — the paper's *symmetric* NAT.
    AddressAndPortDependent,
}

/// Inbound filtering behaviour, RFC 4787 §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilteringBehavior {
    /// Any external host may send to an established mapping (*full cone*).
    EndpointIndependent,
    /// Only previously-contacted IPs (*address restricted*).
    AddressDependent,
    /// Only previously-contacted IP:port endpoints (*port-address
    /// restricted*).
    AddressAndPortDependent,
}

/// External-port selection strategy (§3 "Port Allocation", §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortAllocation {
    /// Try to keep `portext == portint`; fall back to sequential search on
    /// collision.
    Preserve,
    /// Strictly increasing allocation from the bottom of the port range.
    Sequential,
    /// Uniformly random free port.
    Random,
    /// Each internal host gets a fixed block of `chunk_size` ports; ports
    /// are drawn randomly inside the block (Fig. 8c; Cisco StarOS-style
    /// "NAT port chunks").
    RandomChunk {
        /// Ports per subscriber block. The paper observes 512..16K.
        chunk_size: u16,
    },
    /// Bulk port-block allocation: each internal host is granted one or
    /// more contiguous `block_size`-port blocks on demand; ports fill
    /// sequentially within the host's blocks, a fresh block is granted
    /// when they run out, and a fully-drained block is returned. The
    /// traceability model large deployments run (Mandalari et al.):
    /// the operator logs **one record per block grant/return** instead
    /// of one per connection.
    PortBlock {
        /// Ports per granted block.
        block_size: u16,
    },
    /// Deterministic NAT (RFC 7422): the external IP and a fixed
    /// `ports_per_host`-port block are **computed from the internal
    /// address** (no state, no RNG), so abuse attribution needs zero
    /// log records — the mapping is re-derived offline. The flip side
    /// is the hardest per-subscriber port cap of any policy.
    Deterministic {
        /// Ports owned by each internal host.
        ports_per_host: u16,
    },
}

/// External-IP selection for NATs with multiple public addresses (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pooling {
    /// A given internal IP always maps to the same external IP.
    Paired,
    /// Any external IP may be used for any new mapping (discouraged by the
    /// IETF; observed in 21% of detected CGNs, §6.2).
    Arbitrary,
}

/// The classic STUN (RFC 3489) NAT taxonomy used in §6.5 / Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StunNatType {
    /// Most restrictive: mapping depends on the destination.
    Symmetric,
    PortAddressRestricted,
    AddressRestricted,
    /// Most permissive.
    FullCone,
}

impl StunNatType {
    /// Paper ordering from most restrictive to most permissive.
    pub const ORDERED: [StunNatType; 4] = [
        StunNatType::Symmetric,
        StunNatType::PortAddressRestricted,
        StunNatType::AddressRestricted,
        StunNatType::FullCone,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StunNatType::Symmetric => "symmetric",
            StunNatType::PortAddressRestricted => "port-address restricted",
            StunNatType::AddressRestricted => "address restricted",
            StunNatType::FullCone => "full cone",
        }
    }

    /// The *most restrictive* of two cascaded NATs dominates what STUN (and
    /// NAT traversal) observes end to end (§6.5: "when multiple NAT devices
    /// reside on the path, STUN reports the most restrictive behavior").
    pub fn combine_cascade(self, other: StunNatType) -> StunNatType {
        self.min(other)
    }
}

/// Full behavioural configuration of one NAT device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NatConfig {
    pub mapping: MappingBehavior,
    pub filtering: FilteringBehavior,
    pub port_alloc: PortAllocation,
    pub pooling: Pooling,
    /// Idle timeout for UDP mappings. RFC 4787 recommends ≥ 120 s; the
    /// paper measures 10–200 s in deployed CGNs (Fig. 12).
    pub udp_timeout: SimDuration,
    /// Idle timeout for established TCP connections (RFC 5382 recommends
    /// ≥ 2 h 4 min).
    pub tcp_established_timeout: SimDuration,
    /// Timeout for half-open / closing TCP connections.
    pub tcp_transitory_timeout: SimDuration,
    /// Whether internal→external-pool traffic is looped back (§3).
    pub hairpinning: bool,
    /// If hairpinning, whether the internal source endpoint is left in
    /// place (the internal-endpoint leak mechanism of §4.1).
    pub hairpin_internal_source: bool,
    /// Whether inbound packets refresh the mapping timer (common, but not
    /// universal; RFC 4787 REQ-6 only mandates outbound refresh).
    pub refresh_inbound: bool,
    /// External port range available to the allocator.
    pub port_range: (u16, u16),
    /// Optional cap on concurrent mappings per internal host (operators
    /// report limits as low as 512 sessions per customer, §2).
    pub max_sessions_per_host: Option<u32>,
    /// Stateful firewall mode: keep per-flow state and filter inbound
    /// packets, but do **not** translate addresses. The paper's TTL-driven
    /// enumeration cannot distinguish these from NATs by state expiry
    /// alone (§6.3, Table 7: 0.5% of sessions show a stateful middlebox
    /// without an address mismatch).
    pub transparent: bool,
}

impl NatConfig {
    /// Classify this configuration in the classic STUN taxonomy.
    pub fn stun_type(&self) -> StunNatType {
        if self.mapping != MappingBehavior::EndpointIndependent {
            return StunNatType::Symmetric;
        }
        match self.filtering {
            FilteringBehavior::EndpointIndependent => StunNatType::FullCone,
            FilteringBehavior::AddressDependent => StunNatType::AddressRestricted,
            FilteringBehavior::AddressAndPortDependent => StunNatType::PortAddressRestricted,
        }
    }

    /// A typical home CPE NAT: port preserving, port-restricted cone,
    /// hairpinning without source rewrite (uTorrent/Transmission learn
    /// internal endpoints through exactly this, §4.1 calibration), 65 s UDP
    /// timeout (the paper's dominant CPE value, Fig. 12).
    pub fn home_cpe() -> NatConfig {
        NatConfig {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            port_alloc: PortAllocation::Preserve,
            pooling: Pooling::Paired,
            udp_timeout: SimDuration::from_secs(65),
            tcp_established_timeout: SimDuration::from_secs(2 * 3600),
            tcp_transitory_timeout: SimDuration::from_secs(240),
            hairpinning: true,
            hairpin_internal_source: true,
            refresh_inbound: true,
            port_range: (1024, 65535),
            max_sessions_per_host: None,
            transparent: false,
        }
    }

    /// A baseline carrier-grade NAT: endpoint-independent mapping with
    /// port-restricted filtering, random allocation over the full port
    /// space, paired pooling, 60 s UDP timeout.
    pub fn cgn_default() -> NatConfig {
        NatConfig {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            port_alloc: PortAllocation::Random,
            pooling: Pooling::Paired,
            udp_timeout: SimDuration::from_secs(60),
            tcp_established_timeout: SimDuration::from_secs(2 * 3600),
            tcp_transitory_timeout: SimDuration::from_secs(240),
            hairpinning: true,
            hairpin_internal_source: true,
            refresh_inbound: true,
            port_range: (1024, 65535),
            max_sessions_per_host: Some(4096),
            transparent: false,
        }
    }

    /// A stateful firewall: per-flow state with port-restricted filtering
    /// but no address translation. Install with the protected hosts'
    /// public addresses as the "pool".
    pub fn stateful_firewall() -> NatConfig {
        NatConfig {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            port_alloc: PortAllocation::Preserve,
            pooling: Pooling::Paired,
            udp_timeout: SimDuration::from_secs(60),
            tcp_established_timeout: SimDuration::from_secs(2 * 3600),
            tcp_transitory_timeout: SimDuration::from_secs(240),
            hairpinning: false,
            hairpin_internal_source: false,
            refresh_inbound: true,
            port_range: (1, 65535),
            max_sessions_per_host: None,
            transparent: true,
        }
    }

    /// A restrictive cellular CGN: symmetric mapping (observed for 40% of
    /// cellular CGN ASes, Fig. 13b) with per-subscriber port chunks.
    pub fn cgn_symmetric_cellular() -> NatConfig {
        NatConfig {
            mapping: MappingBehavior::AddressAndPortDependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            port_alloc: PortAllocation::RandomChunk { chunk_size: 2048 },
            pooling: Pooling::Paired,
            udp_timeout: SimDuration::from_secs(65),
            tcp_established_timeout: SimDuration::from_secs(3600),
            tcp_transitory_timeout: SimDuration::from_secs(120),
            hairpinning: false,
            hairpin_internal_source: false,
            refresh_inbound: true,
            port_range: (1024, 65535),
            max_sessions_per_host: Some(512),
            transparent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stun_classification_matrix() {
        let mut c = NatConfig::home_cpe();
        c.mapping = MappingBehavior::EndpointIndependent;
        c.filtering = FilteringBehavior::EndpointIndependent;
        assert_eq!(c.stun_type(), StunNatType::FullCone);
        c.filtering = FilteringBehavior::AddressDependent;
        assert_eq!(c.stun_type(), StunNatType::AddressRestricted);
        c.filtering = FilteringBehavior::AddressAndPortDependent;
        assert_eq!(c.stun_type(), StunNatType::PortAddressRestricted);
        // Any destination-dependent mapping is symmetric regardless of
        // filtering.
        c.mapping = MappingBehavior::AddressDependent;
        c.filtering = FilteringBehavior::EndpointIndependent;
        assert_eq!(c.stun_type(), StunNatType::Symmetric);
        c.mapping = MappingBehavior::AddressAndPortDependent;
        assert_eq!(c.stun_type(), StunNatType::Symmetric);
    }

    #[test]
    fn cascade_takes_most_restrictive() {
        use StunNatType::*;
        assert_eq!(FullCone.combine_cascade(Symmetric), Symmetric);
        assert_eq!(
            PortAddressRestricted.combine_cascade(AddressRestricted),
            PortAddressRestricted
        );
        assert_eq!(FullCone.combine_cascade(FullCone), FullCone);
    }

    #[test]
    fn restrictiveness_ordering() {
        use StunNatType::*;
        assert!(Symmetric < PortAddressRestricted);
        assert!(PortAddressRestricted < AddressRestricted);
        assert!(AddressRestricted < FullCone);
        assert_eq!(StunNatType::ORDERED[0], Symmetric);
        assert_eq!(StunNatType::ORDERED[3], FullCone);
    }

    #[test]
    fn presets_are_sane() {
        let cpe = NatConfig::home_cpe();
        assert_eq!(cpe.stun_type(), StunNatType::PortAddressRestricted);
        assert!(cpe.hairpinning && cpe.hairpin_internal_source);
        assert!(cpe.max_sessions_per_host.is_none());

        let cgn = NatConfig::cgn_default();
        assert_eq!(cgn.udp_timeout.as_secs(), 60);
        assert!(cgn.max_sessions_per_host.is_some());

        let cell = NatConfig::cgn_symmetric_cellular();
        assert_eq!(cell.stun_type(), StunNatType::Symmetric);
        assert_eq!(cell.max_sessions_per_host, Some(512));
    }

    #[test]
    fn stun_type_names() {
        assert_eq!(StunNatType::Symmetric.name(), "symmetric");
        assert_eq!(StunNatType::FullCone.name(), "full cone");
    }
}
