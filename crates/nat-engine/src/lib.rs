//! # nat-engine — a behavioural NAT44 implementation
//!
//! One engine models both kinds of middlebox the paper studies:
//!
//! * **CPE NATs** — in-home routers (scenario A/C of Fig. 2): typically
//!   port-preserving, permissive filtering, 192X internal pools;
//! * **Carrier-Grade NATs** — ISP middleboxes (scenario B/C): pools of
//!   public addresses (NAT pooling), diverse port-allocation strategies
//!   (preservation / sequential / random / chunk-random), diverse mapping
//!   and filtering behaviour, short UDP timeouts, per-subscriber limits.
//!
//! Terminology follows §3 of the paper and RFC 4787 / RFC 5382:
//!
//! * **Mapping behaviour** — when is an existing `IPint:portint →
//!   IPext:portext` mapping reused? Endpoint-independent mappings are reused
//!   for any destination; address(-and-port)-dependent mappings (the
//!   paper's *symmetric* NAT) create a new mapping per destination.
//! * **Filtering behaviour** — which inbound packets may use a mapping?
//!   *Full cone* admits anyone, *address restricted* requires a previously
//!   contacted IP, *port-address restricted* requires the exact endpoint.
//! * **Port allocation** — preservation, sequential, random, or random
//!   within a per-subscriber chunk (§6.2, Fig. 8c).
//! * **IP pooling** — *paired* (a subscriber always maps to the same
//!   external IP) or *arbitrary* (§3, §6.2).
//! * **Hairpinning** — internal-to-internal traffic addressed to the
//!   external endpoint is looped back; if the NAT does not rewrite the
//!   source, internal endpoints leak (§3, §4.1).

mod arena;
pub mod compliance;
pub mod config;
pub mod metrics;
pub mod nat;
pub mod ports;
pub mod sharded;
pub mod store;
pub mod telemetry;
pub mod wheel;

pub use compliance::{
    check as check_compliance, check_runtime, ComplianceReport, Requirement, RuntimeReport,
    RuntimeViolation,
};
pub use config::{
    FilteringBehavior, MappingBehavior, NatConfig, Pooling, PortAllocation, StunNatType,
};
pub use metrics::EngineMetrics;
pub use nat::{DropReason, Mapping, Nat, NatStats, NatVerdict, PortOccupancy, PREFETCH_DISTANCE};
pub use ports::PortAllocator;
pub use sharded::ShardedNat;
pub use store::{ContactSet, MappingStore, StoreOccupancy};
pub use telemetry::{BlockEvent, EventSink, MappingEvent, TelemetryMode};
pub use wheel::WheelGeometry;
