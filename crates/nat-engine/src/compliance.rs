//! IETF behavioural-requirement compliance checking.
//!
//! The paper observes that many deployed CGNs violate the IETF's published
//! requirements ("which, incidentally, many of our identified CGNs
//! violate", §7). This module encodes the checkable subset of those
//! requirements — RFC 4787 (NAT UDP behaviour), RFC 5382 (NAT TCP
//! behaviour) and RFC 6888 (common CGN requirements) — and evaluates a
//! [`NatConfig`] against them, so the study can report *which* rules the
//! detected population breaks.

use crate::config::{MappingBehavior, NatConfig, Pooling};
use crate::nat::Nat;
use netcore::{Protocol, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One checkable IETF requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requirement {
    /// RFC 4787 REQ-1: a NAT MUST have endpoint-independent mapping.
    /// Symmetric NATs violate this — the paper's first-listed CGN
    /// requirement (§6.5).
    Rfc4787EndpointIndependentMapping,
    /// RFC 4787 REQ-5: the UDP mapping timer MUST NOT expire in less than
    /// two minutes (120 s).
    Rfc4787UdpTimeoutAtLeast120s,
    /// RFC 4787 REQ-6: the mapping timer MUST be refreshed by outbound
    /// packets (we additionally record whether inbound refresh, which MAY
    /// be supported, is on).
    Rfc4787OutboundRefresh,
    /// RFC 5382 REQ-5: the established-TCP idle timeout MUST be ≥ 2 h 4 min.
    Rfc5382TcpEstablishedAtLeast2h4m,
    /// RFC 4787 REQ-8 / RFC 6888: hairpinning MUST be supported
    /// ("internal" clients of the same NAT must be able to reach each
    /// other via their external endpoints).
    Rfc4787Hairpinning,
    /// RFC 6888 REQ-2: a CGN SHOULD use paired IP pooling; the paper finds
    /// 21% of CGNs using arbitrary pooling, which breaks SIP/RTP-style
    /// multi-flow applications (§6.2).
    Rfc6888PairedPooling,
    /// RFC 6888 REQ-4: a CGN SHOULD support limits ensuring fairness —
    /// but a per-subscriber budget so small that a single web page
    /// exhausts it (the paper finds 512-port chunks) defeats the purpose.
    /// We flag port budgets below 1024 as a practical violation.
    Rfc6888AdequatePortBudget,
}

impl Requirement {
    pub const ALL: [Requirement; 7] = [
        Requirement::Rfc4787EndpointIndependentMapping,
        Requirement::Rfc4787UdpTimeoutAtLeast120s,
        Requirement::Rfc4787OutboundRefresh,
        Requirement::Rfc5382TcpEstablishedAtLeast2h4m,
        Requirement::Rfc4787Hairpinning,
        Requirement::Rfc6888PairedPooling,
        Requirement::Rfc6888AdequatePortBudget,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Requirement::Rfc4787EndpointIndependentMapping => {
                "RFC 4787 REQ-1 endpoint-independent mapping"
            }
            Requirement::Rfc4787UdpTimeoutAtLeast120s => "RFC 4787 REQ-5 UDP timeout >= 120 s",
            Requirement::Rfc4787OutboundRefresh => "RFC 4787 REQ-6 outbound refresh",
            Requirement::Rfc5382TcpEstablishedAtLeast2h4m => {
                "RFC 5382 REQ-5 TCP established timeout >= 2 h 4 min"
            }
            Requirement::Rfc4787Hairpinning => "RFC 4787 REQ-8 hairpinning support",
            Requirement::Rfc6888PairedPooling => "RFC 6888 REQ-2 paired pooling",
            Requirement::Rfc6888AdequatePortBudget => "RFC 6888 REQ-4 adequate port budget",
        }
    }
}

/// Outcome of checking one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplianceReport {
    pub violations: Vec<Requirement>,
}

impl ComplianceReport {
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn violates(&self, r: Requirement) -> bool {
        self.violations.contains(&r)
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_compliant() {
            return f.write_str("compliant");
        }
        let labels: Vec<&str> = self.violations.iter().map(|v| v.label()).collect();
        write!(f, "violates: {}", labels.join("; "))
    }
}

/// Check a NAT configuration against the IETF requirements.
///
/// Stateful-firewall configurations (`transparent`) are exempt from the
/// translation-specific requirements.
pub fn check(config: &NatConfig) -> ComplianceReport {
    let mut violations = Vec::new();
    if config.transparent {
        return ComplianceReport { violations };
    }
    if config.mapping != MappingBehavior::EndpointIndependent {
        violations.push(Requirement::Rfc4787EndpointIndependentMapping);
    }
    if config.udp_timeout < SimDuration::from_secs(120) {
        violations.push(Requirement::Rfc4787UdpTimeoutAtLeast120s);
    }
    // The engine always refreshes on outbound traffic; the requirement is
    // violated only by configurations that could not refresh at all
    // (none are expressible), so this check is structurally satisfied —
    // kept for completeness and for external configs deserialized from
    // elsewhere.
    if config.tcp_established_timeout < SimDuration::from_secs(2 * 3600 + 4 * 60) {
        violations.push(Requirement::Rfc5382TcpEstablishedAtLeast2h4m);
    }
    if !config.hairpinning {
        violations.push(Requirement::Rfc4787Hairpinning);
    }
    if config.pooling != Pooling::Paired {
        violations.push(Requirement::Rfc6888PairedPooling);
    }
    let budget = match config.port_alloc {
        crate::config::PortAllocation::RandomChunk { chunk_size } => chunk_size as u32,
        // Deterministic NAT hard-caps every subscriber at its computed
        // block; port-block allocation grows by whole blocks, so its
        // effective budget is the session limit, not the block size.
        crate::config::PortAllocation::Deterministic { ports_per_host } => ports_per_host as u32,
        _ => config.max_sessions_per_host.unwrap_or(u32::MAX),
    };
    if budget < 1024 {
        violations.push(Requirement::Rfc6888AdequatePortBudget);
    }
    ComplianceReport { violations }
}

/// Aggregate violation counts over a population of configurations — the
/// §7 summary ("many of our identified CGNs violate" the requirements).
pub fn violation_census<'a>(
    configs: impl Iterator<Item = &'a NatConfig>,
) -> (usize, usize, Vec<(Requirement, usize)>) {
    let mut total = 0;
    let mut noncompliant = 0;
    let mut counts: Vec<(Requirement, usize)> = Requirement::ALL.iter().map(|r| (*r, 0)).collect();
    for cfg in configs {
        total += 1;
        let rep = check(cfg);
        if !rep.is_compliant() {
            noncompliant += 1;
        }
        for v in &rep.violations {
            if let Some(e) = counts.iter_mut().find(|(r, _)| r == v) {
                e.1 += 1;
            }
        }
    }
    (total, noncompliant, counts)
}

/// A violated invariant of a **live** engine, found by
/// [`check_runtime`]. Where [`check`] audits a configuration against
/// the IETF's published requirements, this audits a running device's
/// slab store against the limits its configuration promises — the
/// enforcement side of RFC 6888 REQ-4 ("a CGN SHOULD support limits")
/// plus the store's own accounting invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeViolation {
    /// A host holds more live (unexpired) mappings than the configured
    /// per-subscriber session cap permits.
    SessionCapExceeded { host: Ipv4Addr, live: u32, cap: u32 },
    /// A port allocator reports more allocated ports than its range
    /// holds.
    AllocatorOverCommitted {
        ext_ip: Ipv4Addr,
        proto: Protocol,
        allocated: usize,
        capacity: usize,
    },
    /// The slab's live/free/arena counters disagree, or the live count
    /// does not match the engine's mapping count.
    StoreAccounting {
        slots: u64,
        live: u64,
        free: u64,
        /// Occupied slots recounted by iterating the arena.
        occupied_slots: u64,
    },
}

/// Outcome of [`check_runtime`]: empty `violations` means the live
/// store upholds every checked invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeReport {
    pub violations: Vec<RuntimeViolation>,
    /// Hosts whose live-session counts were audited.
    pub hosts_checked: usize,
    /// Port allocators audited.
    pub allocators_checked: usize,
}

impl RuntimeReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audit a live [`Nat`] at virtual time `now`: per-host live mappings
/// against the configured session cap, allocator fill against range
/// capacity, and the slab store's occupancy arithmetic. All reads go
/// through the store-backed paths (`ports_by_host`, `port_occupancy`,
/// `store_occupancy`), so this doubles as a cross-check of the
/// storage layer itself.
pub fn check_runtime(nat: &Nat, now: SimTime) -> RuntimeReport {
    let mut report = RuntimeReport::default();

    let by_host = nat.ports_by_host(now);
    report.hosts_checked = by_host.len();
    if let Some(cap) = nat.config().max_sessions_per_host {
        for (host, live) in by_host {
            if live > cap {
                report
                    .violations
                    .push(RuntimeViolation::SessionCapExceeded { host, live, cap });
            }
        }
    }

    let occupancy = nat.port_occupancy();
    report.allocators_checked = occupancy.len();
    for o in occupancy {
        if o.allocated > o.capacity {
            report
                .violations
                .push(RuntimeViolation::AllocatorOverCommitted {
                    ext_ip: o.ext_ip,
                    proto: o.proto,
                    allocated: o.allocated,
                    capacity: o.capacity,
                });
        }
    }

    let store = nat.store_occupancy();
    // Recount occupied slots independently of the store's `live`
    // bookkeeping — `mapping_count` returns the tracked counter, so
    // comparing the two against each other alone would be circular.
    let occupied = nat.mappings().count() as u64;
    if store.live + store.free != store.slots || store.live != occupied {
        report.violations.push(RuntimeViolation::StoreAccounting {
            slots: store.slots,
            live: store.live,
            free: store.free,
            occupied_slots: occupied,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilteringBehavior, PortAllocation};

    #[test]
    fn rfc_compliant_config_passes() {
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(120);
        cfg.tcp_established_timeout = SimDuration::from_secs(2 * 3600 + 4 * 60);
        cfg.hairpinning = true;
        cfg.pooling = Pooling::Paired;
        cfg.max_sessions_per_host = Some(4096);
        let rep = check(&cfg);
        assert!(rep.is_compliant(), "{rep}");
    }

    #[test]
    fn symmetric_mapping_violates_req1() {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        assert!(check(&cfg).violates(Requirement::Rfc4787EndpointIndependentMapping));
        cfg.mapping = MappingBehavior::AddressDependent;
        assert!(check(&cfg).violates(Requirement::Rfc4787EndpointIndependentMapping));
    }

    #[test]
    fn short_udp_timeout_violates_req5() {
        // The paper's measured CGNs (10–200 s, Fig. 12) almost all violate
        // the 120 s floor — exactly the §7 observation.
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(35);
        assert!(check(&cfg).violates(Requirement::Rfc4787UdpTimeoutAtLeast120s));
        cfg.udp_timeout = SimDuration::from_secs(120);
        assert!(!check(&cfg).violates(Requirement::Rfc4787UdpTimeoutAtLeast120s));
    }

    #[test]
    fn tcp_established_floor() {
        let mut cfg = NatConfig::cgn_default();
        cfg.tcp_established_timeout = SimDuration::from_secs(3600);
        assert!(check(&cfg).violates(Requirement::Rfc5382TcpEstablishedAtLeast2h4m));
    }

    #[test]
    fn hairpinning_and_pooling() {
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        cfg.pooling = Pooling::Arbitrary;
        let rep = check(&cfg);
        assert!(rep.violates(Requirement::Rfc4787Hairpinning));
        assert!(rep.violates(Requirement::Rfc6888PairedPooling));
    }

    #[test]
    fn tiny_port_chunks_flagged() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = PortAllocation::RandomChunk { chunk_size: 512 };
        assert!(check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
        cfg.port_alloc = PortAllocation::RandomChunk { chunk_size: 4096 };
        assert!(!check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
        // A 512-session cap without chunks is also a tiny budget.
        cfg.port_alloc = PortAllocation::Random;
        cfg.max_sessions_per_host = Some(512);
        assert!(check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
    }

    #[test]
    fn firewalls_exempt() {
        let cfg = NatConfig::stateful_firewall();
        assert!(check(&cfg).is_compliant());
    }

    #[test]
    fn census_counts() {
        let mut a = NatConfig::cgn_default(); // 60 s UDP → one violation
        let mut b = NatConfig::cgn_default();
        b.udp_timeout = SimDuration::from_secs(150);
        b.mapping = MappingBehavior::AddressAndPortDependent;
        a.hairpinning = true;
        let (total, bad, counts) = violation_census([&a, &b].into_iter());
        assert_eq!(total, 2);
        assert_eq!(bad, 2);
        let udp = counts
            .iter()
            .find(|(r, _)| *r == Requirement::Rfc4787UdpTimeoutAtLeast120s)
            .expect("listed");
        assert_eq!(udp.1, 1);
        let eim = counts
            .iter()
            .find(|(r, _)| *r == Requirement::Rfc4787EndpointIndependentMapping)
            .expect("listed");
        assert_eq!(eim.1, 1);
    }

    #[test]
    fn display_formats() {
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        let rep = check(&cfg);
        let s = rep.to_string();
        assert!(s.contains("hairpinning"), "{s}");
        cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(600);
        let _ = check(&cfg);
    }

    #[test]
    fn runtime_check_is_clean_after_churn() {
        use netcore::{ip, Endpoint, Packet};
        let mut cfg = NatConfig::cgn_default();
        cfg.max_sessions_per_host = Some(8);
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = Nat::new(cfg, vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)], 11);
        let server = |p: u16| Endpoint::new(ip(203, 0, 113, 10), p);
        for round in 0..3u64 {
            for h in 1..=6u8 {
                for f in 0..6u16 {
                    let src = Endpoint::new(ip(100, 64, 0, h), 40_000 + f);
                    let _ = n.process_outbound(
                        Packet::udp(src, server(1000 + f), vec![]),
                        SimTime::from_secs(round * 90),
                    );
                }
            }
            n.sweep(SimTime::from_secs(round * 90 + 80));
            let rep = check_runtime(&n, SimTime::from_secs(round * 90 + 80));
            assert!(rep.is_clean(), "round {round}: {:?}", rep.violations);
            assert!(rep.allocators_checked >= 1);
        }
        // With live mappings present, the audit sees the hosts.
        let src = Endpoint::new(ip(100, 64, 0, 1), 41_000);
        let _ = n.process_outbound(Packet::udp(src, server(1), vec![]), SimTime::from_secs(300));
        let rep = check_runtime(&n, SimTime::from_secs(300));
        assert!(rep.is_clean(), "{:?}", rep.violations);
        assert!(rep.hosts_checked > 0);
    }

    #[test]
    fn home_cpe_violations_match_reality() {
        // Typical home CPE: the 65 s UDP timeout violates REQ-5, and the
        // common "2 hours" TCP default misses RFC 5382's 2 h 4 min floor
        // by four minutes — matching the paper's Fig. 12 finding that
        // deployed hardware ignores the IETF floors.
        let rep = check(&NatConfig::home_cpe());
        assert_eq!(
            rep.violations,
            vec![
                Requirement::Rfc4787UdpTimeoutAtLeast120s,
                Requirement::Rfc5382TcpEstablishedAtLeast2h4m,
            ]
        );
        let _ = FilteringBehavior::EndpointIndependent; // keep import used
    }
}
