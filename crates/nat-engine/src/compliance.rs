//! IETF behavioural-requirement compliance checking.
//!
//! The paper observes that many deployed CGNs violate the IETF's published
//! requirements ("which, incidentally, many of our identified CGNs
//! violate", §7). This module encodes the checkable subset of those
//! requirements — RFC 4787 (NAT UDP behaviour), RFC 5382 (NAT TCP
//! behaviour) and RFC 6888 (common CGN requirements) — and evaluates a
//! [`NatConfig`] against them, so the study can report *which* rules the
//! detected population breaks.

use crate::config::{MappingBehavior, NatConfig, Pooling};
use netcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One checkable IETF requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requirement {
    /// RFC 4787 REQ-1: a NAT MUST have endpoint-independent mapping.
    /// Symmetric NATs violate this — the paper's first-listed CGN
    /// requirement (§6.5).
    Rfc4787EndpointIndependentMapping,
    /// RFC 4787 REQ-5: the UDP mapping timer MUST NOT expire in less than
    /// two minutes (120 s).
    Rfc4787UdpTimeoutAtLeast120s,
    /// RFC 4787 REQ-6: the mapping timer MUST be refreshed by outbound
    /// packets (we additionally record whether inbound refresh, which MAY
    /// be supported, is on).
    Rfc4787OutboundRefresh,
    /// RFC 5382 REQ-5: the established-TCP idle timeout MUST be ≥ 2 h 4 min.
    Rfc5382TcpEstablishedAtLeast2h4m,
    /// RFC 4787 REQ-8 / RFC 6888: hairpinning MUST be supported
    /// ("internal" clients of the same NAT must be able to reach each
    /// other via their external endpoints).
    Rfc4787Hairpinning,
    /// RFC 6888 REQ-2: a CGN SHOULD use paired IP pooling; the paper finds
    /// 21% of CGNs using arbitrary pooling, which breaks SIP/RTP-style
    /// multi-flow applications (§6.2).
    Rfc6888PairedPooling,
    /// RFC 6888 REQ-4: a CGN SHOULD support limits ensuring fairness —
    /// but a per-subscriber budget so small that a single web page
    /// exhausts it (the paper finds 512-port chunks) defeats the purpose.
    /// We flag port budgets below 1024 as a practical violation.
    Rfc6888AdequatePortBudget,
}

impl Requirement {
    pub const ALL: [Requirement; 7] = [
        Requirement::Rfc4787EndpointIndependentMapping,
        Requirement::Rfc4787UdpTimeoutAtLeast120s,
        Requirement::Rfc4787OutboundRefresh,
        Requirement::Rfc5382TcpEstablishedAtLeast2h4m,
        Requirement::Rfc4787Hairpinning,
        Requirement::Rfc6888PairedPooling,
        Requirement::Rfc6888AdequatePortBudget,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Requirement::Rfc4787EndpointIndependentMapping => {
                "RFC 4787 REQ-1 endpoint-independent mapping"
            }
            Requirement::Rfc4787UdpTimeoutAtLeast120s => "RFC 4787 REQ-5 UDP timeout >= 120 s",
            Requirement::Rfc4787OutboundRefresh => "RFC 4787 REQ-6 outbound refresh",
            Requirement::Rfc5382TcpEstablishedAtLeast2h4m => {
                "RFC 5382 REQ-5 TCP established timeout >= 2 h 4 min"
            }
            Requirement::Rfc4787Hairpinning => "RFC 4787 REQ-8 hairpinning support",
            Requirement::Rfc6888PairedPooling => "RFC 6888 REQ-2 paired pooling",
            Requirement::Rfc6888AdequatePortBudget => "RFC 6888 REQ-4 adequate port budget",
        }
    }
}

/// Outcome of checking one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplianceReport {
    pub violations: Vec<Requirement>,
}

impl ComplianceReport {
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn violates(&self, r: Requirement) -> bool {
        self.violations.contains(&r)
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_compliant() {
            return f.write_str("compliant");
        }
        let labels: Vec<&str> = self.violations.iter().map(|v| v.label()).collect();
        write!(f, "violates: {}", labels.join("; "))
    }
}

/// Check a NAT configuration against the IETF requirements.
///
/// Stateful-firewall configurations (`transparent`) are exempt from the
/// translation-specific requirements.
pub fn check(config: &NatConfig) -> ComplianceReport {
    let mut violations = Vec::new();
    if config.transparent {
        return ComplianceReport { violations };
    }
    if config.mapping != MappingBehavior::EndpointIndependent {
        violations.push(Requirement::Rfc4787EndpointIndependentMapping);
    }
    if config.udp_timeout < SimDuration::from_secs(120) {
        violations.push(Requirement::Rfc4787UdpTimeoutAtLeast120s);
    }
    // The engine always refreshes on outbound traffic; the requirement is
    // violated only by configurations that could not refresh at all
    // (none are expressible), so this check is structurally satisfied —
    // kept for completeness and for external configs deserialized from
    // elsewhere.
    if config.tcp_established_timeout < SimDuration::from_secs(2 * 3600 + 4 * 60) {
        violations.push(Requirement::Rfc5382TcpEstablishedAtLeast2h4m);
    }
    if !config.hairpinning {
        violations.push(Requirement::Rfc4787Hairpinning);
    }
    if config.pooling != Pooling::Paired {
        violations.push(Requirement::Rfc6888PairedPooling);
    }
    let budget = match config.port_alloc {
        crate::config::PortAllocation::RandomChunk { chunk_size } => chunk_size as u32,
        _ => config.max_sessions_per_host.unwrap_or(u32::MAX),
    };
    if budget < 1024 {
        violations.push(Requirement::Rfc6888AdequatePortBudget);
    }
    ComplianceReport { violations }
}

/// Aggregate violation counts over a population of configurations — the
/// §7 summary ("many of our identified CGNs violate" the requirements).
pub fn violation_census<'a>(
    configs: impl Iterator<Item = &'a NatConfig>,
) -> (usize, usize, Vec<(Requirement, usize)>) {
    let mut total = 0;
    let mut noncompliant = 0;
    let mut counts: Vec<(Requirement, usize)> = Requirement::ALL.iter().map(|r| (*r, 0)).collect();
    for cfg in configs {
        total += 1;
        let rep = check(cfg);
        if !rep.is_compliant() {
            noncompliant += 1;
        }
        for v in &rep.violations {
            if let Some(e) = counts.iter_mut().find(|(r, _)| r == v) {
                e.1 += 1;
            }
        }
    }
    (total, noncompliant, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilteringBehavior, PortAllocation};

    #[test]
    fn rfc_compliant_config_passes() {
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(120);
        cfg.tcp_established_timeout = SimDuration::from_secs(2 * 3600 + 4 * 60);
        cfg.hairpinning = true;
        cfg.pooling = Pooling::Paired;
        cfg.max_sessions_per_host = Some(4096);
        let rep = check(&cfg);
        assert!(rep.is_compliant(), "{rep}");
    }

    #[test]
    fn symmetric_mapping_violates_req1() {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        assert!(check(&cfg).violates(Requirement::Rfc4787EndpointIndependentMapping));
        cfg.mapping = MappingBehavior::AddressDependent;
        assert!(check(&cfg).violates(Requirement::Rfc4787EndpointIndependentMapping));
    }

    #[test]
    fn short_udp_timeout_violates_req5() {
        // The paper's measured CGNs (10–200 s, Fig. 12) almost all violate
        // the 120 s floor — exactly the §7 observation.
        let mut cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(35);
        assert!(check(&cfg).violates(Requirement::Rfc4787UdpTimeoutAtLeast120s));
        cfg.udp_timeout = SimDuration::from_secs(120);
        assert!(!check(&cfg).violates(Requirement::Rfc4787UdpTimeoutAtLeast120s));
    }

    #[test]
    fn tcp_established_floor() {
        let mut cfg = NatConfig::cgn_default();
        cfg.tcp_established_timeout = SimDuration::from_secs(3600);
        assert!(check(&cfg).violates(Requirement::Rfc5382TcpEstablishedAtLeast2h4m));
    }

    #[test]
    fn hairpinning_and_pooling() {
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        cfg.pooling = Pooling::Arbitrary;
        let rep = check(&cfg);
        assert!(rep.violates(Requirement::Rfc4787Hairpinning));
        assert!(rep.violates(Requirement::Rfc6888PairedPooling));
    }

    #[test]
    fn tiny_port_chunks_flagged() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = PortAllocation::RandomChunk { chunk_size: 512 };
        assert!(check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
        cfg.port_alloc = PortAllocation::RandomChunk { chunk_size: 4096 };
        assert!(!check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
        // A 512-session cap without chunks is also a tiny budget.
        cfg.port_alloc = PortAllocation::Random;
        cfg.max_sessions_per_host = Some(512);
        assert!(check(&cfg).violates(Requirement::Rfc6888AdequatePortBudget));
    }

    #[test]
    fn firewalls_exempt() {
        let cfg = NatConfig::stateful_firewall();
        assert!(check(&cfg).is_compliant());
    }

    #[test]
    fn census_counts() {
        let mut a = NatConfig::cgn_default(); // 60 s UDP → one violation
        let mut b = NatConfig::cgn_default();
        b.udp_timeout = SimDuration::from_secs(150);
        b.mapping = MappingBehavior::AddressAndPortDependent;
        a.hairpinning = true;
        let (total, bad, counts) = violation_census([&a, &b].into_iter());
        assert_eq!(total, 2);
        assert_eq!(bad, 2);
        let udp = counts
            .iter()
            .find(|(r, _)| *r == Requirement::Rfc4787UdpTimeoutAtLeast120s)
            .expect("listed");
        assert_eq!(udp.1, 1);
        let eim = counts
            .iter()
            .find(|(r, _)| *r == Requirement::Rfc4787EndpointIndependentMapping)
            .expect("listed");
        assert_eq!(eim.1, 1);
    }

    #[test]
    fn display_formats() {
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        let rep = check(&cfg);
        let s = rep.to_string();
        assert!(s.contains("hairpinning"), "{s}");
        cfg = NatConfig::cgn_default();
        cfg.udp_timeout = SimDuration::from_secs(600);
        let _ = check(&cfg);
    }

    #[test]
    fn home_cpe_violations_match_reality() {
        // Typical home CPE: the 65 s UDP timeout violates REQ-5, and the
        // common "2 hours" TCP default misses RFC 5382's 2 h 4 min floor
        // by four minutes — matching the paper's Fig. 12 finding that
        // deployed hardware ignores the IETF floors.
        let rep = check(&NatConfig::home_cpe());
        assert_eq!(
            rep.violations,
            vec![
                Requirement::Rfc4787UdpTimeoutAtLeast120s,
                Requirement::Rfc5382TcpEstablishedAtLeast2h4m,
            ]
        );
        let _ = FilteringBehavior::EndpointIndependent; // keep import used
    }
}
