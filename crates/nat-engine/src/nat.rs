//! The NAT device: translation state machine.
//!
//! A [`Nat`] owns a pool of external IPs, per-IP port allocators and a table
//! of [`Mapping`]s with idle timeouts. The two entry points mirror how the
//! simulator hands packets to an on-path middlebox:
//!
//! * [`Nat::process_outbound`] — packet travelling from the internal realm
//!   toward the core;
//! * [`Nat::process_inbound`] — packet arriving at one of the NAT's
//!   external addresses.
//!
//! Both return a [`NatVerdict`]: forward the translated packet, loop it back
//! into the internal realm (hairpinning), or drop it with a reason that the
//! stats record — the observable that the paper's measurements build on.

use crate::config::{FilteringBehavior, NatConfig, Pooling, PortAllocation, StunNatType};
use crate::metrics::{EngineMetrics, MetricsSlot};
use crate::ports::{self, PortAllocator, PortError};
use crate::store::{MappingStore, StoreOccupancy, TcpConnState};
use crate::telemetry::{BlockEvent, EventSink, MappingEvent, SinkSlot};
use cgn_metrics::{Snapshot, Value};
use cgn_trace::{FlowKey as TraceKey, Phase, ShardTracer};
use netcore::{Endpoint, Packet, PacketBody, Protocol, SimDuration, SimTime, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

pub use crate::store::Mapping;

/// How many packets ahead of the translation cursor
/// [`Nat::process_burst`] issues software prefetches for resolved
/// slots. One slot costs two cache lines (hot row + cold slab row);
/// a handful of packets of lead time is enough to overlap the LLC
/// miss with the preceding translations without thrashing the L1.
pub const PREFETCH_DISTANCE: usize = 4;

/// Outcome of processing one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum NatVerdict {
    /// Translated; continue along the path (outbound: toward the core,
    /// inbound: into the internal realm).
    Forward(Packet),
    /// Outbound packet addressed to this NAT's own pool was looped back;
    /// deliver to the internal destination in `Packet::dst`.
    Hairpin(Packet),
    /// Dropped.
    Drop(DropReason),
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Inbound packet without a matching mapping (or the mapping idled out
    /// — exactly what the TTL-driven enumeration test detects).
    NoMapping,
    /// Inbound packet rejected by the filtering policy.
    Filtered,
    /// External port space exhausted.
    PortExhausted,
    /// Per-subscriber session limit reached (§2: operators report limits
    /// down to 512 sessions per customer).
    SessionLimit,
    /// Hairpinning disabled but the packet targeted the external pool.
    NoHairpin,
    /// ICMP error that could not be matched to a flow.
    UnmatchedIcmp,
}

/// Observable counters.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NatStats {
    pub out_packets: u64,
    pub in_packets: u64,
    pub hairpins: u64,
    pub mappings_created: u64,
    pub mappings_expired: u64,
    /// High-water mark of concurrent mappings — the state-table size a
    /// real CGN must provision for (the dimensioning question of §6.2).
    pub peak_mappings: u64,
    /// Calls to [`Nat::sweep`].
    pub sweeps: u64,
    /// Sweeps that inspected at least one timer-wheel entry. The
    /// difference to `sweeps` counts invocations that found no due
    /// bucket and did zero per-mapping work (no mapping could have
    /// expired yet).
    pub sweep_scans: u64,
    pub drops: u64,
    pub drop_no_mapping: u64,
    pub drop_filtered: u64,
    pub drop_port_exhausted: u64,
    pub drop_session_limit: u64,
    pub drop_no_hairpin: u64,
    pub drop_unmatched_icmp: u64,
}

impl NatStats {
    /// Fold another device's counters into this one (used when several
    /// CGN instances serve one subscriber population). All counters
    /// add, including `peak_mappings`: instances hold disjoint state
    /// tables, so the sum of per-device peaks is a conservative upper
    /// bound on fleet-wide concurrent state (per-device peaks need not
    /// coincide in time; the sampled demand series gives the exact
    /// simultaneous peak).
    pub fn merge(&mut self, other: &NatStats) {
        self.out_packets += other.out_packets;
        self.in_packets += other.in_packets;
        self.hairpins += other.hairpins;
        self.mappings_created += other.mappings_created;
        self.mappings_expired += other.mappings_expired;
        self.peak_mappings += other.peak_mappings;
        self.sweeps += other.sweeps;
        self.sweep_scans += other.sweep_scans;
        self.drops += other.drops;
        self.drop_no_mapping += other.drop_no_mapping;
        self.drop_filtered += other.drop_filtered;
        self.drop_port_exhausted += other.drop_port_exhausted;
        self.drop_session_limit += other.drop_session_limit;
        self.drop_no_hairpin += other.drop_no_hairpin;
        self.drop_unmatched_icmp += other.drop_unmatched_icmp;
    }

    fn record_drop(&mut self, r: DropReason) {
        self.drops += 1;
        match r {
            DropReason::NoMapping => self.drop_no_mapping += 1,
            DropReason::Filtered => self.drop_filtered += 1,
            DropReason::PortExhausted => self.drop_port_exhausted += 1,
            DropReason::SessionLimit => self.drop_session_limit += 1,
            DropReason::NoHairpin => self.drop_no_hairpin += 1,
            DropReason::UnmatchedIcmp => self.drop_unmatched_icmp += 1,
        }
    }
}

/// Fill level of one (external IP, protocol) port allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortOccupancy {
    pub ext_ip: Ipv4Addr,
    pub proto: Protocol,
    pub allocated: usize,
    pub capacity: usize,
}

impl PortOccupancy {
    /// Fraction of the port range in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.allocated as f64 / self.capacity.max(1) as f64
    }
}

/// A NAT device instance.
///
/// Translation state lives in a [`MappingStore`] — a slab arena with
/// interned packed indices and a timer wheel for expiry (see
/// [`crate::store`]). The device layer owns what the store does not:
/// behaviour configuration, the external address pool, the RNG, the
/// per-pool [`PortAllocator`]s (indexed by the store's interned pool
/// ids) and the observable [`NatStats`].
#[derive(Debug)]
pub struct Nat {
    config: NatConfig,
    external_ips: Vec<Ipv4Addr>,
    rng: StdRng,
    /// One allocator per interned `(external IP, protocol)` pool id;
    /// `None` for pools that never allocated (transparent firewalls).
    allocators: Vec<Option<PortAllocator>>,
    store: MappingStore,
    stats: NatStats,
    /// Telemetry sink (mapping create/expire, block grant/return);
    /// `None` — the default — costs one untaken branch per event site.
    sink: SinkSlot,
    /// Runtime-metrics registry (see [`crate::metrics`]); same
    /// `Option`-slot discipline as the sink: absent by default, one
    /// untaken branch per fire site when disabled.
    metrics: MetricsSlot,
    /// Flow/phase tracer (see [`cgn_trace`]); same `Option`-slot
    /// discipline again: absent by default, one untaken branch per
    /// fire site when disabled.
    tracer: TraceSlot,
}

/// `Option`-slot wrapper for the tracer; the custom `Debug` keeps
/// `Nat`'s derive from dumping flight-recorder contents (and keeps
/// run digests independent of ring state).
pub(crate) struct TraceSlot(pub(crate) Option<Box<ShardTracer>>);

impl std::fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("ShardTracer(installed)"),
            None => f.write_str("ShardTracer(none)"),
        }
    }
}

impl Nat {
    /// Create a NAT with the given behaviour, external address pool and RNG
    /// seed (the engine is deterministic given the seed).
    ///
    /// Panics if `external_ips` is empty.
    pub fn new(config: NatConfig, external_ips: Vec<Ipv4Addr>, seed: u64) -> Self {
        assert!(
            !external_ips.is_empty(),
            "NAT needs at least one external IP"
        );
        Nat {
            config,
            external_ips,
            rng: StdRng::seed_from_u64(seed),
            allocators: Vec::new(),
            store: MappingStore::new(),
            stats: NatStats::default(),
            sink: SinkSlot(None),
            metrics: MetricsSlot(None),
            tracer: TraceSlot(None),
        }
    }

    pub fn config(&self) -> &NatConfig {
        &self.config
    }

    /// Install a telemetry sink: the engine fires mapping
    /// create/expire and block grant/return events into it (see
    /// [`crate::telemetry`]). Replaces any previously installed sink.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = SinkSlot(Some(sink));
    }

    /// Remove and return the installed telemetry sink, if any,
    /// returning the engine to the zero-cost disabled state.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.0.take()
    }

    /// Install a runtime-metrics registry: lifecycle fire sites
    /// accumulate into it until [`Nat::take_metrics`] (see
    /// [`crate::metrics`]). Replaces any previously installed one.
    pub fn set_metrics(&mut self, metrics: Box<EngineMetrics>) {
        self.metrics = MetricsSlot(Some(metrics));
    }

    /// Remove and return the installed metrics registry, if any,
    /// returning the engine to the zero-cost disabled state.
    pub fn take_metrics(&mut self) -> Option<Box<EngineMetrics>> {
        self.metrics.0.take()
    }

    /// Install a flow/phase tracer: lifecycle fire sites record
    /// sampled-flow spans into its flight recorder and the burst
    /// pipeline's passes record wall-clock phase durations (see
    /// [`cgn_trace`]). Replaces any previously installed tracer.
    pub fn set_tracer(&mut self, tracer: Box<ShardTracer>) {
        self.tracer = TraceSlot(Some(tracer));
    }

    /// Remove and return the installed tracer, if any, returning the
    /// engine to the zero-cost disabled state.
    pub fn take_tracer(&mut self) -> Option<Box<ShardTracer>> {
        self.tracer.0.take()
    }

    /// The installed tracer, if any (flight-recorder reads, phase
    /// histogram reads).
    pub fn tracer(&self) -> Option<&ShardTracer> {
        self.tracer.0.as_deref()
    }

    /// Mutable access to the installed tracer (the driver records its
    /// own pipeline phases through the owning shard's tracer).
    pub fn tracer_mut(&mut self) -> Option<&mut ShardTracer> {
        self.tracer.0.as_deref_mut()
    }

    /// Render this shard's metrics into a snapshot: the registry's
    /// accumulated counters plus barrier-time gauges the engine
    /// already tracks (live mappings, slab occupancy, parked timers,
    /// wheel-cascade work, allocator fill per pool). `None` when no
    /// registry is installed. Values depend only on engine state, so
    /// snapshots merged in shard order are bit-identical for any
    /// worker-thread count.
    pub fn metrics_snapshot(&self) -> Option<Snapshot> {
        let m = self.metrics.0.as_deref()?;
        let mut out = Snapshot::default();
        m.render_into(&mut out);
        let occ = self.store.occupancy();
        out.push("cgn_mappings_live", Value::Gauge(occ.live));
        out.push("cgn_slab_slots", Value::Gauge(occ.slots));
        out.push("cgn_slab_free_slots", Value::Gauge(occ.free));
        out.push("cgn_arena_chunks", Value::Gauge(self.store.arena_chunks()));
        out.push(
            "cgn_arena_slots_free",
            Value::Gauge(self.store.arena_slots_free()),
        );
        out.push("cgn_timers_pending", Value::Gauge(occ.timers));
        out.push(
            "cgn_timer_cascades_total",
            Value::Counter(self.store.timer_cascades()),
        );
        let mut worst = 0u64;
        for o in self.port_occupancy() {
            let permille = (o.utilization() * 1000.0).round() as u64;
            worst = worst.max(permille);
            let proto = match o.proto {
                Protocol::Udp => "udp",
                Protocol::Tcp => "tcp",
            };
            out.push(
                format!(
                    "cgn_allocator_fill_permille{{pool=\"{}/{proto}\"}}",
                    o.ext_ip
                ),
                Value::Gauge(permille),
            );
        }
        out.push("cgn_allocator_fill_permille_worst", Value::Max(worst));
        if let Some(sink) = &self.sink.0 {
            if let Some((records, bytes)) = sink.volume() {
                out.push("cgn_sink_records_total", Value::Counter(records));
                out.push("cgn_sink_bytes_total", Value::Counter(bytes));
            }
        }
        out.normalize();
        Some(out)
    }

    pub fn stats(&self) -> &NatStats {
        &self.stats
    }

    pub fn external_ips(&self) -> &[Ipv4Addr] {
        &self.external_ips
    }

    /// Whether `ip` belongs to this NAT's external pool.
    pub fn is_external_ip(&self, ip: Ipv4Addr) -> bool {
        self.external_ips.contains(&ip)
    }

    /// The STUN taxonomy class of this device.
    pub fn stun_type(&self) -> StunNatType {
        self.config.stun_type()
    }

    /// Number of live (possibly stale-but-unswept) mappings.
    pub fn mapping_count(&self) -> usize {
        self.store.len()
    }

    /// Occupancy counters of the slab store (arena size, free-list
    /// length, interner sizes, parked timers).
    pub fn store_occupancy(&self) -> StoreOccupancy {
        self.store.occupancy()
    }

    /// Arena chunks backing this shard's slot storage — stable after
    /// warm-up, because arena growth appends chunks instead of
    /// reallocating (the `cgn_arena_chunks` gauge).
    pub fn arena_chunks(&self) -> u64 {
        self.store.arena_chunks()
    }

    /// Slot ids on the store's address-ordered free-list (the
    /// `cgn_arena_slots_free` gauge).
    pub fn arena_slots_free(&self) -> u64 {
        self.store.arena_slots_free()
    }

    /// Iterate all live (possibly stale-but-unswept) mappings in slab
    /// order. Diagnostic/audit read path — counts entries
    /// independently of the store's `live` bookkeeping.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.store.iter_live().map(|(_, m)| m)
    }

    /// Current external endpoint for an internal endpoint, if an unexpired
    /// endpoint-independent-style view exists. Test/diagnostic helper: for
    /// symmetric NATs there may be several; this returns any one.
    pub fn external_for(
        &self,
        proto: Protocol,
        internal: Endpoint,
        now: SimTime,
    ) -> Option<Endpoint> {
        self.store
            .iter_live()
            .map(|(_, m)| m)
            .find(|m| m.proto == proto && m.internal == internal && !m.expired(now))
            .map(|m| m.external)
    }

    /// Unexpired-mapping count per internal host at `now` — the
    /// ports-per-subscriber observable that drives port-demand
    /// dimensioning (one external port is held per mapping).
    pub fn ports_by_host(&self, now: SimTime) -> HashMap<Ipv4Addr, u32> {
        let mut out: HashMap<Ipv4Addr, u32> = HashMap::new();
        for (_, m) in self.store.iter_live() {
            if !m.expired(now) {
                *out.entry(m.internal.ip).or_insert(0) += 1;
            }
        }
        out
    }

    /// The values of [`Nat::ports_by_host`] without the address map:
    /// unexpired-mapping counts per active host in host-interning
    /// order. The traffic driver's demand-sampling hot path — one
    /// dense pass over the slab, no per-host hashing.
    pub fn active_ports_per_host(&self, now: SimTime) -> Vec<u32> {
        self.store.active_ports_per_host(now)
    }

    /// Allocator fill level per (external IP, protocol), sorted for
    /// deterministic iteration. `allocated` counts ports currently held
    /// (including ones whose mapping is stale but unswept).
    pub fn port_occupancy(&self) -> Vec<PortOccupancy> {
        let mut out: Vec<PortOccupancy> = self
            .allocators
            .iter()
            .enumerate()
            .filter_map(|(pool, a)| {
                let a = a.as_ref()?;
                let (ip, proto) = self.store.pool_entry(pool as u32);
                Some(PortOccupancy {
                    ext_ip: ip,
                    proto,
                    allocated: a.allocated(),
                    capacity: a.capacity(),
                })
            })
            .collect();
        out.sort_by_key(|o| (o.ext_ip, o.proto));
        out
    }

    /// Remove all mappings whose idle timer has run out.
    ///
    /// Cheap when called often: expiries are tracked on the store's
    /// hierarchical timer wheel, so a sweep walks only the buckets that
    /// became due since the last one — its cost follows the number of
    /// expiring mappings, not the table size (see
    /// [`NatStats::sweep_scans`] vs [`NatStats::sweeps`]).
    pub fn sweep(&mut self, now: SimTime) {
        let mut clock = self.phase_clock();
        self.stats.sweeps += 1;
        let (inspected, due) = self.store.sweep_due(now);
        if inspected > 0 {
            self.stats.sweep_scans += 1;
        }
        if let Some(m) = &mut self.metrics.0 {
            m.on_sweep(inspected > 0, due.len() as u64);
        }
        for slot in due {
            self.remove_mapping(slot, now);
            self.stats.mappings_expired += 1;
        }
        self.phase_lap(&mut clock, Phase::Sweep);
    }

    /// Start a wall-clock phase lap, `None` unless a tracer with phase
    /// profiling is installed — so disabled runs never read the clock.
    #[inline]
    pub fn phase_clock(&self) -> Option<std::time::Instant> {
        match &self.tracer.0 {
            Some(t) if t.profiling_phases() => Some(std::time::Instant::now()),
            _ => None,
        }
    }

    /// Record the elapsed lap under `phase` and restart the clock.
    /// Wall-clock goes only into the tracer's phase histograms — an
    /// annotation layer outside every deterministic digest.
    #[inline]
    pub fn phase_lap(&mut self, clock: &mut Option<std::time::Instant>, phase: Phase) {
        if let (Some(t0), Some(tr)) = (clock.as_mut(), self.tracer.0.as_deref_mut()) {
            let now = std::time::Instant::now();
            tr.record_phase(phase, now.duration_since(*t0).as_nanos() as u64);
            *t0 = now;
        }
    }

    fn remove_mapping(&mut self, slot: u32, now: SimTime) {
        if let Some((m, pool)) = self.store.remove(slot) {
            if let Some(t) = &mut self.tracer.0 {
                if t.sampling_flows() {
                    t.on_expire(slot, now.as_millis());
                }
            }
            let mut grant = None;
            if let Some(Some(a)) = self.allocators.get_mut(pool as usize) {
                a.release(m.external.port);
                grant = a.take_block_grant();
            }
            if let Some(reg) = &mut self.metrics.0 {
                reg.on_expired(grant.is_some());
            }
            if let Some(sink) = &mut self.sink.0 {
                sink.mapping_expired(&MappingEvent {
                    at: now,
                    proto: m.proto,
                    internal: m.internal,
                    external: m.external,
                });
                if let Some(g) = grant {
                    sink.block_released(&BlockEvent {
                        at: now,
                        proto: m.proto,
                        subscriber: g.host,
                        ext_ip: m.external.ip,
                        block_start: g.start,
                        block_len: g.len,
                    });
                }
            }
        }
    }

    fn timeout_for(&self, proto: Protocol, tcp: Option<TcpConnState>) -> SimDuration {
        match proto {
            Protocol::Udp => self.config.udp_timeout,
            Protocol::Tcp => match tcp {
                Some(TcpConnState::Established) => self.config.tcp_established_timeout,
                _ => self.config.tcp_transitory_timeout,
            },
        }
    }

    fn pick_external_ip(&mut self, host: u32) -> Ipv4Addr {
        match self.config.pooling {
            Pooling::Paired => {
                if let Some(ip) = self.store.paired_ext(host) {
                    return ip;
                }
                let idx = self.rng.gen_range(0..self.external_ips.len());
                let ip = self.external_ips[idx];
                self.store.set_paired_ext(host, ip);
                ip
            }
            Pooling::Arbitrary => {
                let idx = self.rng.gen_range(0..self.external_ips.len());
                self.external_ips[idx]
            }
        }
    }

    fn tcp_update(
        state: Option<TcpConnState>,
        flags: TcpFlags,
        from_inside: bool,
    ) -> Option<TcpConnState> {
        let _ = from_inside;
        Some(match (state, flags) {
            (_, f) if f.rst || f.fin => TcpConnState::Closing,
            (None, f) if f.syn && !f.ack => TcpConnState::Transitory,
            (Some(TcpConnState::Transitory), f) if f.ack => TcpConnState::Established,
            (Some(s), _) => s,
            (None, _) => TcpConnState::Transitory,
        })
    }

    /// Process a packet leaving the internal realm.
    pub fn process_outbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        self.stats.out_packets += 1;
        let (proto, flags) = match &pkt.body {
            PacketBody::Udp { .. } => (Protocol::Udp, None),
            PacketBody::Tcp { flags, .. } => (Protocol::Tcp, Some(*flags)),
            PacketBody::Icmp { .. } => {
                // Router-originated ICMP (e.g. TTL exceeded inside the
                // access network) passes unmodified: the classic
                // "private IP in traceroute" artifact.
                return NatVerdict::Forward(pkt);
            }
        };

        let key = self
            .store
            .out_key(self.config.mapping, proto, pkt.src, pkt.dst);
        self.translate_outbound(pkt, now, proto, flags, key)
    }

    /// Translate a burst of outbound packets at one instant, returning
    /// one verdict per packet in arrival order.
    ///
    /// The burst pipeline runs in three passes: **resolve** every
    /// packet's out-key and reuse-slot in arrival order (key packing
    /// interns hosts, so the interner evolves exactly as under
    /// [`Nat::process_outbound`]); **prefetch** the resolved slots'
    /// hot/cold rows in slot order (sequential slab strides), so the
    /// LLC misses of the whole burst overlap instead of serializing;
    /// **translate** in arrival order through the same code path as
    /// the scalar API, prefetching [`PREFETCH_DISTANCE`] packets
    /// ahead. RNG draws, interner growth, sink/metrics fire order and
    /// verdict commit order are all arrival-order, so results —
    /// verdicts, [`NatStats`], store state, telemetry logs — are
    /// bit-identical to calling `process_outbound` once per packet,
    /// for every burst size.
    pub fn process_burst(&mut self, pkts: Vec<Packet>, now: SimTime) -> Vec<NatVerdict> {
        // One resolved packet: protocol, TCP flags, packed out-key,
        // and the slot hint from the pre-translation index probe.
        // `None` marks an ICMP pass-through.
        type PlanEntry = Option<(Protocol, Option<TcpFlags>, u128, Option<u32>)>;
        let fill = pkts.len() as u64;
        let mut clock = self.phase_clock();
        // Pass 1 — resolve keys and reuse-slot hints in arrival order.
        let mut plan: Vec<PlanEntry> = Vec::with_capacity(pkts.len());
        for pkt in &pkts {
            let (proto, flags) = match &pkt.body {
                PacketBody::Udp { .. } => (Protocol::Udp, None),
                PacketBody::Tcp { flags, .. } => (Protocol::Tcp, Some(*flags)),
                PacketBody::Icmp { .. } => {
                    plan.push(None); // ICMP passes through untranslated
                    continue;
                }
            };
            let key = self
                .store
                .out_key(self.config.mapping, proto, pkt.src, pkt.dst);
            plan.push(Some((proto, flags, key, self.store.lookup_out(key))));
        }
        self.phase_lap(&mut clock, Phase::BurstResolve);

        // Pass 2 — prefetch sweep over the resolved slots, sorted so
        // the hardware sees sequential slab strides. The sort feeds
        // only the prefetcher; translation order is untouched.
        let mut slots: Vec<u32> = plan
            .iter()
            .filter_map(|p| p.as_ref().and_then(|&(_, _, _, hint)| hint))
            .collect();
        let prefetched = slots.len() as u64;
        slots.sort_unstable();
        for &s in &slots {
            self.store.prefetch_slot(s);
        }
        if let Some(m) = &mut self.metrics.0 {
            m.on_burst(fill, prefetched);
        }
        self.phase_lap(&mut clock, Phase::BurstPrefetch);

        // Pass 3 — translate in arrival order. Hints are a prefetch
        // aid only: translation re-probes the index, so a hint
        // invalidated by an earlier packet in the burst (an expiry
        // removal, a new mapping) costs nothing but a cold miss.
        let mut verdicts = Vec::with_capacity(pkts.len());
        for (i, pkt) in pkts.into_iter().enumerate() {
            if let Some(Some((_, _, _, Some(ahead)))) = plan.get(i + PREFETCH_DISTANCE) {
                self.store.prefetch_slot(*ahead);
            }
            self.stats.out_packets += 1;
            verdicts.push(match plan[i] {
                None => NatVerdict::Forward(pkt),
                Some((proto, flags, key, _)) => {
                    self.translate_outbound(pkt, now, proto, flags, key)
                }
            });
        }
        self.phase_lap(&mut clock, Phase::BurstTranslate);
        verdicts
    }

    /// The shared outbound translation path behind
    /// [`Nat::process_outbound`] and [`Nat::process_burst`]: reuse or
    /// create the mapping for an already-packed out-key, refresh it,
    /// and rewrite the packet.
    fn translate_outbound(
        &mut self,
        pkt: Packet,
        now: SimTime,
        proto: Protocol,
        flags: Option<TcpFlags>,
        key: u128,
    ) -> NatVerdict {
        let internal = pkt.src;
        let dst = pkt.dst;

        // Reuse an existing mapping if present and fresh. The expiry
        // check reads the store's hot array — one 32-byte row — not
        // the cold mapping.
        let slot = match self.store.lookup_out(key) {
            Some(slot) if !self.store.expired_at(slot, now) => Some(slot),
            Some(slot) => {
                self.remove_mapping(slot, now);
                self.stats.mappings_expired += 1;
                None
            }
            None => None,
        };

        let reused = slot.is_some();
        let slot = match slot {
            Some(slot) => slot,
            None => match self.create_mapping(key, proto, internal, now) {
                Ok(slot) => slot,
                Err(reason) => {
                    self.stats.record_drop(reason);
                    if let Some(m) = &mut self.metrics.0 {
                        m.on_rejected(reason);
                    }
                    return NatVerdict::Drop(reason);
                }
            },
        };

        // Refresh + filter state + TCP tracking.
        let (external, tcp) = {
            let m = self.store.get_mut(slot);
            m.contacted.insert(dst);
            if let Some(f) = flags {
                m.tcp = Self::tcp_update(m.tcp, f, true);
            }
            m.last_refresh = now;
            (m.external, m.tcp)
        };
        let t = self.timeout_for(proto, tcp);
        self.store.set_expiry(slot, now + t);
        if let Some(tr) = &mut self.tracer.0 {
            if tr.sampling_flows() {
                // A reused mapping's translate pushed its expiry out (a
                // refresh span); the creating packet's span is covered
                // by the admit event `create_mapping` just recorded.
                tr.on_translate(slot, now.as_millis(), reused);
            }
        }

        let mut out = pkt;
        out.src = external;

        if self.is_external_ip(dst.ip) {
            return self.hairpin(out, internal, now);
        }
        NatVerdict::Forward(out)
    }

    fn create_mapping(
        &mut self,
        key: u128,
        proto: Protocol,
        internal: Endpoint,
        now: SimTime,
    ) -> Result<u32, DropReason> {
        let host = MappingStore::host_of_key(key);
        if let Some(cap) = self.config.max_sessions_per_host {
            if self.store.host_sessions(host) >= cap {
                return Err(DropReason::SessionLimit);
            }
        }
        let mut block_granted = false;
        let external = if self.config.transparent {
            // Stateful firewall: state is kept, addresses are not touched.
            internal
        } else {
            // Deterministic NAT computes both the external IP and the
            // port block from the internal address (RFC 7422) — no
            // pooling choice, no RNG draw, no grant records.
            let det = match self.config.port_alloc {
                PortAllocation::Deterministic { ports_per_host } => {
                    Some(ports::deterministic_block(
                        internal.ip,
                        self.external_ips.len(),
                        self.config.port_range,
                        ports_per_host,
                    ))
                }
                _ => None,
            };
            let ext_ip = match det {
                Some((ip_index, _, _)) => self.external_ips[ip_index],
                None => self.pick_external_ip(host),
            };
            let pool = self.store.intern_pool(ext_ip, proto) as usize;
            if self.allocators.len() <= pool {
                self.allocators.resize_with(pool + 1, || None);
            }
            let strategy = self.config.port_alloc;
            let range = self.config.port_range;
            let alloc =
                self.allocators[pool].get_or_insert_with(|| PortAllocator::new(strategy, range));
            let port = match det {
                Some((_, start, len)) => alloc.allocate_deterministic(start, len),
                None => alloc.allocate(internal.ip, internal.port, proto, &mut self.rng),
            }
            .map_err(|e| match e {
                PortError::Exhausted | PortError::ChunkFull | PortError::NoFreeChunk => {
                    DropReason::PortExhausted
                }
            })?;
            let grant = alloc.take_block_grant();
            block_granted = grant.is_some();
            if let (Some(m), Some(_)) = (&mut self.metrics.0, grant) {
                m.on_block_grant();
            }
            if let (Some(sink), Some(g)) = (&mut self.sink.0, grant) {
                sink.block_allocated(&BlockEvent {
                    at: now,
                    proto,
                    subscriber: g.host,
                    ext_ip,
                    block_start: g.start,
                    block_len: g.len,
                });
            }
            Endpoint::new(ext_ip, port)
        };
        let timeout = self.timeout_for(proto, None);
        let m = Mapping::new(proto, internal, external, now, now + timeout);
        let slot = self.store.insert(key, proto, m);
        self.stats.mappings_created += 1;
        self.stats.peak_mappings = self.stats.peak_mappings.max(self.store.len() as u64);
        if let Some(reg) = &mut self.metrics.0 {
            reg.on_created();
        }
        if let Some(sink) = &mut self.sink.0 {
            sink.mapping_created(&MappingEvent {
                at: now,
                proto,
                internal,
                external,
            });
        }
        if let Some(tr) = &mut self.tracer.0 {
            if tr.sampling_flows() {
                tr.on_admit(
                    slot,
                    TraceKey {
                        udp: proto == Protocol::Udp,
                        internal_ip: internal.ip,
                        internal_port: internal.port,
                        external_ip: external.ip,
                        external_port: external.port,
                    },
                    now.as_millis(),
                    block_granted,
                );
            }
        }
        Ok(slot)
    }

    /// Loop a translated outbound packet back to the internal realm
    /// (its destination is one of this device's pool addresses).
    /// `pub(crate)` so [`crate::sharded::ShardedNat`]'s opt-in
    /// cross-shard loopback can route a packet that targets another
    /// shard's pool through the owner shard's hairpin semantics.
    pub(crate) fn hairpin(
        &mut self,
        translated: Packet,
        original_src: Endpoint,
        now: SimTime,
    ) -> NatVerdict {
        if !self.config.hairpinning {
            self.stats.record_drop(DropReason::NoHairpin);
            return NatVerdict::Drop(DropReason::NoHairpin);
        }
        // `translated` already has its source rewritten to the external
        // endpoint; its destination is one of our pool addresses. Find the
        // target mapping, apply the target's filtering policy against the
        // (translated) source, then deliver internally. If the NAT is
        // configured to leave the internal source in place — the leak
        // mechanism of §4.1 — the delivered packet carries `original_src`.
        let proto = translated.protocol().expect("hairpin only for UDP/TCP");
        let target = match self.store.lookup_ext(proto, translated.dst) {
            Some(slot) if !self.store.get(slot).expired(now) => slot,
            _ => {
                self.stats.record_drop(DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
        };
        if !self.filter_admits(target, translated.src) {
            self.stats.record_drop(DropReason::Filtered);
            return NatVerdict::Drop(DropReason::Filtered);
        }
        let (internal_dst, refresh) = {
            let m = self.store.get(target);
            (m.internal, self.config.refresh_inbound)
        };
        if refresh {
            let t = self.timeout_for(proto, self.store.get(target).tcp);
            self.store.get_mut(target).last_refresh = now;
            self.store.set_expiry(target, now + t);
        }
        let mut delivered = translated;
        delivered.dst = internal_dst;
        if self.config.hairpin_internal_source {
            delivered.src = original_src;
        }
        self.stats.hairpins += 1;
        NatVerdict::Hairpin(delivered)
    }

    fn filter_admits(&self, slot: u32, remote: Endpoint) -> bool {
        let m = self.store.get(slot);
        match self.config.filtering {
            FilteringBehavior::EndpointIndependent => true,
            FilteringBehavior::AddressDependent => m.contacted.iter().any(|e| e.ip == remote.ip),
            FilteringBehavior::AddressAndPortDependent => m.contacted.contains(&remote),
        }
    }

    /// Process a packet arriving from the core at one of the external IPs.
    pub fn process_inbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        self.stats.in_packets += 1;
        let (proto, flags) = match &pkt.body {
            PacketBody::Udp { .. } => (Protocol::Udp, None),
            PacketBody::Tcp { flags, .. } => (Protocol::Tcp, Some(*flags)),
            PacketBody::Icmp { original_src, .. } => {
                return self.inbound_icmp(pkt.clone(), *original_src, now);
            }
        };
        let key = self.store.ext_key_of(proto, pkt.dst);
        self.translate_inbound(pkt, now, proto, flags, key)
    }

    /// Translate a burst of inbound packets at one instant, returning
    /// one verdict per packet in arrival order — the inbound mirror of
    /// [`Nat::process_burst`].
    ///
    /// Three passes over the ext-key open-addressed index: **resolve**
    /// classifies each packet, then derives every packed ext-key in
    /// one tight batch pass (inbound key derivation never interns —
    /// a stray pool stays uninterned and simply cannot match — so the
    /// packed pass is branch-free with respect to store state) and
    /// probes the reuse-slot hints; **prefetch** sweeps the resolved
    /// slots' hot/cold rows in slot order, overlapping the burst's LLC
    /// misses; **translate** runs in arrival order through the same
    /// code path as the scalar API ([`Nat::process_inbound`]),
    /// prefetching [`PREFETCH_DISTANCE`] packets ahead. Filtering
    /// (`ContactSet` checks), expiry-on-touch removal, TCP tracking,
    /// stats and sink/metrics fire order are all arrival-order, so
    /// results are bit-identical to calling `process_inbound` once per
    /// packet, for every burst size.
    pub fn process_inbound_burst(&mut self, pkts: Vec<Packet>, now: SimTime) -> Vec<NatVerdict> {
        // One resolved packet: protocol, TCP flags, packed ext-key
        // (`None` when the destination pool was never interned — a
        // stray that can only drop), and the slot hint from the
        // pre-translation index probe. The outer `None` marks an
        // inbound ICMP error.
        type PlanEntry = Option<(Protocol, Option<TcpFlags>, Option<u64>, Option<u32>)>;
        let fill = pkts.len() as u64;
        let mut clock = self.phase_clock();

        // Pass 1 — resolve. Classification in arrival order, then the
        // packed ext-key batch pass and the index probes as tight
        // loops over the plan (no per-packet verdict branching).
        let mut plan: Vec<PlanEntry> = Vec::with_capacity(pkts.len());
        for pkt in &pkts {
            plan.push(match &pkt.body {
                PacketBody::Udp { .. } => Some((Protocol::Udp, None, None, None)),
                PacketBody::Tcp { flags, .. } => Some((Protocol::Tcp, Some(*flags), None, None)),
                PacketBody::Icmp { .. } => None,
            });
        }
        for (entry, pkt) in plan.iter_mut().zip(&pkts) {
            if let Some((proto, _, key, _)) = entry {
                *key = self.store.ext_key_of(*proto, pkt.dst);
            }
        }
        for entry in &mut plan {
            if let Some((_, _, Some(key), hint)) = entry {
                *hint = self.store.lookup_ext_key(*key);
            }
        }
        self.phase_lap(&mut clock, Phase::BurstResolve);

        // Pass 2 — prefetch sweep over the resolved slots, sorted so
        // the hardware sees sequential slab strides. The sort feeds
        // only the prefetcher; translation order is untouched.
        let mut slots: Vec<u32> = plan
            .iter()
            .filter_map(|p| p.as_ref().and_then(|&(_, _, _, hint)| hint))
            .collect();
        let prefetched = slots.len() as u64;
        slots.sort_unstable();
        for &s in &slots {
            self.store.prefetch_slot(s);
        }
        if let Some(m) = &mut self.metrics.0 {
            m.on_burst_inbound(fill, prefetched);
        }
        self.phase_lap(&mut clock, Phase::BurstPrefetch);

        // Pass 3 — translate in arrival order. Hints are a prefetch
        // aid only: translation re-probes the index, so a hint
        // invalidated by an earlier packet in the burst (an expiry
        // removal) costs nothing but a cold miss.
        let mut verdicts = Vec::with_capacity(pkts.len());
        for (i, pkt) in pkts.into_iter().enumerate() {
            if let Some(Some((_, _, _, Some(ahead)))) = plan.get(i + PREFETCH_DISTANCE) {
                self.store.prefetch_slot(*ahead);
            }
            self.stats.in_packets += 1;
            verdicts.push(match plan[i] {
                None => {
                    let original_src = match &pkt.body {
                        PacketBody::Icmp { original_src, .. } => *original_src,
                        _ => unreachable!("pass 1 classified this packet as ICMP"),
                    };
                    self.inbound_icmp(pkt, original_src, now)
                }
                Some((proto, flags, key, _)) => self.translate_inbound(pkt, now, proto, flags, key),
            });
        }
        self.phase_lap(&mut clock, Phase::BurstTranslate);
        verdicts
    }

    /// The shared inbound translation path behind
    /// [`Nat::process_inbound`] and [`Nat::process_inbound_burst`]:
    /// look up the mapping under an already-packed ext-key (`None`
    /// when the destination pool was never interned), apply filtering,
    /// track TCP state, refresh, and rewrite the packet.
    fn translate_inbound(
        &mut self,
        pkt: Packet,
        now: SimTime,
        proto: Protocol,
        flags: Option<TcpFlags>,
        key: Option<u64>,
    ) -> NatVerdict {
        let slot = match key.and_then(|k| self.store.lookup_ext_key(k)) {
            Some(slot) if !self.store.get(slot).expired(now) => slot,
            Some(slot) => {
                self.remove_mapping(slot, now);
                self.stats.mappings_expired += 1;
                self.stats.record_drop(DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
            None => {
                self.stats.record_drop(DropReason::NoMapping);
                return NatVerdict::Drop(DropReason::NoMapping);
            }
        };

        if !self.filter_admits(slot, pkt.src) {
            self.stats.record_drop(DropReason::Filtered);
            return NatVerdict::Drop(DropReason::Filtered);
        }

        let internal = {
            let m = self.store.get_mut(slot);
            if let Some(f) = flags {
                m.tcp = Self::tcp_update(m.tcp, f, false);
            }
            m.internal
        };
        if self.config.refresh_inbound {
            let t = self.timeout_for(proto, self.store.get(slot).tcp);
            self.store.get_mut(slot).last_refresh = now;
            self.store.set_expiry(slot, now + t);
        }
        if let Some(tr) = &mut self.tracer.0 {
            if tr.sampling_flows() {
                tr.on_translate_in(slot, now.as_millis());
            }
        }

        let mut delivered = pkt;
        delivered.dst = internal;
        NatVerdict::Forward(delivered)
    }

    /// Translate an inbound ICMP error referring to a flow we translated:
    /// the quoted original source is the mapping's external endpoint.
    fn inbound_icmp(&mut self, pkt: Packet, original_src: Endpoint, _now: SimTime) -> NatVerdict {
        for proto in [Protocol::Udp, Protocol::Tcp] {
            if let Some(slot) = self.store.lookup_ext(proto, original_src) {
                let m = self.store.get(slot);
                let mut delivered = pkt;
                delivered.dst = Endpoint::new(m.internal.ip, 0);
                if let PacketBody::Icmp {
                    original_src: os, ..
                } = &mut delivered.body
                {
                    *os = m.internal;
                }
                return NatVerdict::Forward(delivered);
            }
        }
        self.stats.record_drop(DropReason::UnmatchedIcmp);
        NatVerdict::Drop(DropReason::UnmatchedIcmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingBehavior;
    use netcore::ip;
    use std::collections::HashSet;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn internal_host(last: u8) -> Endpoint {
        Endpoint::new(ip(100, 64, 0, last), 40000)
    }

    fn server() -> Endpoint {
        Endpoint::new(ip(203, 0, 113, 10), 8000)
    }

    fn pool() -> Vec<Ipv4Addr> {
        vec![
            ip(198, 51, 100, 1),
            ip(198, 51, 100, 2),
            ip(198, 51, 100, 3),
        ]
    }

    fn nat(config: NatConfig) -> Nat {
        Nat::new(config, pool(), 7)
    }

    fn udp_out(nat: &mut Nat, src: Endpoint, dst: Endpoint, now: SimTime) -> Packet {
        match nat.process_outbound(Packet::udp(src, dst, vec![1]), now) {
            NatVerdict::Forward(p) => p,
            v => panic!("expected Forward, got {v:?}"),
        }
    }

    #[test]
    fn outbound_rewrites_source_to_pool() {
        let mut n = nat(NatConfig::cgn_default());
        let p = udp_out(&mut n, internal_host(1), server(), t(0));
        assert!(n.is_external_ip(p.src.ip));
        assert_eq!(p.dst, server());
        assert_eq!(n.mapping_count(), 1);
    }

    #[test]
    fn eim_reuses_mapping_across_destinations() {
        let mut n = nat(NatConfig::cgn_default());
        let a = udp_out(&mut n, internal_host(1), server(), t(0));
        let other = Endpoint::new(ip(203, 0, 113, 99), 9999);
        let b = udp_out(&mut n, internal_host(1), other, t(1));
        assert_eq!(a.src, b.src, "endpoint-independent mapping must be reused");
        assert_eq!(n.mapping_count(), 1);
    }

    #[test]
    fn symmetric_creates_mapping_per_destination() {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg);
        let a = udp_out(&mut n, internal_host(1), server(), t(0));
        let other = Endpoint::new(ip(203, 0, 113, 99), 9999);
        let b = udp_out(&mut n, internal_host(1), other, t(1));
        assert_ne!(a.src, b.src, "symmetric NAT must allocate a fresh mapping");
        assert_eq!(n.mapping_count(), 2);
    }

    #[test]
    fn address_dependent_mapping_keyed_by_dst_ip() {
        let mut cfg = NatConfig::cgn_default();
        cfg.mapping = MappingBehavior::AddressDependent;
        let mut n = nat(cfg);
        let a = udp_out(&mut n, internal_host(1), server(), t(0));
        // Same IP, different port: reuse.
        let b = udp_out(
            &mut n,
            internal_host(1),
            Endpoint::new(server().ip, 1234),
            t(0),
        );
        assert_eq!(a.src, b.src);
        // Different IP: new mapping.
        let c = udp_out(
            &mut n,
            internal_host(1),
            Endpoint::new(ip(203, 0, 113, 99), 8000),
            t(0),
        );
        assert_ne!(a.src, c.src);
    }

    #[test]
    fn inbound_requires_mapping() {
        let mut n = nat(NatConfig::cgn_default());
        let stray = Packet::udp(server(), Endpoint::new(ip(198, 51, 100, 1), 5555), vec![]);
        assert_eq!(
            n.process_inbound(stray, t(0)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
        assert_eq!(n.stats().drop_no_mapping, 1);
    }

    #[test]
    fn full_cone_admits_any_source() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let mut n = nat(cfg);
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        let stranger = Endpoint::new(ip(9, 9, 9, 9), 53);
        let inbound = Packet::udp(stranger, out.src, vec![2]);
        match n.process_inbound(inbound, t(1)) {
            NatVerdict::Forward(p) => assert_eq!(p.dst, internal_host(1)),
            v => panic!("full cone must forward, got {v:?}"),
        }
    }

    #[test]
    fn address_restricted_requires_contacted_ip() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::AddressDependent;
        let mut n = nat(cfg);
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        // Same IP, different port: admitted.
        let same_ip = Packet::udp(Endpoint::new(server().ip, 999), out.src, vec![]);
        assert!(matches!(
            n.process_inbound(same_ip, t(1)),
            NatVerdict::Forward(_)
        ));
        // Different IP: filtered.
        let stranger = Packet::udp(Endpoint::new(ip(9, 9, 9, 9), 8000), out.src, vec![]);
        assert_eq!(
            n.process_inbound(stranger, t(1)),
            NatVerdict::Drop(DropReason::Filtered)
        );
    }

    #[test]
    fn port_restricted_requires_exact_endpoint() {
        let mut n = nat(NatConfig::cgn_default()); // APDF by default
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        let exact = Packet::udp(server(), out.src, vec![]);
        assert!(matches!(
            n.process_inbound(exact, t(1)),
            NatVerdict::Forward(_)
        ));
        let same_ip_other_port = Packet::udp(Endpoint::new(server().ip, 999), out.src, vec![]);
        assert_eq!(
            n.process_inbound(same_ip_other_port, t(1)),
            NatVerdict::Drop(DropReason::Filtered)
        );
    }

    #[test]
    fn udp_mapping_expires_after_idle_timeout() {
        let mut n = nat(NatConfig::cgn_default()); // 60 s UDP timeout
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        // Just before expiry: inbound passes (and refreshes).
        let back = Packet::udp(server(), out.src, vec![]);
        assert!(matches!(
            n.process_inbound(back.clone(), t(59)),
            NatVerdict::Forward(_)
        ));
        // 59 + 60 = 119 s is the refreshed deadline; at 120 s it is gone.
        assert_eq!(
            n.process_inbound(back, t(120)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
    }

    #[test]
    fn outbound_refresh_keeps_mapping_alive() {
        let mut n = nat(NatConfig::cgn_default());
        let first = udp_out(&mut n, internal_host(1), server(), t(0));
        for k in 1..=10 {
            let p = udp_out(&mut n, internal_host(1), server(), t(30 * k));
            assert_eq!(p.src, first.src, "refreshed mapping must be stable");
        }
        assert_eq!(n.stats().mappings_created, 1);
    }

    #[test]
    fn no_inbound_refresh_when_disabled() {
        let mut cfg = NatConfig::cgn_default();
        cfg.refresh_inbound = false;
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let mut n = nat(cfg);
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        let back = Packet::udp(server(), out.src, vec![]);
        assert!(matches!(
            n.process_inbound(back.clone(), t(30)),
            NatVerdict::Forward(_)
        ));
        // Inbound at 30 s did not refresh; the mapping dies at 60 s.
        assert_eq!(
            n.process_inbound(back, t(61)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
    }

    #[test]
    fn sweep_releases_ports_and_counts() {
        let mut n = nat(NatConfig::cgn_default());
        for h in 1..=5 {
            udp_out(&mut n, internal_host(h), server(), t(0));
        }
        assert_eq!(n.mapping_count(), 5);
        n.sweep(t(61));
        assert_eq!(n.mapping_count(), 0);
        assert_eq!(n.stats().mappings_expired, 5);
    }

    #[test]
    fn sweep_fast_path_skips_scan_before_due_bucket() {
        let mut n = nat(NatConfig::cgn_default()); // 60 s UDP timeout
        n.sweep(t(5));
        assert_eq!(n.stats().sweeps, 1);
        assert_eq!(n.stats().sweep_scans, 0, "empty table never scans");
        udp_out(&mut n, internal_host(1), server(), t(0)); // expiry 60
        for s in [10, 30, 59] {
            n.sweep(t(s));
        }
        assert_eq!(n.stats().sweeps, 4);
        assert_eq!(
            n.stats().sweep_scans,
            0,
            "no wheel bucket is due before the expiry"
        );
        assert_eq!(n.mapping_count(), 1);
        n.sweep(t(60)); // expiry <= now: the mapping is dead
        assert_eq!(n.stats().sweep_scans, 1);
        assert_eq!(n.mapping_count(), 0);
        assert_eq!(n.stats().mappings_expired, 1);
        n.sweep(t(1000)); // empty again: back on the fast path
        assert_eq!(n.stats().sweep_scans, 1);
    }

    #[test]
    fn sweep_lazy_refresh_reschedules_on_the_wheel() {
        let mut n = nat(NatConfig::cgn_default());
        udp_out(&mut n, internal_host(1), server(), t(0)); // expiry 60
                                                           // Refresh pushes the expiry to 110 but lazily leaves the
                                                           // timer entry parked at 60: draining that bucket finds the
                                                           // mapping alive and re-files it at the real expiry.
        udp_out(&mut n, internal_host(1), server(), t(50));
        n.sweep(t(70));
        assert_eq!(n.mapping_count(), 1, "refreshed mapping must survive");
        assert_eq!(n.stats().sweep_scans, 1);
        // Fast path resumes against the rescheduled entry…
        n.sweep(t(109));
        assert_eq!(n.stats().sweep_scans, 1);
        // …and expiry is still detected on time.
        n.sweep(t(110));
        assert_eq!(n.mapping_count(), 0);
        assert_eq!(n.stats().sweep_scans, 2);
    }

    #[test]
    fn sweep_follows_tcp_fin_shortened_expiry() {
        let mut n = nat(NatConfig::cgn_default()); // established 7440 s, transitory 240 s
        let src = internal_host(1);
        // Full handshake: the mapping moves onto the established clock.
        let out = match n.process_outbound(Packet::tcp(src, server(), TcpFlags::SYN, vec![]), t(0))
        {
            NatVerdict::Forward(p) => p,
            v => panic!("{v:?}"),
        };
        assert!(matches!(
            n.process_inbound(
                Packet::tcp(server(), out.src, TcpFlags::SYN_ACK, vec![]),
                t(0)
            ),
            NatVerdict::Forward(_)
        ));
        assert!(matches!(
            n.process_outbound(Packet::tcp(src, server(), TcpFlags::ACK, vec![]), t(0)),
            NatVerdict::Forward(_)
        ));
        // Draining the stale transitory-deadline bucket re-files the
        // entry at the established expiry (7440 s).
        n.sweep(t(241));
        assert_eq!(n.mapping_count(), 1);
        // FIN moves the mapping back onto the transitory clock: expiry
        // 300 + 240 = 540 s, far below the parked deadline. The store
        // must file an earlier timer entry, or this sweep would
        // fast-skip and leak the port for the rest of the established
        // timeout.
        assert!(matches!(
            n.process_outbound(Packet::tcp(src, server(), TcpFlags::FIN, vec![]), t(300)),
            NatVerdict::Forward(_)
        ));
        n.sweep(t(600));
        assert_eq!(
            n.mapping_count(),
            0,
            "closed connection must be reaped on the transitory clock"
        );
        assert_eq!(n.stats().mappings_expired, 1);
    }

    #[test]
    fn paired_pooling_is_sticky() {
        let mut n = nat(NatConfig::cgn_default());
        let mut ips = HashSet::new();
        for flow in 0..20 {
            let src = Endpoint::new(ip(100, 64, 0, 1), 40000 + flow);
            let p = match n.process_outbound(Packet::udp(src, server(), vec![]), t(0)) {
                NatVerdict::Forward(p) => p,
                v => panic!("{v:?}"),
            };
            ips.insert(p.src.ip);
        }
        assert_eq!(
            ips.len(),
            1,
            "paired pooling must keep one external IP per host"
        );
    }

    #[test]
    fn arbitrary_pooling_spreads_across_pool() {
        let mut cfg = NatConfig::cgn_default();
        cfg.pooling = Pooling::Arbitrary;
        cfg.mapping = MappingBehavior::AddressAndPortDependent; // force fresh mappings
        let mut n = nat(cfg);
        let mut ips = HashSet::new();
        for flow in 0..30u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + flow);
            let src = Endpoint::new(ip(100, 64, 0, 1), 40000);
            let p = match n.process_outbound(Packet::udp(src, dst, vec![]), t(0)) {
                NatVerdict::Forward(p) => p,
                v => panic!("{v:?}"),
            };
            ips.insert(p.src.ip);
        }
        assert!(
            ips.len() > 1,
            "arbitrary pooling should use several pool IPs"
        );
    }

    #[test]
    fn session_limit_enforced() {
        let mut cfg = NatConfig::cgn_default();
        cfg.max_sessions_per_host = Some(3);
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg);
        let src = internal_host(1);
        for f in 0..3u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            assert!(matches!(
                n.process_outbound(Packet::udp(src, dst, vec![]), t(0)),
                NatVerdict::Forward(_)
            ));
        }
        let dst = Endpoint::new(ip(203, 0, 113, 10), 2000);
        assert_eq!(
            n.process_outbound(Packet::udp(src, dst, vec![]), t(0)),
            NatVerdict::Drop(DropReason::SessionLimit)
        );
        // Expiry frees budget.
        n.sweep(t(120));
        assert!(matches!(
            n.process_outbound(Packet::udp(src, dst, vec![]), t(120)),
            NatVerdict::Forward(_)
        ));
    }

    #[test]
    fn hairpin_delivers_to_internal_target() {
        // A sends toward B's external endpoint; APDF filtering would reject
        // a source B never contacted, so use full-cone filtering here.
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        let mut n = nat(cfg);
        // B opens a mapping first so A can reach it via its external endpoint.
        let b_out = udp_out(&mut n, internal_host(2), server(), t(0)).src;
        let a_pkt = Packet::udp(internal_host(1), b_out, vec![7]);
        match n.process_outbound(a_pkt, t(1)) {
            NatVerdict::Hairpin(p) => {
                assert_eq!(
                    p.dst,
                    internal_host(2),
                    "hairpin must reach B's internal endpoint"
                );
                // cgn_default leaves the internal source in place — the
                // §4.1 leak channel: B learns A's internal endpoint.
                assert_eq!(p.src, internal_host(1));
            }
            v => panic!("expected hairpin, got {v:?}"),
        }
        assert_eq!(n.stats().hairpins, 1);
    }

    #[test]
    fn hairpin_with_source_rewrite_hides_internal_endpoint() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = FilteringBehavior::EndpointIndependent;
        cfg.hairpin_internal_source = false;
        let mut n = nat(cfg);
        let b_out = udp_out(&mut n, internal_host(2), server(), t(0)).src;
        let a_pkt = Packet::udp(internal_host(1), b_out, vec![7]);
        match n.process_outbound(a_pkt, t(1)) {
            NatVerdict::Hairpin(p) => {
                assert!(
                    n.is_external_ip(p.src.ip),
                    "source must be the external mapping"
                );
                assert_ne!(p.src, internal_host(1));
            }
            v => panic!("expected hairpin, got {v:?}"),
        }
    }

    #[test]
    fn hairpin_disabled_drops() {
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        let mut n = nat(cfg);
        let b_ext = udp_out(&mut n, internal_host(2), server(), t(0)).src;
        let a_pkt = Packet::udp(internal_host(1), b_ext, vec![]);
        assert_eq!(
            n.process_outbound(a_pkt, t(1)),
            NatVerdict::Drop(DropReason::NoHairpin)
        );
    }

    #[test]
    fn tcp_established_outlives_udp_timeout() {
        let mut n = nat(NatConfig::cgn_default());
        let src = internal_host(1);
        // SYN out.
        let syn = Packet::tcp(src, server(), TcpFlags::SYN, vec![]);
        let out = match n.process_outbound(syn, t(0)) {
            NatVerdict::Forward(p) => p,
            v => panic!("{v:?}"),
        };
        // SYN-ACK in.
        let synack = Packet::tcp(server(), out.src, TcpFlags::SYN_ACK, vec![]);
        assert!(matches!(
            n.process_inbound(synack, t(0)),
            NatVerdict::Forward(_)
        ));
        // ACK out completes the handshake.
        let ack = Packet::tcp(src, server(), TcpFlags::ACK, vec![]);
        assert!(matches!(
            n.process_outbound(ack, t(0)),
            NatVerdict::Forward(_)
        ));
        // Hours later (beyond transitory & UDP timeouts) the mapping lives.
        let data = Packet::tcp(server(), out.src, TcpFlags::ACK, vec![1]);
        assert!(matches!(
            n.process_inbound(data, t(3600)),
            NatVerdict::Forward(_)
        ));
    }

    #[test]
    fn tcp_transitory_times_out_quickly() {
        let mut n = nat(NatConfig::cgn_default()); // transitory 240 s
        let syn = Packet::tcp(internal_host(1), server(), TcpFlags::SYN, vec![]);
        let out = match n.process_outbound(syn, t(0)) {
            NatVerdict::Forward(p) => p,
            v => panic!("{v:?}"),
        };
        // Handshake never completes; at 241 s inbound finds no state.
        let synack = Packet::tcp(server(), out.src, TcpFlags::SYN_ACK, vec![]);
        assert_eq!(
            n.process_inbound(synack, t(241)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
    }

    #[test]
    fn tcp_fin_moves_to_transitory_timeout() {
        let mut n = nat(NatConfig::cgn_default());
        let src = internal_host(1);
        let out = match n.process_outbound(Packet::tcp(src, server(), TcpFlags::SYN, vec![]), t(0))
        {
            NatVerdict::Forward(p) => p,
            v => panic!("{v:?}"),
        };
        assert!(matches!(
            n.process_inbound(
                Packet::tcp(server(), out.src, TcpFlags::SYN_ACK, vec![]),
                t(0)
            ),
            NatVerdict::Forward(_)
        ));
        assert!(matches!(
            n.process_outbound(Packet::tcp(src, server(), TcpFlags::ACK, vec![]), t(0)),
            NatVerdict::Forward(_)
        ));
        // FIN puts the mapping on the short clock.
        assert!(matches!(
            n.process_outbound(Packet::tcp(src, server(), TcpFlags::FIN, vec![]), t(10)),
            NatVerdict::Forward(_)
        ));
        let late = Packet::tcp(server(), out.src, TcpFlags::ACK, vec![]);
        assert_eq!(
            n.process_inbound(late, t(10 + 241)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
    }

    #[test]
    fn port_preservation_visible_through_nat() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = crate::config::PortAllocation::Preserve;
        let mut n = nat(cfg);
        let p = udp_out(&mut n, internal_host(1), server(), t(0));
        assert_eq!(p.src.port, 40000, "preserving NAT keeps the source port");
    }

    #[test]
    fn icmp_outbound_passes_through() {
        let mut n = nat(NatConfig::cgn_default());
        let orig = Packet::udp(internal_host(1), server(), vec![]).with_ttl(1);
        let icmp = orig.ttl_exceeded_reply(ip(100, 64, 255, 1));
        // Re-point at an external destination as a router inside would.
        let mut icmp_to_server = icmp;
        icmp_to_server.dst = server();
        assert!(matches!(
            n.process_outbound(icmp_to_server, t(0)),
            NatVerdict::Forward(_)
        ));
    }

    #[test]
    fn icmp_inbound_translated_to_internal_host() {
        let mut n = nat(NatConfig::cgn_default());
        let out = udp_out(&mut n, internal_host(1), server(), t(0));
        // A router near the server reports TTL exceeded for the translated flow.
        let mut icmp =
            Packet::udp(out.src, server(), vec![]).ttl_exceeded_reply(ip(203, 0, 113, 1));
        icmp.dst = out.src; // routed back to the external endpoint
        match n.process_inbound(icmp, t(1)) {
            NatVerdict::Forward(p) => assert_eq!(p.dst.ip, internal_host(1).ip),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn unmatched_icmp_dropped() {
        let mut n = nat(NatConfig::cgn_default());
        let mut icmp = Packet::udp(Endpoint::new(ip(198, 51, 100, 1), 1234), server(), vec![])
            .ttl_exceeded_reply(ip(203, 0, 113, 1));
        icmp.dst = Endpoint::new(ip(198, 51, 100, 1), 1234);
        assert_eq!(
            n.process_inbound(icmp, t(0)),
            NatVerdict::Drop(DropReason::UnmatchedIcmp)
        );
    }

    #[test]
    fn port_exhaustion_reported() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_range = (5000, 5002);
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = Nat::new(cfg, vec![ip(198, 51, 100, 1)], 1);
        let src = internal_host(1);
        let mut drops = 0;
        for f in 0..6u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            if let NatVerdict::Drop(DropReason::PortExhausted) =
                n.process_outbound(Packet::udp(src, dst, vec![]), t(0))
            {
                drops += 1;
            }
        }
        assert_eq!(drops, 3, "3 ports then exhaustion");
        assert_eq!(n.stats().drop_port_exhausted, 3);
    }

    #[test]
    fn determinism_same_seed_same_allocation() {
        let run = || {
            let mut n = Nat::new(NatConfig::cgn_default(), pool(), 99);
            let mut seen = Vec::new();
            for h in 1..=10 {
                let p = udp_out(&mut n, internal_host(h), server(), t(0));
                seen.push(p.src);
            }
            seen
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transparent_firewall_keeps_addresses_but_filters() {
        let protected = internal_host(1);
        let mut n = Nat::new(NatConfig::stateful_firewall(), vec![protected.ip], 3);
        let out = udp_out(&mut n, protected, server(), t(0));
        assert_eq!(out.src, protected, "no translation");
        // Solicited inbound passes.
        let back = Packet::udp(server(), protected, vec![]);
        assert!(matches!(
            n.process_inbound(back.clone(), t(1)),
            NatVerdict::Forward(_)
        ));
        // Unsolicited source is filtered.
        let stranger = Packet::udp(Endpoint::new(ip(9, 9, 9, 9), 1), protected, vec![]);
        assert_eq!(
            n.process_inbound(stranger, t(1)),
            NatVerdict::Drop(DropReason::Filtered)
        );
        // State expires like any NAT mapping.
        assert_eq!(
            n.process_inbound(back, t(120)),
            NatVerdict::Drop(DropReason::NoMapping)
        );
    }

    #[test]
    fn sink_sees_mapping_and_block_lifecycle() {
        use crate::telemetry::CountingSink;
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = crate::config::PortAllocation::PortBlock { block_size: 512 };
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg);
        n.set_sink(Box::<CountingSink>::default());
        let src = internal_host(1);
        for f in 0..5u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            assert!(matches!(
                n.process_outbound(Packet::udp(src, dst, vec![]), t(0)),
                NatVerdict::Forward(_)
            ));
        }
        n.sweep(t(61)); // all five mappings idle out
        let counts = n
            .take_sink()
            .expect("sink installed")
            .into_any()
            .downcast::<CountingSink>()
            .expect("concrete sink type");
        assert_eq!(counts.created, 5);
        assert_eq!(counts.expired, 5);
        // One 512-port block served all five mappings; draining the
        // last mapping returned it.
        assert_eq!(counts.blocks_allocated, 1);
        assert_eq!(counts.blocks_released, 1);
        assert_eq!(n.stats().mappings_created, 5);
    }

    #[test]
    fn metrics_capture_mapping_and_block_lifecycle() {
        use crate::metrics::EngineMetrics;
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = crate::config::PortAllocation::PortBlock { block_size: 512 };
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg);
        n.set_metrics(Box::<EngineMetrics>::default());
        let src = internal_host(1);
        for f in 0..5u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            assert!(matches!(
                n.process_outbound(Packet::udp(src, dst, vec![]), t(0)),
                NatVerdict::Forward(_)
            ));
        }
        let snap = n.metrics_snapshot().expect("registry installed");
        assert_eq!(snap.scalar("cgn_mappings_created_total"), 5);
        assert_eq!(snap.scalar("cgn_mappings_live"), 5);
        assert_eq!(snap.scalar("cgn_block_grants_total"), 1);
        n.sweep(t(61)); // all five mappings idle out
        let snap = n.metrics_snapshot().expect("registry installed");
        assert_eq!(snap.scalar("cgn_mappings_expired_total"), 5);
        assert_eq!(snap.scalar("cgn_mappings_live"), 0);
        assert_eq!(snap.scalar("cgn_block_releases_total"), 1);
        assert_eq!(snap.scalar("cgn_sweeps_total"), 1);
        let reg = n.take_metrics().expect("registry recoverable");
        assert_eq!(reg.mappings_created.get(), 5);
        assert_eq!(reg.sweep_batch.count, 1);
        assert!(n.metrics_snapshot().is_none(), "slot emptied");
    }

    #[test]
    fn metrics_count_rejections_by_reason() {
        use crate::metrics::EngineMetrics;
        let mut cfg = NatConfig::cgn_default();
        cfg.max_sessions_per_host = Some(2);
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg);
        n.set_metrics(Box::<EngineMetrics>::default());
        let src = internal_host(1);
        for f in 0..4u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            n.process_outbound(Packet::udp(src, dst, vec![]), t(0));
        }
        let snap = n.metrics_snapshot().expect("registry installed");
        assert_eq!(
            snap.scalar("cgn_flows_rejected_total{reason=\"session-limit\"}"),
            2
        );
        assert_eq!(
            snap.scalar("cgn_flows_rejected_total{reason=\"port-exhausted\"}"),
            0
        );
    }

    #[test]
    fn metrics_disabled_changes_nothing() {
        use crate::metrics::EngineMetrics;
        let run = |with_metrics: bool| {
            let mut n = Nat::new(NatConfig::cgn_default(), pool(), 99);
            if with_metrics {
                n.set_metrics(Box::<EngineMetrics>::default());
            }
            let mut seen = Vec::new();
            for h in 1..=10 {
                seen.push(udp_out(&mut n, internal_host(h), server(), t(0)).src);
            }
            n.sweep(t(120));
            (seen, n.stats().clone())
        };
        assert_eq!(run(false), run(true), "metrics must be observation-only");
    }

    /// The inbound burst pipeline and arena gauges follow the same
    /// zero-cost-when-disabled discipline as every other instrument:
    /// without a registry the new paths fire nothing and expose
    /// nothing, and the run is observationally unchanged.
    #[test]
    fn inbound_burst_metrics_fire_only_when_enabled() {
        use crate::metrics::EngineMetrics;
        let run = |with_metrics: bool| {
            let mut n = Nat::new(NatConfig::cgn_default(), pool(), 99);
            if with_metrics {
                n.set_metrics(Box::<EngineMetrics>::default());
            }
            let replies: Vec<Packet> = (1..=10)
                .map(|h| udp_out(&mut n, internal_host(h), server(), t(0)))
                .map(|fwd| Packet::udp(server(), fwd.src, vec![]))
                .collect();
            let verdicts = n.process_inbound_burst(replies, t(1));
            (verdicts, n.stats().clone(), n)
        };
        let (off_verdicts, off_stats, off_nat) = run(false);
        let (on_verdicts, on_stats, on_nat) = run(true);
        assert_eq!(
            off_verdicts, on_verdicts,
            "metrics must be observation-only"
        );
        assert_eq!(off_stats, on_stats);
        assert!(
            off_nat.metrics_snapshot().is_none(),
            "disabled engine exposes no instruments at all"
        );
        let snap = on_nat.metrics_snapshot().expect("registry installed");
        assert_eq!(snap.scalar("cgn_inbound_bursts_total"), 1);
        assert_eq!(snap.scalar("cgn_inbound_prefetch_issued_total"), 10);
        assert!(snap.scalar("cgn_arena_chunks") >= 2, "hot + cold chunks");
        assert_eq!(snap.scalar("cgn_arena_slots_free"), 0, "nothing expired");
    }

    #[test]
    fn sink_disabled_changes_nothing() {
        use crate::telemetry::CountingSink;
        let run = |with_sink: bool| {
            let mut n = Nat::new(NatConfig::cgn_default(), pool(), 99);
            if with_sink {
                n.set_sink(Box::<CountingSink>::default());
            }
            let mut seen = Vec::new();
            for h in 1..=10 {
                seen.push(udp_out(&mut n, internal_host(h), server(), t(0)).src);
            }
            n.sweep(t(120));
            (seen, n.stats().clone())
        };
        assert_eq!(run(false), run(true), "telemetry must be observation-only");
    }

    #[test]
    fn deterministic_policy_is_algorithmic_through_the_engine() {
        let mut cfg = NatConfig::cgn_default();
        cfg.port_alloc = crate::config::PortAllocation::Deterministic { ports_per_host: 4 };
        cfg.mapping = MappingBehavior::AddressAndPortDependent;
        let mut n = nat(cfg.clone());
        let src = internal_host(1);
        let expected = crate::ports::deterministic_block(src.ip, 3, cfg.port_range, 4);
        let mut ports_seen = Vec::new();
        for f in 0..4u16 {
            let dst = Endpoint::new(ip(203, 0, 113, 10), 1000 + f);
            match n.process_outbound(Packet::udp(src, dst, vec![]), t(0)) {
                NatVerdict::Forward(p) => {
                    assert_eq!(p.src.ip, pool()[expected.0], "computed pool address");
                    assert!(
                        p.src.port >= expected.1 && p.src.port < expected.1 + expected.2,
                        "port {} outside computed block [{}, {})",
                        p.src.port,
                        expected.1,
                        expected.1 + expected.2
                    );
                    ports_seen.push(p.src.port);
                }
                v => panic!("{v:?}"),
            }
        }
        // The computed block is the hard cap: the fifth flow drops.
        let dst = Endpoint::new(ip(203, 0, 113, 10), 2000);
        assert_eq!(
            n.process_outbound(Packet::udp(src, dst, vec![]), t(0)),
            NatVerdict::Drop(DropReason::PortExhausted)
        );
        // Fully deterministic: a fresh engine with a different seed
        // produces identical placements.
        let mut m = Nat::new(cfg, pool(), 12345);
        let p = match m.process_outbound(
            Packet::udp(src, Endpoint::new(ip(203, 0, 113, 10), 1000), vec![]),
            t(0),
        ) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        assert_eq!(p.port, ports_seen[0]);
        assert_eq!(p.ip, pool()[expected.0]);
    }

    #[test]
    fn external_for_diagnostic() {
        let mut n = nat(NatConfig::cgn_default());
        let p = udp_out(&mut n, internal_host(1), server(), t(0));
        assert_eq!(
            n.external_for(Protocol::Udp, internal_host(1), t(1)),
            Some(p.src)
        );
        assert_eq!(
            n.external_for(Protocol::Udp, internal_host(1), t(120)),
            None
        );
    }
    #[test]
    fn trace_mix64_matches_store_mix64() {
        // cgn-trace duplicates the SplitMix64 finalizer (the
        // dependency points from nat-engine to cgn-trace); this pins
        // the two implementations together.
        for v in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            assert_eq!(cgn_trace::mix64(v), crate::store::mix64(v));
        }
    }

    #[test]
    fn tracer_records_sampled_flow_lifecycle_behind_the_nat() {
        use cgn_trace::{SpanKind, TraceConfig};
        let mut n = nat(NatConfig::cgn_default());
        n.set_tracer(Box::new(ShardTracer::new(0, &TraceConfig::sampled(1))));
        let a = internal_host(1);
        let s = server();
        let out = udp_out(&mut n, a, s, t(1)); // admit + first translate
        let _ = udp_out(&mut n, a, s, t(2)); // reuse: translate + refresh
        let reply = Packet::udp(s, out.src, vec![1]);
        assert!(matches!(
            n.process_inbound(reply, t(3)),
            NatVerdict::Forward(_)
        ));
        n.sweep(t(400)); // past the 60 s UDP timeout
        let tr = n.take_tracer().expect("tracer installed");
        let kinds: Vec<SpanKind> = tr.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Admit,
                SpanKind::Translate,
                SpanKind::Translate,
                SpanKind::Refresh,
                SpanKind::TranslateIn,
                SpanKind::Expire,
            ]
        );
        let key = tr.events().next().expect("events").key;
        assert_eq!(key.internal_ip, a.ip);
        assert_eq!(key.internal_port, a.port);
        assert_eq!(key.external_ip, out.src.ip);
        assert_eq!(key.external_port, out.src.port);
        assert!(key.udp);
        assert_eq!(tr.sampled_flows(), 1);
        assert_eq!(tr.live_sampled(), 0);
    }

    #[test]
    fn tracer_with_sampling_off_records_nothing() {
        use cgn_trace::TraceConfig;
        let mut n = nat(NatConfig::cgn_default());
        // Phase profiling only: flow fire sites stay silent.
        let cfg = TraceConfig {
            sample_one_in: 0,
            profile_phases: true,
            ..TraceConfig::off()
        };
        n.set_tracer(Box::new(ShardTracer::new(0, &cfg)));
        let _ = udp_out(&mut n, internal_host(1), server(), t(1));
        n.sweep(t(400));
        let tr = n.take_tracer().expect("tracer installed");
        assert_eq!(tr.events().count(), 0);
        assert_eq!(tr.sampled_flows(), 0);
        // ... but the sweep phase recorded wall-clock.
        assert_eq!(
            tr.phases().histogram(cgn_trace::Phase::Sweep).count,
            1,
            "one sweep lap recorded"
        );
    }

    #[test]
    fn burst_pipeline_records_phase_laps_when_profiling() {
        use cgn_trace::{Phase, TraceConfig};
        let mut n = nat(NatConfig::cgn_default());
        n.set_tracer(Box::new(ShardTracer::new(0, &TraceConfig::sampled(1))));
        let pkts: Vec<Packet> = (1..=8)
            .map(|i| Packet::udp(internal_host(i), server(), vec![1]))
            .collect();
        let verdicts = n.process_burst(pkts, t(1));
        assert_eq!(verdicts.len(), 8);
        let replies: Vec<Packet> = verdicts
            .iter()
            .map(|v| match v {
                NatVerdict::Forward(p) => Packet::udp(server(), p.src, vec![1]),
                v => panic!("expected Forward, got {v:?}"),
            })
            .collect();
        n.process_inbound_burst(replies, t(2));
        let tr = n.take_tracer().expect("tracer installed");
        for phase in [
            Phase::BurstResolve,
            Phase::BurstPrefetch,
            Phase::BurstTranslate,
        ] {
            assert_eq!(
                tr.phases().histogram(phase).count,
                2,
                "one outbound + one inbound lap for {phase:?}"
            );
        }
        // All 8 flows sampled at one-in-1; inbound replies recorded.
        assert_eq!(tr.sampled_flows(), 8);
        assert!(tr
            .events()
            .any(|e| matches!(e.kind, cgn_trace::SpanKind::TranslateIn)));
    }
}
