//! NAT event telemetry: the logging hooks behind abuse traceability.
//!
//! §2 of the paper reports that operators weigh CGN deployment choices
//! (per-connection vs. bulk port-block allocation, subscribers per
//! external IP) as much by the **logging burden** they imply as by
//! port demand: abuse attribution must answer "which subscriber held
//! external `IP:port` at time `T`?", and per-connection logging at
//! CGN scale produces terabytes per day. This module is the engine
//! side of that trade-off: a minimal [`EventSink`] the translation
//! path fires on state changes, so an external consumer (the
//! `cgn-telemetry` crate) can turn them into append-only binary logs
//! and measure the volume each allocation policy produces.
//!
//! **Zero-cost when disabled.** The engine holds an
//! `Option<Box<dyn EventSink>>`; with no sink installed every fire
//! site is one untaken branch on `None` — and fire sites sit on the
//! mapping lifecycle (create / expire / block grant), not on the
//! per-packet fast path. The CI logging leg pins this: the
//! disabled-sink configuration must hold the baseline's
//! machine-relative throughput ratios within 5%.
//!
//! Four events cover the three §6.2 allocation policies' logging
//! models:
//!
//! * [`EventSink::mapping_created`] / [`EventSink::mapping_expired`] —
//!   one pair per translation mapping: what per-connection logging
//!   records;
//! * [`EventSink::block_allocated`] / [`EventSink::block_released`] —
//!   one pair per contiguous port block (the
//!   [`crate::config::PortAllocation::PortBlock`] policy): what bulk
//!   port-block logging records, hundreds of times fewer than
//!   per-connection;
//! * deterministic NAT
//!   ([`crate::config::PortAllocation::Deterministic`], RFC 7422)
//!   fires no block events and needs no log at all — attribution is
//!   recomputed from the algorithmic mapping.

use netcore::{Endpoint, Protocol, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// What an installed log sink records — the operator's logging-policy
/// knob, orthogonal to (but normally paired with) the port-allocation
/// policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TelemetryMode {
    /// No sink installed; the engine does no telemetry work.
    #[default]
    Off,
    /// Record one create/expire pair per mapping (per-connection
    /// logging — the volume-heavy policy of §2's survey).
    PerConnection,
    /// Record one allocate/release pair per contiguous port block
    /// (bulk port-block logging — what large deployments run).
    PerBlock,
    /// NetFlow-style sampled per-connection logging: keep one mapping
    /// in `one_in` (deterministic by flow-key hash, so the create and
    /// expire records of a sampled mapping always travel together).
    /// The operator's middle ground when full per-connection volume is
    /// unaffordable but block granularity is too coarse.
    Sampled { one_in: u32 },
}

impl TelemetryMode {
    pub fn name(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::PerConnection => "per-connection",
            TelemetryMode::PerBlock => "per-block",
            TelemetryMode::Sampled { .. } => "sampled",
        }
    }
}

/// One mapping lifecycle event: the subscriber-side and public-side
/// endpoints of a translation table entry at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingEvent {
    pub at: SimTime,
    pub proto: Protocol,
    /// Subscriber-side endpoint (`IPint:portint`).
    pub internal: Endpoint,
    /// Public-side endpoint (`IPext:portext`).
    pub external: Endpoint,
}

/// One port-block lifecycle event: a contiguous range of
/// `[block_start, block_start + block_len)` external ports on
/// `ext_ip` granted to (or returned by) `subscriber`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEvent {
    pub at: SimTime,
    pub proto: Protocol,
    /// Subscriber (internal host) the block belongs to.
    pub subscriber: Ipv4Addr,
    pub ext_ip: Ipv4Addr,
    pub block_start: u16,
    pub block_len: u16,
}

/// Receiver of NAT state-change events. Installed per engine (one per
/// shard in a [`crate::ShardedNat`]), owned and driven by the shard's
/// thread — implementations need no internal synchronization beyond
/// being `Send + Sync` types (every callback takes `&mut self`; the
/// `Sync` bound only keeps a sink-carrying `Nat` shareable by
/// reference, e.g. inside a `OnceLock`d artifact cache).
///
/// `into_any` exists so a caller that installed a concrete sink can
/// recover it after the run (`Box<dyn Any>::downcast`); trait
/// upcasting to `Any` is not available on the crate's MSRV.
pub trait EventSink: Send + Sync {
    fn mapping_created(&mut self, event: &MappingEvent);
    fn mapping_expired(&mut self, event: &MappingEvent);
    fn block_allocated(&mut self, event: &BlockEvent);
    fn block_released(&mut self, event: &BlockEvent);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Encoded `(records, bytes)` accumulated so far, for sinks that
    /// measure log volume (`None` for sinks that don't). Lets the
    /// engine's metrics snapshot surface sink throughput without
    /// knowing the concrete sink type.
    fn volume(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Counting sink for tests and overhead probes: tallies events,
/// stores nothing.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingSink {
    pub created: u64,
    pub expired: u64,
    pub blocks_allocated: u64,
    pub blocks_released: u64,
}

impl EventSink for CountingSink {
    fn mapping_created(&mut self, _event: &MappingEvent) {
        self.created += 1;
    }
    fn mapping_expired(&mut self, _event: &MappingEvent) {
        self.expired += 1;
    }
    fn block_allocated(&mut self, _event: &BlockEvent) {
        self.blocks_allocated += 1;
    }
    fn block_released(&mut self, _event: &BlockEvent) {
        self.blocks_released += 1;
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The engine-side sink slot: `None` is the disabled (zero-cost)
/// state. Wrapped so `Nat` keeps its derived `Debug`.
pub(crate) struct SinkSlot(pub(crate) Option<Box<dyn EventSink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("EventSink(installed)"),
            None => f.write_str("EventSink(none)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_and_default() {
        assert_eq!(TelemetryMode::default(), TelemetryMode::Off);
        assert_eq!(TelemetryMode::PerConnection.name(), "per-connection");
        assert_eq!(TelemetryMode::PerBlock.name(), "per-block");
        assert_eq!(TelemetryMode::Off.name(), "off");
        assert_eq!(TelemetryMode::Sampled { one_in: 10 }.name(), "sampled");
    }

    #[test]
    fn mode_serde_round_trip() {
        for mode in [
            TelemetryMode::Off,
            TelemetryMode::PerConnection,
            TelemetryMode::PerBlock,
            TelemetryMode::Sampled { one_in: 10 },
        ] {
            let v = serde_json::to_string(&mode).expect("serializable");
            let back: TelemetryMode = serde_json::from_str(&v).expect("parseable");
            assert_eq!(mode, back);
        }
    }

    #[test]
    fn counting_sink_recovers_through_any() {
        let mut sink: Box<dyn EventSink> = Box::<CountingSink>::default();
        let e = MappingEvent {
            at: SimTime::from_secs(1),
            proto: Protocol::Udp,
            internal: Endpoint::new(Ipv4Addr::new(100, 64, 0, 1), 40_000),
            external: Endpoint::new(Ipv4Addr::new(198, 51, 100, 1), 10_000),
        };
        sink.mapping_created(&e);
        sink.mapping_created(&e);
        sink.mapping_expired(&e);
        let counts = sink
            .into_any()
            .downcast::<CountingSink>()
            .expect("concrete type recoverable");
        assert_eq!((counts.created, counts.expired), (2, 1));
    }
}
