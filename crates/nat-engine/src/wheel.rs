//! Shared hierarchical-timer-wheel arithmetic.
//!
//! The engine grew two hand-rolled hierarchical wheels with different
//! contracts: the store's expiry wheel (`nat_engine::store`, ~1 s
//! level-0 buckets, lazy rescheduling, generation+sequence authority)
//! and the traffic driver's event wheel (`cgn_traffic::wheel`,
//! millisecond-exact, `(time, seq)` total order). Their *storage and
//! draining* policies genuinely differ, but the boundary-bug-prone
//! core — which bucket a deadline parks in relative to the current
//! horizon, and which higher-level buckets must cascade downward when
//! the horizon crosses a level boundary — was duplicated. This module
//! keeps exactly one copy of that arithmetic, parameterized by a
//! [`WheelGeometry`]: per-level bit shifts (a level-`l` bucket spans
//! `2^shifts[l]` milliseconds) and per-level bucket counts (powers of
//! two).
//!
//! Both wheels instantiate it:
//!
//! * store expiry wheel — `shifts [10, 16, 22, 28]`, `64` buckets per
//!   level (~1 s / ~65 s / ~70 min / ~3 day buckets);
//! * driver event wheel — `shifts [0, 8, 14, 20]`, buckets
//!   `[256, 64, 64, 64]` (1 ms exact at level 0, ~0.25 s / ~16 s /
//!   ~17.5 min above).
//!
//! The refactor is arithmetic-only: bucket indices and cascade
//! schedules are bit-identical to the previous hand-rolled versions,
//! so run digests are unchanged (the driver's determinism cross-checks
//! and the store's slab-vs-reference differential test both pin this).

/// Shape of a hierarchical wheel: `shifts[l]` is the log2 bucket span
/// of level `l` in milliseconds (strictly increasing), `buckets[l]`
/// the number of buckets on that level (a power of two).
#[derive(Debug, Clone, Copy)]
pub struct WheelGeometry {
    pub shifts: &'static [u32],
    pub buckets: &'static [u64],
}

impl WheelGeometry {
    /// `(level, bucket-within-level)` where a deadline parks, given the
    /// wheel's current horizon:
    ///
    /// * already-due deadlines (`deadline <= horizon`) park in the
    ///   horizon's own level-0 bucket, which the next advance drains
    ///   first;
    /// * a deadline within level `l`'s span relative to the horizon
    ///   parks at `(deadline >> shifts[l]) & (buckets[l] - 1)`;
    /// * a deadline beyond the top level's span parks in the farthest
    ///   top-level bucket and re-cascades as the wheel turns.
    pub fn place(&self, horizon: u64, deadline: u64) -> (usize, usize) {
        let d = deadline.max(horizon);
        for (level, &shift) in self.shifts.iter().enumerate() {
            if (d >> shift) - (horizon >> shift) < self.buckets[level] {
                return (level, ((d >> shift) & (self.buckets[level] - 1)) as usize);
            }
        }
        let top = self.shifts.len() - 1;
        let n = self.buckets[top];
        (
            top,
            (((horizon >> self.shifts[top]) + (n - 1)) & (n - 1)) as usize,
        )
    }

    /// The higher-level buckets that must be redistributed downward
    /// when the wheel's horizon crosses level-0 tick `tick`
    /// (`tick = horizon >> shifts[0]`), yielded **highest level
    /// first** so entries settle downward through every level they
    /// pass. Level `l` wraps every `2^(shifts[l] - shifts[0])` ticks;
    /// off-boundary ticks yield nothing.
    pub fn cascades(&self, tick: u64) -> impl Iterator<Item = (usize, usize)> + '_ {
        (1..self.shifts.len()).rev().filter_map(move |level| {
            let rel = self.shifts[level] - self.shifts[0];
            if tick & ((1u64 << rel) - 1) != 0 {
                return None;
            }
            Some((level, ((tick >> rel) & (self.buckets[level] - 1)) as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The store wheel's shape.
    const STORE: WheelGeometry = WheelGeometry {
        shifts: &[10, 16, 22, 28],
        buckets: &[64, 64, 64, 64],
    };
    /// The driver wheel's shape.
    const DRIVER: WheelGeometry = WheelGeometry {
        shifts: &[0, 8, 14, 20],
        buckets: &[256, 64, 64, 64],
    };

    #[test]
    fn due_and_past_deadlines_park_at_the_horizon() {
        let h = 70_000; // horizon 70 s
        for d in [0, 69_999, 70_000] {
            assert_eq!(STORE.place(h, d), (0, ((h >> 10) & 63) as usize));
            assert_eq!(DRIVER.place(h, d.min(h)), (0, (h & 255) as usize));
        }
    }

    #[test]
    fn levels_match_the_hand_rolled_spans() {
        // Store: level 0 spans 64 × 2^10 ms from the horizon.
        assert_eq!(STORE.place(0, 60_000).0, 0);
        assert_eq!(STORE.place(0, 66_000).0, 1); // past 2^16 = 65 536 ms
        assert_eq!(STORE.place(0, 5_000_000).0, 2); // ~83 min window
        assert_eq!(STORE.place(0, 400_000_000).0, 3);
        // Driver: 256 ms exact at level 0, then 2^8 / 2^14 / 2^20 ms.
        assert_eq!(DRIVER.place(0, 255), (0, 255));
        assert_eq!(DRIVER.place(0, 256).0, 1);
        assert_eq!(DRIVER.place(0, 20_000).0, 2);
        assert_eq!(DRIVER.place(0, 2_000_000).0, 3);
        // Bucket index is the shifted deadline masked by the level size.
        assert_eq!(DRIVER.place(0, 300), (1, (300 >> 8) & 63));
        assert_eq!(STORE.place(0, 66_000), (1, ((66_000 >> 16) & 63)));
    }

    #[test]
    fn beyond_top_span_parks_farthest() {
        // ~200 days out for the store wheel: farthest top-level bucket
        // relative to the horizon.
        let h = 1_000_000u64;
        let far = u64::MAX / 2;
        let (level, bucket) = STORE.place(h, far);
        assert_eq!(level, 3);
        assert_eq!(bucket, (((h >> 28) + 63) & 63) as usize);
    }

    #[test]
    fn cascade_schedule_matches_level_periods() {
        // Store ticks are 2^10 ms; level 1 wraps every 64 ticks,
        // level 2 every 4096, level 3 every 2^18.
        assert_eq!(STORE.cascades(63).count(), 0);
        let l1: Vec<_> = STORE.cascades(64).collect();
        assert_eq!(l1, vec![(1, 1)]);
        let l12: Vec<_> = STORE.cascades(4096).collect();
        assert_eq!(l12, vec![(2, 1), (1, 0)], "highest level first");
        let l123: Vec<_> = STORE.cascades(1 << 18).collect();
        assert_eq!(l123, vec![(3, 1), (2, 0), (1, 0)]);
        // Driver ticks are 1 ms; level 1 wraps every 256 ticks.
        assert_eq!(DRIVER.cascades(255).count(), 0);
        assert_eq!(DRIVER.cascades(256).collect::<Vec<_>>(), vec![(1, 1)]);
        assert_eq!(
            DRIVER.cascades(1 << 14).collect::<Vec<_>>(),
            vec![(2, 1), (1, 0)]
        );
    }
}
