//! Slab-backed mapping storage with interned keys and timer-wheel expiry.
//!
//! The engine's original storage was four `std::collections::HashMap`s:
//! mappings by `u64` id, an outbound index keyed by `(Protocol,
//! Endpoint, …)` tuples, an external index keyed by `(Protocol,
//! Endpoint)`, and a reverse `id → key` map for cleanup. At the
//! millions-of-mappings populations a CGN is dimensioned for (§6.2),
//! that layout loses to cache pressure: every packet chases pointers
//! through separately-allocated hash nodes and SipHashes ~24-byte
//! composite keys. [`MappingStore`] replaces all of it with dense
//! storage:
//!
//! * **Slab arena** — mappings live inline in chunked fixed-size
//!   arenas (the crate-private `arena` module): 2 MiB-aligned chunks
//!   with stable
//!   addresses, so growth appends a chunk instead of reallocating and
//!   copying the slab (no copy storms, no mid-burst invalidation of
//!   prefetched rows). A freed slot goes onto an address-ordered
//!   free-list — the next insert reuses the *lowest* free id, packing
//!   live slots toward the front of the arena for locality. Slot ids
//!   are `u32` (half the old `u64` ids) and index the arena directly —
//!   no second hash lookup to reach the mapping.
//!
//! * **Interned keys** — internal hosts intern to dense `u32` ids
//!   ([`MappingStore::intern_host`]); `(external IP, protocol)` pairs
//!   intern to dense `u32` pool ids ([`MappingStore::intern_pool`]).
//!   Per-host state (session counts, paired-pooling assignment) lives
//!   in a plain `Vec` indexed by host id. The outbound key packs into
//!   one `u128` (layout below), the external key into one `u64`, and
//!   both indices hash those integers with a SplitMix64-based hasher
//!   ([`mix64`]) instead of SipHash over tuples.
//!
//! * **Hot/cold slot split** — the fields every sweep and every
//!   expiry check touch (generation, wheel bookkeeping, the cached
//!   expiry, the owning host id) live in a dense parallel array of
//!   32-byte `HotSlot` rows; the cold remainder (packed keys, the
//!   full [`Mapping`] with its filter state) stays in the slab. A
//!   sweep or a demand sample walks only the hot array — a quarter of
//!   the cache traffic of dragging whole slots through the LLC.
//!
//! * **Open-addressed indices** — the out-key and ext-key maps are
//!   flat linear-probe tables with 8-byte cells (a 32-bit fingerprint
//!   tag + the slot id); full keys are verified against the slab on
//!   fingerprint hits. Compared to the previous `HashMap` (16/32-byte
//!   entries plus per-group control metadata), probes touch half the
//!   index bytes, and [`MappingStore::prefetch_slot`] can pull the
//!   verified slot's rows into cache ahead of the burst pipeline.
//!
//! * **Hierarchical timer wheel** — instead of scanning the whole
//!   table on [`sweep`](MappingStore::sweep_due) (or short-circuiting
//!   on an earliest-expiry watermark, which still paid a full scan
//!   whenever it was passed), every mapping schedules a timer entry in
//!   a 4-level × 64-bucket wheel. A sweep walks only the buckets that
//!   became due, so its cost tracks the number of expiring mappings,
//!   not the table size.
//!
//! # Out-key layout (`u128`)
//!
//! ```text
//! bits   0..16   internal port
//! bits  16..48   interned internal host id (u32)
//! bits  48..64   destination port   (AddressAndPortDependent only)
//! bits  64..96   destination IPv4   (AddressDependent + APD)
//! bits  96..98   mapping-behaviour kind (0 = EIM, 1 = ADM, 2 = APDM)
//! bit   98       protocol (0 = UDP, 1 = TCP)
//! ```
//!
//! # Ext-key layout (`u64`)
//!
//! ```text
//! bits   0..16   external port
//! bits  16..48   interned (external IP, protocol) pool id (u32)
//! ```
//!
//! # Timer-wheel resolution
//!
//! Level `l` covers 64 buckets of `2^shift[l]` milliseconds with
//! `shift = [10, 16, 22, 28]`: ~1 s buckets spanning ~65 s at level 0,
//! then ~65 s / ~70 min / ~3 days buckets above, cascading downward as
//! the wheel turns. Entries are **lazy**: a refresh that *extends* a
//! mapping leaves its entry in place (the entry re-schedules itself to
//! the real expiry when it fires), while a refresh that *shortens* the
//! expiry (a TCP FIN/RST moving a mapping onto the transitory clock)
//! schedules a new, earlier entry and lets the old one die as stale.
//! Stale entries are recognised by a per-slot generation counter (slot
//! reuse) plus a per-slot schedule sequence number (at most one
//! authoritative entry per slot), and cost one comparison when their
//! bucket is drained.

use crate::arena::Arena;
use crate::config::MappingBehavior;
use crate::wheel::WheelGeometry;
use netcore::{Endpoint, Protocol, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::net::Ipv4Addr;

/// SplitMix64 finalizer — stable across runs and platforms, unlike
/// `std::hash`'s SipHash keys. Doubles as the shard hash
/// (re-exported as `sharded::mix64`) and the avalanche step of
/// [`Mix64Hasher`].
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast, deterministic hasher for the store's packed-integer keys:
/// an FxHash-style fold per write, finished with a [`mix64`]
/// avalanche. Not DoS-resistant — fine for keys the engine itself
/// constructs, which is the only thing the store hashes.
#[derive(Debug, Default, Clone)]
pub struct Mix64Hasher(u64);

const FOLD: u64 = 0x51_7C_C1_B7_27_22_0A_95;

impl Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(FOLD);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FOLD);
    }
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn write_i8(&mut self, v: i8) {
        self.write_u64(v as u64);
    }
    fn write_i16(&mut self, v: i16) {
        self.write_u64(v as u64);
    }
    fn write_i32(&mut self, v: i32) {
        self.write_u64(v as u64);
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn write_isize(&mut self, v: isize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` with the deterministic [`Mix64Hasher`].
pub type MixMap<K, V> = HashMap<K, V, BuildHasherDefault<Mix64Hasher>>;

/// The destination endpoints a mapping has contacted — the filter
/// state for restricted NATs. Semantically a set; physically the
/// first three endpoints live inline (no heap allocation for the
/// dominant 1-contact case) and further ones spill to a plain vector
/// scanned linearly. At realistic fan-outs (tens of destinations) a
/// short sequential scan beats a `HashSet`'s hash + random probe,
/// and keepalive traffic hits its own destination in the first slot.
#[derive(Debug, Clone)]
pub struct ContactSet {
    inline: [Endpoint; CONTACTS_INLINE],
    inline_len: u8,
    spill: Vec<Endpoint>,
}

impl Default for ContactSet {
    fn default() -> Self {
        Self::new()
    }
}

const CONTACTS_INLINE: usize = 3;

impl ContactSet {
    pub fn new() -> Self {
        ContactSet {
            inline: [Endpoint::new(Ipv4Addr::UNSPECIFIED, 0); CONTACTS_INLINE],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    pub fn contains(&self, e: &Endpoint) -> bool {
        self.inline[..self.inline_len as usize].contains(e) || self.spill.contains(e)
    }

    /// Insert with set semantics; returns `true` if newly added.
    pub fn insert(&mut self, e: Endpoint) -> bool {
        if self.contains(&e) {
            return false;
        }
        if (self.inline_len as usize) < CONTACTS_INLINE {
            self.inline[self.inline_len as usize] = e;
            self.inline_len += 1;
        } else {
            self.spill.push(e);
        }
        true
    }

    pub fn iter(&self) -> impl Iterator<Item = &Endpoint> {
        self.inline[..self.inline_len as usize]
            .iter()
            .chain(self.spill.iter())
    }
}

/// Lifecycle of a tracked TCP connection (simplified RFC 5382 view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TcpConnState {
    /// SYN seen, handshake incomplete — transitory timeout applies.
    Transitory,
    /// Handshake completed — long established timeout applies.
    Established,
    /// FIN or RST seen — transitory timeout applies again.
    Closing,
}

/// One translation table entry.
#[derive(Debug, Clone)]
pub struct Mapping {
    pub proto: Protocol,
    /// The subscriber-side endpoint (`IPint:portint`).
    pub internal: Endpoint,
    /// The public-side endpoint (`IPext:portext`).
    pub external: Endpoint,
    /// Destination endpoints contacted through this mapping — the filter
    /// state for restricted NATs.
    pub contacted: ContactSet,
    pub created: SimTime,
    pub last_refresh: SimTime,
    pub expiry: SimTime,
    pub(crate) tcp: Option<TcpConnState>,
}

impl Mapping {
    /// A fresh mapping with empty filter state and no TCP tracking.
    pub fn new(
        proto: Protocol,
        internal: Endpoint,
        external: Endpoint,
        now: SimTime,
        expiry: SimTime,
    ) -> Self {
        Mapping {
            proto,
            internal,
            external,
            contacted: ContactSet::new(),
            created: now,
            last_refresh: now,
            expiry,
            tcp: None,
        }
    }

    pub fn expired(&self, now: SimTime) -> bool {
        self.expiry <= now
    }

    /// Remaining idle budget at `now` (zero if expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expiry.saturating_since(now)
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

const WHEEL_LEVELS: usize = 4;
const WHEEL_BUCKETS: usize = 64;
/// Millisecond shift per level: ~1 s, ~65 s, ~70 min, ~3 day buckets.
const WHEEL_SHIFTS: [u32; WHEEL_LEVELS] = [10, 16, 22, 28];
/// The shared placement/cascade arithmetic (see [`crate::wheel`]) at
/// this wheel's shape.
const WHEEL_GEOM: WheelGeometry = WheelGeometry {
    shifts: &WHEEL_SHIFTS,
    buckets: &[WHEEL_BUCKETS as u64; WHEEL_LEVELS],
};

#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    slot: u32,
    gen: u32,
    /// Per-slot schedule sequence number (see [`Slot::wheel_seq`]):
    /// only the entry carrying the slot's latest sequence is
    /// authoritative, so at most one entry can ever expire or
    /// reschedule a slot — duplicates (e.g. a shorten followed by an
    /// extension back to the old deadline) die stale on this check.
    seq: u32,
    deadline_ms: u64,
}

#[derive(Debug)]
struct TimerWheel {
    /// Virtual time the wheel has been advanced to.
    horizon_ms: u64,
    /// `WHEEL_LEVELS * WHEEL_BUCKETS` buckets, level-major.
    buckets: Vec<Vec<TimerEntry>>,
    /// Entries currently parked in buckets (live + stale).
    entries: usize,
    /// Entries re-distributed downward by cascades since creation —
    /// the wheel's background re-filing work, a pure function of the
    /// deadline stream (one add per moved entry, cheap enough to
    /// count unconditionally).
    cascaded: u64,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            horizon_ms: 0,
            buckets: (0..WHEEL_LEVELS * WHEEL_BUCKETS)
                .map(|_| Vec::new())
                .collect(),
            entries: 0,
            cascaded: 0,
        }
    }

    /// Flat bucket index for a deadline, relative to the current
    /// horizon — the shared [`WheelGeometry::place`] arithmetic
    /// (already-due deadlines park in the horizon's own level-0
    /// bucket; beyond-span deadlines park farthest and re-cascade).
    fn place(&self, deadline_ms: u64) -> usize {
        let (level, bucket) = WHEEL_GEOM.place(self.horizon_ms, deadline_ms);
        level * WHEEL_BUCKETS + bucket
    }

    fn schedule(&mut self, slot: u32, gen: u32, seq: u32, deadline_ms: u64) {
        let b = self.place(deadline_ms);
        self.buckets[b].push(TimerEntry {
            slot,
            gen,
            seq,
            deadline_ms,
        });
        self.entries += 1;
    }

    /// Re-distribute one higher-level bucket downward (called when the
    /// level below wraps around).
    fn cascade(&mut self, level: usize, bucket: usize) {
        let drained = std::mem::take(&mut self.buckets[level * WHEEL_BUCKETS + bucket]);
        self.cascaded += drained.len() as u64;
        for e in drained {
            let b = self.place(e.deadline_ms);
            self.buckets[b].push(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Open-addressed key index
// ---------------------------------------------------------------------------

/// An empty cell: tag 0, slot 0.
const CELL_EMPTY: u64 = 0;
/// A tombstone cell: tag 1, slot 0.
const CELL_TOMB: u64 = 1 << 32;

/// Open-addressed `key → slot` index over the store's packed integer
/// keys: one `u64` cell per entry (key-fingerprint tag in the high 32
/// bits, slot id in the low 32) with linear probing and tombstone
/// deletion. Tag `0` = empty, `1` = tombstone, fingerprints are ≥ 2.
/// Packing tag and slot into a single word matters on the hot path: a
/// probe hit reads one cache line instead of touching parallel tag and
/// slot arrays (two lines), and a table rebuild streams one array.
/// On a fingerprint hit the caller verifies the full key against the
/// slab, so the index never stores keys at all. Callers supply the
/// hash — the store keys are already packed integers, so one [`mix64`]
/// avalanche is the whole hash function.
#[derive(Debug)]
struct OpenIndex {
    /// `CELL_EMPTY`, `CELL_TOMB`, or `fingerprint << 32 | slot`.
    cells: Vec<u64>,
    live: usize,
    tombstones: usize,
}

impl OpenIndex {
    fn new() -> OpenIndex {
        OpenIndex {
            cells: vec![CELL_EMPTY; 16],
            live: 0,
            tombstones: 0,
        }
    }

    #[inline]
    fn fingerprint(hash: u64) -> u32 {
        // High bits (the probe start uses the low bits) nudged off the
        // two reserved tag values.
        ((hash >> 32) as u32).max(2)
    }

    #[inline]
    fn mask(&self) -> usize {
        self.cells.len() - 1
    }

    /// Insert a `(hash, slot)` cell. Keys are unique among live
    /// entries by construction — the engine only inserts after a miss
    /// or a removal — so no duplicate scan is needed and the first
    /// reusable cell wins. `rehash` recomputes a stored slot's key
    /// hash when the table grows.
    fn insert(&mut self, hash: u64, slot: u32, rehash: impl Fn(u32) -> u64) {
        if (self.live + self.tombstones + 1) * 4 > self.cells.len() * 3 {
            self.grow(rehash);
        }
        let mask = self.mask();
        let mut i = hash as usize & mask;
        loop {
            let cell = self.cells[i];
            if cell <= CELL_TOMB {
                if cell == CELL_TOMB {
                    self.tombstones -= 1;
                }
                self.cells[i] = (Self::fingerprint(hash) as u64) << 32 | slot as u64;
                self.live += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Find the slot stored under `hash` whose full key matches
    /// (`verify` checks the slab). Probes stop at the first empty cell.
    #[inline]
    fn get(&self, hash: u64, verify: impl Fn(u32) -> bool) -> Option<u32> {
        let fp = Self::fingerprint(hash);
        let mask = self.mask();
        let mut i = hash as usize & mask;
        loop {
            let cell = self.cells[i];
            if cell == CELL_EMPTY {
                return None;
            }
            if (cell >> 32) as u32 == fp && verify(cell as u32) {
                return Some(cell as u32);
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove the cell holding exactly `slot` under `hash` (slot ids
    /// are unique in the index, so identity is the full-key check).
    fn remove(&mut self, hash: u64, slot: u32) -> bool {
        let target = (Self::fingerprint(hash) as u64) << 32 | slot as u64;
        let mask = self.mask();
        let mut i = hash as usize & mask;
        loop {
            let cell = self.cells[i];
            if cell == CELL_EMPTY {
                return false;
            }
            if cell == target {
                self.cells[i] = CELL_TOMB;
                self.live -= 1;
                self.tombstones += 1;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Rebuild at double capacity when genuinely full, or in place
    /// when tombstones are what crossed the load threshold.
    fn grow(&mut self, rehash: impl Fn(u32) -> u64) {
        let cap = if (self.live + 1) * 2 > self.cells.len() {
            self.cells.len() * 2
        } else {
            self.cells.len()
        };
        let old = std::mem::replace(&mut self.cells, vec![CELL_EMPTY; cap]);
        self.live = 0;
        self.tombstones = 0;
        let mask = cap - 1;
        for cell in old {
            if cell <= CELL_TOMB {
                continue;
            }
            let slot = cell as u32;
            let mut i = rehash(slot) as usize & mask;
            while self.cells[i] != CELL_EMPTY {
                i = (i + 1) & mask;
            }
            self.cells[i] = cell;
            self.live += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Interners + slab
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HostEntry {
    ip: Ipv4Addr,
    /// Mappings currently allocated to this host (live or
    /// stale-but-unswept) — the per-subscriber session counter.
    sessions: u32,
    /// Sticky external-IP assignment for paired pooling.
    paired: Option<Ipv4Addr>,
}

/// The per-slot fields every sweep and expiry check reads, split into
/// a dense parallel array (32 bytes per row) so those paths never pull
/// the ~200-byte cold slot through the cache.
#[derive(Debug, Clone, Copy)]
struct HotSlot {
    /// Bumped on every free; timer entries carry the generation they
    /// were scheduled under, so entries for a reused slot are stale.
    gen: u32,
    /// Bumped every time a new timer entry is filed for this slot
    /// while live; the entry carrying the latest value is the single
    /// authoritative one, everything older is a stale duplicate.
    wheel_seq: u32,
    /// Deadline of this slot's authoritative timer entry (used to
    /// decide whether a new expiry shortens or lazily extends it).
    wheel_deadline: u64,
    /// Cache of the mapping's `expiry` in ms. Maintained by
    /// [`MappingStore::insert`]/[`MappingStore::set_expiry`] — the
    /// engine never writes `Mapping::expiry` through `get_mut`, so the
    /// cache is authoritative for expiry checks.
    expiry_ms: u64,
    /// Interned internal-host id of the occupant.
    host: u32,
    /// Whether the slot holds a live mapping (mirrors
    /// `Slot::mapping.is_some()` without touching the cold row).
    live: bool,
}

/// Cold remainder of a slot: the packed keys (read on index verify and
/// removal) and the full mapping (read on translation refresh).
#[derive(Debug)]
struct Slot {
    out_key: u128,
    ext_key: u64,
    mapping: Option<Mapping>,
}

/// Occupancy snapshot of one store — the "how big did the arena get"
/// observable the dimensioning report surfaces next to the port-demand
/// stats. All counters add under [`StoreOccupancy::merge`], so a
/// sharded engine reports the fleet-wide sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreOccupancy {
    /// Arena length (high-water mark of concurrent slots).
    pub slots: u64,
    /// Slots holding a live mapping.
    pub live: u64,
    /// Slots on the free-list awaiting reuse.
    pub free: u64,
    /// Internal hosts interned.
    pub hosts_interned: u64,
    /// `(external IP, protocol)` pairs interned.
    pub pools_interned: u64,
    /// Timer-wheel entries parked (live + stale).
    pub timers: u64,
}

impl StoreOccupancy {
    /// Fold another store's occupancy into this one (per-shard sums).
    pub fn merge(&mut self, other: &StoreOccupancy) {
        self.slots += other.slots;
        self.live += other.live;
        self.free += other.free;
        self.hosts_interned += other.hosts_interned;
        self.pools_interned += other.pools_interned;
        self.timers += other.timers;
    }
}

const KIND_EIM: u128 = 0;
const KIND_ADM: u128 = 1;
const KIND_APDM: u128 = 2;

/// The slab-backed mapping store: arena + free-list, interned packed
/// indices, and the expiry timer wheel. See the module docs for the
/// layout.
#[derive(Debug)]
pub struct MappingStore {
    /// Cold rows (keys + full mappings), parallel to `hot`.
    slots: Arena<Slot>,
    /// Hot rows (generation, wheel bookkeeping, cached expiry, host).
    hot: Arena<HotSlot>,
    /// Address-ordered free-list of reusable slot ids: `pop` returns
    /// the lowest free id, so reuse packs live slots toward the front
    /// of the arena and a churning shard's working set stays dense.
    free: BinaryHeap<Reverse<u32>>,
    live: usize,
    wheel: TimerWheel,
    /// Packed out-key (`u128`) → slot id (open-addressed; full keys
    /// verified against the slab).
    out_index: OpenIndex,
    /// Packed ext-key (`u64`) → slot id (open-addressed).
    ext_index: OpenIndex,
    hosts: Vec<HostEntry>,
    host_ids: MixMap<Ipv4Addr, u32>,
    pools: Vec<(Ipv4Addr, Protocol)>,
    pool_ids: MixMap<(Ipv4Addr, Protocol), u32>,
}

impl Default for MappingStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MappingStore {
    pub fn new() -> Self {
        MappingStore {
            slots: Arena::new(),
            hot: Arena::new(),
            free: BinaryHeap::new(),
            live: 0,
            wheel: TimerWheel::new(),
            out_index: OpenIndex::new(),
            ext_index: OpenIndex::new(),
            hosts: Vec::new(),
            host_ids: MixMap::default(),
            pools: Vec::new(),
            pool_ids: MixMap::default(),
        }
    }

    /// Live mappings.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    // -- interners ---------------------------------------------------------

    /// Intern an internal host address to its dense id.
    pub fn intern_host(&mut self, ip: Ipv4Addr) -> u32 {
        if let Some(&id) = self.host_ids.get(&ip) {
            return id;
        }
        let id = u32::try_from(self.hosts.len()).expect("more than 2^32 internal hosts");
        self.hosts.push(HostEntry {
            ip,
            sessions: 0,
            paired: None,
        });
        self.host_ids.insert(ip, id);
        id
    }

    /// The interned address of a host id.
    pub fn host_ip(&self, host: u32) -> Ipv4Addr {
        self.hosts[host as usize].ip
    }

    /// Current session count (live + stale-unswept mappings) of a host.
    pub fn host_sessions(&self, host: u32) -> u32 {
        self.hosts[host as usize].sessions
    }

    /// Sticky paired-pooling external IP of a host, if assigned.
    pub fn paired_ext(&self, host: u32) -> Option<Ipv4Addr> {
        self.hosts[host as usize].paired
    }

    pub fn set_paired_ext(&mut self, host: u32, ext: Ipv4Addr) {
        self.hosts[host as usize].paired = Some(ext);
    }

    /// Intern an `(external IP, protocol)` pair to its dense pool id.
    pub fn intern_pool(&mut self, ip: Ipv4Addr, proto: Protocol) -> u32 {
        if let Some(&id) = self.pool_ids.get(&(ip, proto)) {
            return id;
        }
        let id = u32::try_from(self.pools.len()).expect("more than 2^32 (ip, proto) pools");
        assert!(id < (1 << 31), "pool id must pack into 48-bit ext keys");
        self.pools.push((ip, proto));
        self.pool_ids.insert((ip, proto), id);
        id
    }

    /// The `(external IP, protocol)` pair behind a pool id.
    pub fn pool_entry(&self, pool: u32) -> (Ipv4Addr, Protocol) {
        self.pools[pool as usize]
    }

    /// Number of interned `(external IP, protocol)` pairs.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    // -- key packing -------------------------------------------------------

    /// Pack the outbound-reuse key for a flow, shaped by the mapping
    /// behaviour. Interns the internal host.
    pub fn out_key(
        &mut self,
        behavior: MappingBehavior,
        proto: Protocol,
        internal: Endpoint,
        dst: Endpoint,
    ) -> u128 {
        let host = self.intern_host(internal.ip);
        let base = (host as u128) << 16 | internal.port as u128;
        let proto_bit = match proto {
            Protocol::Udp => 0u128,
            Protocol::Tcp => 1u128,
        } << 98;
        match behavior {
            MappingBehavior::EndpointIndependent => base | (KIND_EIM << 96) | proto_bit,
            MappingBehavior::AddressDependent => {
                base | (u32::from(dst.ip) as u128) << 64 | (KIND_ADM << 96) | proto_bit
            }
            MappingBehavior::AddressAndPortDependent => {
                base | (dst.port as u128) << 48
                    | (u32::from(dst.ip) as u128) << 64
                    | (KIND_APDM << 96)
                    | proto_bit
            }
        }
    }

    /// The interned internal-host id packed inside an out-key.
    pub fn host_of_key(key: u128) -> u32 {
        ((key >> 16) & 0xFFFF_FFFF) as u32
    }

    fn pack_ext(pool: u32, port: u16) -> u64 {
        (pool as u64) << 16 | port as u64
    }

    /// Index hash of a packed out-key: fold both halves through one
    /// [`mix64`] avalanche each.
    #[inline]
    fn hash_out(key: u128) -> u64 {
        mix64(key as u64 ^ mix64((key >> 64) as u64))
    }

    /// Index hash of a packed ext-key.
    #[inline]
    fn hash_ext(key: u64) -> u64 {
        mix64(key)
    }

    // -- lookups -----------------------------------------------------------

    /// Slot currently indexed under a packed out-key.
    pub fn lookup_out(&self, key: u128) -> Option<u32> {
        self.out_index.get(Self::hash_out(key), |s| {
            self.slots[s as usize].out_key == key
        })
    }

    /// Slot owning an external endpoint for a protocol. Never interns:
    /// a stray inbound endpoint that was never allocated stays out of
    /// the pool interner.
    pub fn lookup_ext(&self, proto: Protocol, external: Endpoint) -> Option<u32> {
        self.ext_key_of(proto, external)
            .and_then(|key| self.lookup_ext_key(key))
    }

    /// Pack an external endpoint into its ext-key, if its `(IP,
    /// protocol)` pool was ever interned. Never interns — a stray
    /// endpoint stays out of the pool interner and returns `None` —
    /// and performs no index probe, so the inbound burst pipeline can
    /// derive a whole burst's keys in one branch-free pass before
    /// probing any of them.
    #[inline]
    pub fn ext_key_of(&self, proto: Protocol, external: Endpoint) -> Option<u64> {
        let pool = *self.pool_ids.get(&(external.ip, proto))?;
        Some(Self::pack_ext(pool, external.port))
    }

    /// Slot currently indexed under an already-packed ext-key (from
    /// [`MappingStore::ext_key_of`]).
    #[inline]
    pub fn lookup_ext_key(&self, key: u64) -> Option<u32> {
        self.ext_index.get(Self::hash_ext(key), |s| {
            self.slots[s as usize].ext_key == key
        })
    }

    /// Hot-array expiry check for a live slot — the burst pipeline's
    /// reuse test, touching one 32-byte row instead of the cold
    /// mapping.
    #[inline]
    pub fn expired_at(&self, slot: u32, now: SimTime) -> bool {
        self.hot[slot as usize].expiry_ms <= now.as_millis()
    }

    /// Software-prefetch a slot's hot and cold rows into cache — the
    /// burst pipeline issues this one step ahead of translation so the
    /// LLC miss overlaps the previous packet's work. No-op on
    /// non-x86_64 targets.
    #[inline]
    pub fn prefetch_slot(&self, slot: u32) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint; both pointers come from live
        // in-bounds borrows.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if let (Some(hot), Some(cold)) =
                (self.hot.get(slot as usize), self.slots.get(slot as usize))
            {
                _mm_prefetch(hot as *const HotSlot as *const i8, _MM_HINT_T0);
                _mm_prefetch(cold as *const Slot as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slot;
    }

    /// Borrow a live mapping. Panics on a freed slot id.
    pub fn get(&self, slot: u32) -> &Mapping {
        self.slots[slot as usize]
            .mapping
            .as_ref()
            .expect("slot is free")
    }

    /// Mutably borrow a live mapping. Changing `expiry` directly does
    /// **not** reschedule the timer wheel — use
    /// [`MappingStore::set_expiry`] for that.
    pub fn get_mut(&mut self, slot: u32) -> &mut Mapping {
        self.slots[slot as usize]
            .mapping
            .as_mut()
            .expect("slot is free")
    }

    /// Iterate `(slot id, mapping)` over live slots in arena order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Mapping)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.mapping.as_ref().map(|m| (i as u32, m)))
    }

    // -- mutation ----------------------------------------------------------

    /// Insert a mapping under its packed out-key, indexing the external
    /// endpoint and scheduling expiry on the timer wheel. Returns the
    /// slot id. Increments the owning host's session counter.
    pub fn insert(&mut self, out_key: u128, proto: Protocol, mapping: Mapping) -> u32 {
        let host = Self::host_of_key(out_key);
        let pool = self.intern_pool(mapping.external.ip, proto);
        let ext_key = Self::pack_ext(pool, mapping.external.port);
        let deadline = mapping.expiry.as_millis();
        let slot = match self.free.pop() {
            Some(Reverse(s)) => {
                let hot = &mut self.hot[s as usize];
                hot.wheel_seq = 0;
                hot.wheel_deadline = deadline;
                hot.expiry_ms = deadline;
                hot.host = host;
                hot.live = true;
                let cold = &mut self.slots[s as usize];
                cold.out_key = out_key;
                cold.ext_key = ext_key;
                cold.mapping = Some(mapping);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 mapping slots");
                self.hot.push(HotSlot {
                    gen: 0,
                    wheel_seq: 0,
                    wheel_deadline: deadline,
                    expiry_ms: deadline,
                    host,
                    live: true,
                });
                self.slots.push(Slot {
                    out_key,
                    ext_key,
                    mapping: Some(mapping),
                });
                s
            }
        };
        let gen = self.hot[slot as usize].gen;
        self.wheel.schedule(slot, gen, 0, deadline);
        let slots = &self.slots;
        self.out_index.insert(Self::hash_out(out_key), slot, |s| {
            Self::hash_out(slots[s as usize].out_key)
        });
        self.ext_index.insert(Self::hash_ext(ext_key), slot, |s| {
            Self::hash_ext(slots[s as usize].ext_key)
        });
        self.hosts[host as usize].sessions += 1;
        self.live += 1;
        slot
    }

    /// Remove a mapping: drop it from both indices, decrement its
    /// host's session counter, free the slot (bumping the generation so
    /// parked timer entries die stale), and return the mapping plus the
    /// pool id its external port came from (for the caller's port
    /// release).
    pub fn remove(&mut self, slot: u32) -> Option<(Mapping, u32)> {
        let cold = &mut self.slots[slot as usize];
        let mapping = cold.mapping.take()?;
        let out_key = cold.out_key;
        let ext_key = cold.ext_key;
        let hot = &mut self.hot[slot as usize];
        hot.gen = hot.gen.wrapping_add(1);
        hot.live = false;
        let host = hot.host;
        self.out_index.remove(Self::hash_out(out_key), slot);
        self.ext_index.remove(Self::hash_ext(ext_key), slot);
        let sessions = &mut self.hosts[host as usize].sessions;
        *sessions = sessions.saturating_sub(1);
        self.free.push(Reverse(slot));
        self.live -= 1;
        Some((mapping, (ext_key >> 16) as u32))
    }

    /// Set a mapping's expiry, keeping the timer wheel honest: an
    /// extension is lazy (the parked entry re-schedules itself when it
    /// fires), a shortening files a new earlier entry and invalidates
    /// the parked one.
    pub fn set_expiry(&mut self, slot: u32, expiry: SimTime) {
        let m = self.slots[slot as usize]
            .mapping
            .as_mut()
            .expect("slot is free");
        m.expiry = expiry;
        let ms = expiry.as_millis();
        let hot = &mut self.hot[slot as usize];
        hot.expiry_ms = ms;
        if ms < hot.wheel_deadline {
            hot.wheel_seq = hot.wheel_seq.wrapping_add(1);
            hot.wheel_deadline = ms;
            let (gen, seq) = (hot.gen, hot.wheel_seq);
            self.wheel.schedule(slot, gen, seq, ms);
        }
    }

    /// Advance the timer wheel to `now` and collect the slots whose
    /// mappings are due. Returns `(entries inspected, due slots)`; the
    /// caller must [`remove`](MappingStore::remove) every due slot.
    /// Sweeps that inspect zero entries did no per-mapping work — the
    /// fast path the `sweep_scans` counter measures.
    pub fn sweep_due(&mut self, now: SimTime) -> (usize, Vec<u32>) {
        let now_ms = now.as_millis();
        let mut due = Vec::new();
        if self.wheel.entries == 0 {
            // Nothing scheduled: jump the horizon without turning.
            self.wheel.horizon_ms = self.wheel.horizon_ms.max(now_ms);
            return (0, due);
        }
        if now_ms < self.wheel.horizon_ms {
            return (0, due);
        }
        let mut inspected = 0usize;
        let mut resched: Vec<TimerEntry> = Vec::new();
        let start = self.wheel.horizon_ms >> WHEEL_SHIFTS[0];
        let end = now_ms >> WHEEL_SHIFTS[0];
        for tick in start..=end {
            if tick != start {
                self.wheel.horizon_ms = tick << WHEEL_SHIFTS[0];
                // Crossing into a new bucket: cascade every level that
                // wrapped, highest first so entries settle downward
                // (the shared schedule of [`WheelGeometry::cascades`]).
                for (level, bucket) in WHEEL_GEOM.cascades(tick) {
                    self.wheel.cascade(level, bucket);
                }
            }
            let bucket = (tick & 63) as usize;
            if self.wheel.buckets[bucket].is_empty() {
                continue;
            }
            let drained = std::mem::take(&mut self.wheel.buckets[bucket]);
            for e in drained {
                self.wheel.entries -= 1;
                inspected += 1;
                // Pure hot-array pass: stale check, expiry check, and
                // lazy rescheduling all read the 32-byte row — the
                // cold slot is never touched during a sweep.
                let hot = &mut self.hot[e.slot as usize];
                if hot.gen != e.gen || hot.wheel_seq != e.seq || !hot.live {
                    continue; // stale: freed, reused, or superseded entry
                }
                if hot.expiry_ms <= now_ms {
                    due.push(e.slot);
                } else {
                    // Lazily-extended mapping: park at the real expiry.
                    // The sequence bump happens immediately so any
                    // other parked entry for this slot is already
                    // stale; the wheel insert is deferred until the
                    // ticks have finished turning.
                    hot.wheel_seq = hot.wheel_seq.wrapping_add(1);
                    hot.wheel_deadline = hot.expiry_ms;
                    resched.push(TimerEntry {
                        slot: e.slot,
                        gen: e.gen,
                        seq: hot.wheel_seq,
                        deadline_ms: hot.expiry_ms,
                    });
                }
            }
        }
        self.wheel.horizon_ms = now_ms;
        for e in resched {
            self.wheel.schedule(e.slot, e.gen, e.seq, e.deadline_ms);
        }
        (inspected, due)
    }

    // -- read paths --------------------------------------------------------

    /// Unexpired-mapping counts per internal host at `now`, in host
    /// interning order, hosts with zero live mappings omitted — the
    /// allocation-free demand-sampling path of the traffic driver
    /// (the values of `Nat::ports_by_host` without the address map).
    pub fn active_ports_per_host(&self, now: SimTime) -> Vec<u32> {
        let now_ms = now.as_millis();
        let mut counts = vec![0u32; self.hosts.len()];
        // Hot-array scan: live flag, cached expiry, and host id are
        // all in the 32-byte row.
        for hot in self.hot.iter() {
            if hot.live && hot.expiry_ms > now_ms {
                counts[hot.host as usize] += 1;
            }
        }
        counts.retain(|&c| c > 0);
        counts
    }

    /// Timer-wheel entries re-distributed by cascades so far — the
    /// wheel's cumulative background re-filing work (the
    /// `cgn_timer_cascades_total` metric).
    pub fn timer_cascades(&self) -> u64 {
        self.wheel.cascaded
    }

    /// Arena chunks allocated across the hot and cold slot arenas —
    /// the `cgn_arena_chunks` gauge. Monotone and stable after
    /// warm-up: a steady-state shard performs zero storage
    /// reallocation copies, which the perf harness asserts by reading
    /// this before and after the measured window.
    pub fn arena_chunks(&self) -> u64 {
        (self.slots.chunks() + self.hot.chunks()) as u64
    }

    /// Slot ids parked on the address-ordered free-list — the
    /// `cgn_arena_slots_free` gauge.
    pub fn arena_slots_free(&self) -> u64 {
        self.free.len() as u64
    }

    /// Current occupancy counters (arena, free-list, interners, wheel).
    pub fn occupancy(&self) -> StoreOccupancy {
        StoreOccupancy {
            slots: self.slots.len() as u64,
            live: self.live as u64,
            free: self.free.len() as u64,
            hosts_interned: self.hosts.len() as u64,
            pools_interned: self.pools.len() as u64,
            timers: self.wheel.entries as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn mapping(internal: Endpoint, external: Endpoint, expiry: SimTime) -> Mapping {
        Mapping::new(Protocol::Udp, internal, external, SimTime::ZERO, expiry)
    }

    fn store_with(n: u16, expiry_secs: u64) -> (MappingStore, Vec<u32>) {
        let mut s = MappingStore::new();
        let mut slots = Vec::new();
        for k in 0..n {
            let internal = Endpoint::new(ip(100, 64, 0, (k % 250) as u8 + 1), 40_000 + k);
            let external = Endpoint::new(ip(198, 51, 100, 1), 10_000 + k);
            let key = s.out_key(
                MappingBehavior::EndpointIndependent,
                Protocol::Udp,
                internal,
                Endpoint::new(ip(203, 0, 113, 1), 80),
            );
            slots.push(s.insert(
                key,
                Protocol::Udp,
                mapping(internal, external, t(expiry_secs)),
            ));
        }
        (s, slots)
    }

    #[test]
    fn interners_are_stable_and_dense() {
        let mut s = MappingStore::new();
        let a = s.intern_host(ip(100, 64, 0, 1));
        let b = s.intern_host(ip(100, 64, 0, 2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.intern_host(ip(100, 64, 0, 1)), 0, "re-intern is stable");
        assert_eq!(s.host_ip(1), ip(100, 64, 0, 2));
        let p = s.intern_pool(ip(198, 51, 100, 1), Protocol::Udp);
        let q = s.intern_pool(ip(198, 51, 100, 1), Protocol::Tcp);
        assert_eq!((p, q), (0, 1), "protocol distinguishes pools");
        assert_eq!(s.pool_entry(1), (ip(198, 51, 100, 1), Protocol::Tcp));
    }

    #[test]
    fn out_keys_distinguish_kind_proto_and_dst() {
        let mut s = MappingStore::new();
        let internal = Endpoint::new(ip(100, 64, 0, 1), 40_000);
        let d1 = Endpoint::new(ip(203, 0, 113, 1), 80);
        let d2 = Endpoint::new(ip(203, 0, 113, 1), 443);
        let d3 = Endpoint::new(ip(203, 0, 113, 2), 80);
        use MappingBehavior::*;
        let eim = s.out_key(EndpointIndependent, Protocol::Udp, internal, d1);
        assert_eq!(
            eim,
            s.out_key(EndpointIndependent, Protocol::Udp, internal, d3),
            "EIM ignores the destination"
        );
        assert_ne!(
            eim,
            s.out_key(EndpointIndependent, Protocol::Tcp, internal, d1)
        );
        let adm = s.out_key(AddressDependent, Protocol::Udp, internal, d1);
        assert_eq!(
            adm,
            s.out_key(AddressDependent, Protocol::Udp, internal, d2)
        );
        assert_ne!(
            adm,
            s.out_key(AddressDependent, Protocol::Udp, internal, d3)
        );
        assert_ne!(adm, eim, "kind bits keep behaviours apart");
        let apdm = s.out_key(AddressAndPortDependent, Protocol::Udp, internal, d1);
        assert_ne!(
            apdm,
            s.out_key(AddressAndPortDependent, Protocol::Udp, internal, d2)
        );
        assert_eq!(MappingStore::host_of_key(apdm), 0);
    }

    #[test]
    fn free_list_reuses_lowest_slot_first_with_fresh_generation() {
        let (mut s, slots) = store_with(3, 60);
        assert_eq!(s.len(), 3);
        assert_eq!(slots, vec![0, 1, 2]);
        let (m, _pool) = s.remove(2).expect("live");
        assert_eq!(m.external.port, 10_002);
        s.remove(1).expect("live");
        assert!(s.remove(1).is_none(), "double remove is a no-op");
        assert_eq!(s.len(), 1);
        assert_eq!(s.occupancy().free, 2);
        assert_eq!(s.arena_slots_free(), 2);
        // Address-ordered reuse: slot 1 (lowest free id) is reused
        // first even though slot 2 was freed first — live slots pack
        // toward the front of the arena.
        let internal = Endpoint::new(ip(100, 64, 0, 9), 50_000);
        let key = s.out_key(
            MappingBehavior::EndpointIndependent,
            Protocol::Udp,
            internal,
            Endpoint::new(ip(203, 0, 113, 1), 80),
        );
        let reused = s.insert(
            key,
            Protocol::Udp,
            mapping(internal, Endpoint::new(ip(198, 51, 100, 1), 11_000), t(60)),
        );
        assert_eq!(reused, 1);
        assert_eq!(s.occupancy().slots, 3, "arena did not grow");
        assert_eq!(s.arena_slots_free(), 1);
        assert_eq!(s.get(1).internal, internal);
    }

    #[test]
    fn stale_wheel_entries_from_reused_slots_are_ignored() {
        let (mut s, _slots) = store_with(1, 60);
        s.remove(0).expect("live");
        // Reuse slot 0 with a later expiry; the parked entry for the
        // old mapping (deadline 60 s) must not expire the new one.
        let internal = Endpoint::new(ip(100, 64, 0, 7), 50_000);
        let key = s.out_key(
            MappingBehavior::EndpointIndependent,
            Protocol::Udp,
            internal,
            Endpoint::new(ip(203, 0, 113, 1), 80),
        );
        let slot = s.insert(
            key,
            Protocol::Udp,
            mapping(internal, Endpoint::new(ip(198, 51, 100, 1), 11_000), t(120)),
        );
        assert_eq!(slot, 0);
        let (inspected, due) = s.sweep_due(t(61));
        assert!(inspected >= 1, "the stale entry was drained and checked");
        assert!(due.is_empty(), "generation mismatch keeps the new mapping");
        let (_, due) = s.sweep_due(t(120));
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn sweep_skips_buckets_before_the_deadline() {
        let (mut s, _) = store_with(1, 60);
        for secs in [10, 30, 59] {
            let (inspected, due) = s.sweep_due(t(secs));
            assert_eq!((inspected, due.len()), (0, 0), "at {secs}s");
        }
        let (inspected, due) = s.sweep_due(t(60));
        assert_eq!(inspected, 1);
        assert_eq!(due, vec![0]);
        s.remove(0).expect("due slots are removed by the caller");
        let (inspected, due) = s.sweep_due(t(1000));
        assert_eq!((inspected, due.len()), (0, 0), "empty wheel fast path");
    }

    #[test]
    fn lazy_extension_reschedules_on_inspection() {
        let (mut s, _) = store_with(1, 60);
        s.set_expiry(0, t(110)); // extension: entry stays parked at 60 s
        let (inspected, due) = s.sweep_due(t(70));
        assert_eq!(inspected, 1, "parked entry fired and rescheduled");
        assert!(due.is_empty());
        let (inspected, _) = s.sweep_due(t(109));
        assert_eq!(inspected, 0, "rescheduled to the real expiry");
        let (_, due) = s.sweep_due(t(110));
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn shortened_expiry_files_an_earlier_entry() {
        // Mapping far out on the established clock, then a FIN-style
        // shortening: the new entry must fire early, the old one dies
        // stale when its bucket eventually drains.
        let (mut s, _) = store_with(1, 7440);
        s.set_expiry(0, t(540));
        let (inspected, due) = s.sweep_due(t(600));
        assert!(inspected >= 1);
        assert_eq!(due, vec![0]);
        s.remove(0).expect("live");
        let (_, due) = s.sweep_due(t(8000));
        assert!(due.is_empty(), "superseded entry is stale");
    }

    #[test]
    fn shorten_then_extend_back_never_duplicates_expiry() {
        // Regression: with deadline-equality authority, shortening
        // (new entry at 50 s) and then lazily extending back to the
        // *original* entry's deadline (100 s) left two entries that
        // both matched the slot's recorded deadline after the first
        // rescheduled — `sweep_due` then returned the slot twice and
        // `mappings_expired` double-counted. The per-slot sequence
        // number keeps exactly one entry authoritative.
        let (mut s, _) = store_with(1, 100);
        s.set_expiry(0, t(50)); // shorten: files a second entry
        s.set_expiry(0, t(100)); // lazy extension back to the old deadline
        let (_, due) = s.sweep_due(t(60));
        assert!(due.is_empty(), "expiry is 100 s, nothing due at 60 s");
        let (_, due) = s.sweep_due(t(100));
        assert_eq!(due, vec![0], "due exactly once, not per parked entry");
        s.remove(0).expect("live");
        let (_, due) = s.sweep_due(t(200));
        assert!(due.is_empty());
    }

    #[test]
    fn cascade_at_level_boundaries_preserves_expiry() {
        // Deadlines straddling the level-0 span (~65.5 s) and the
        // level-1 span (~70 min) must survive cascading intact.
        let mut s = MappingStore::new();
        let mut slots = Vec::new();
        for (k, secs) in [64u64, 66, 4194, 4196, 300_000].iter().enumerate() {
            let internal = Endpoint::new(ip(100, 64, 1, k as u8 + 1), 40_000);
            let key = s.out_key(
                MappingBehavior::EndpointIndependent,
                Protocol::Udp,
                internal,
                Endpoint::new(ip(203, 0, 113, 1), 80),
            );
            slots.push(s.insert(
                key,
                Protocol::Udp,
                mapping(
                    internal,
                    Endpoint::new(ip(198, 51, 100, 1), 10_000 + k as u16),
                    t(*secs),
                ),
            ));
        }
        // Step across the 64-tick (2^16 ms) boundary: only the 64 s
        // mapping is due; 66 s survives the same cascade.
        let (_, due) = s.sweep_due(t(65));
        assert_eq!(due, vec![slots[0]]);
        s.remove(slots[0]);
        let (_, due) = s.sweep_due(t(66));
        assert_eq!(due, vec![slots[1]]);
        s.remove(slots[1]);
        // Step across the 2^22 ms (~4194 s) boundary.
        let (_, due) = s.sweep_due(t(4195));
        assert_eq!(due, vec![slots[2]]);
        s.remove(slots[2]);
        let (_, due) = s.sweep_due(t(4200));
        assert_eq!(due, vec![slots[3]]);
        s.remove(slots[3]);
        // The far-future mapping is still alive and still tracked.
        assert_eq!(s.len(), 1);
        let (_, due) = s.sweep_due(t(300_000));
        assert_eq!(due, vec![slots[4]]);
    }

    #[test]
    fn ext_lookup_never_interns_strays() {
        let (s, _) = store_with(2, 60);
        let pools_before = s.pool_count();
        assert!(s
            .lookup_ext(Protocol::Udp, Endpoint::new(ip(9, 9, 9, 9), 1))
            .is_none());
        assert_eq!(s.pool_count(), pools_before);
        assert!(s
            .lookup_ext(Protocol::Udp, Endpoint::new(ip(198, 51, 100, 1), 10_001))
            .is_some());
        assert!(
            s.lookup_ext(Protocol::Tcp, Endpoint::new(ip(198, 51, 100, 1), 10_001))
                .is_none(),
            "protocol is part of the pool identity"
        );
    }

    #[test]
    fn active_ports_per_host_counts_only_unexpired() {
        let mut s = MappingStore::new();
        for (host_last, port, expiry) in [(1u8, 1000u16, 60u64), (1, 1001, 60), (2, 1002, 30)] {
            let internal = Endpoint::new(ip(100, 64, 0, host_last), 40_000 + port);
            let key = s.out_key(
                MappingBehavior::AddressAndPortDependent,
                Protocol::Udp,
                internal,
                Endpoint::new(ip(203, 0, 113, 1), port),
            );
            s.insert(
                key,
                Protocol::Udp,
                mapping(
                    internal,
                    Endpoint::new(ip(198, 51, 100, 1), port),
                    t(expiry),
                ),
            );
        }
        assert_eq!(s.active_ports_per_host(t(0)), vec![2, 1]);
        assert_eq!(
            s.active_ports_per_host(t(30)),
            vec![2],
            "expired host dropped"
        );
        assert_eq!(s.active_ports_per_host(t(60)), Vec::<u32>::new());
    }

    #[test]
    fn occupancy_tracks_every_counter() {
        let (mut s, _) = store_with(4, 60);
        s.remove(3);
        let o = s.occupancy();
        assert_eq!(o.slots, 4);
        assert_eq!(o.live, 3);
        assert_eq!(o.free, 1);
        assert!(o.hosts_interned >= 1);
        assert_eq!(o.pools_interned, 1);
        assert_eq!(o.timers, 4, "freed slot's entry is parked until drained");
        let mut merged = StoreOccupancy::default();
        merged.merge(&o);
        merged.merge(&o);
        assert_eq!(merged.live, 6);
        assert_eq!(merged.slots, 8);
    }

    #[test]
    fn mix_hasher_is_deterministic() {
        let mut a = Mix64Hasher::default();
        let mut b = Mix64Hasher::default();
        a.write_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233);
        b.write_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233);
        assert_eq!(a.finish(), b.finish());
        let mut c = Mix64Hasher::default();
        c.write_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2234);
        assert_ne!(a.finish(), c.finish());
    }
}
