//! Sharded NAT engine: translation state partitioned by external IP.
//!
//! A [`ShardedNat`] splits a CGN's external address pool across N
//! shards; each shard is a complete [`Nat`] owning its own port
//! allocators, mapping tables and [`NatStats`]. Internal hosts are
//! **hashed to a shard at admission** ([`ShardedNat::shard_of`]), so a
//! subscriber's whole flow history lives in exactly one shard — the
//! per-external-IP state partitioning that lets a CGN scale across
//! cores (and, in real deployments, across chassis).
//!
//! Because shards share no mutable state, batches of packets that were
//! pre-partitioned by shard can be processed on worker threads with no
//! synchronization beyond the final join ([`ShardedNat::process_batches`]),
//! and the outcome is bit-identical to processing the same batches
//! sequentially shard-by-shard.
//!
//! One behavioural difference to a monolithic [`Nat`] is intentional
//! **by default**: hairpinning only resolves within a shard. An
//! outbound packet addressed to an external IP owned by a *different*
//! shard is forwarded toward the core like any other packet — the same
//! thing happens between the chassis of a multi-box CGN deployment.
//! [`ShardedNat::set_cross_shard_hairpin`] opts into single-chassis
//! semantics instead: such a packet is looped back through the owner
//! shard's hairpin path, making internal-to-internal traffic
//! behaviourally identical to a monolithic [`Nat`].

use crate::config::NatConfig;
use crate::metrics::EngineMetrics;
use crate::nat::{Nat, NatStats, NatVerdict, PortOccupancy};
use crate::store::StoreOccupancy;
use crate::telemetry::EventSink;
use cgn_metrics::Snapshot;
use netcore::{Packet, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// SplitMix64 finalizer — the shard hash must be stable across runs
/// and platforms, so it is spelled out in [`crate::store`] rather than
/// borrowed from `std::hash` (whose output is not guaranteed across
/// releases). Re-exported here because sharding is its original home.
pub use crate::store::mix64;

/// Run `f` over a list of mutually independent work items on up to
/// `threads` scoped worker threads (`threads <= 1` runs in place on
/// the caller's thread). Items are split into contiguous groups, one
/// per worker, so results come back **in item order** regardless of
/// scheduling — the scatter/gather primitive behind
/// [`ShardedNat::process_batches`] and the traffic driver's epoch
/// engine.
pub fn scatter<T, R, F>(work: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || work.len() <= 1 {
        return work.into_iter().map(f).collect();
    }
    let chunk = work.len().div_ceil(threads.min(work.len()));
    let mut groups: Vec<Vec<T>> = Vec::new();
    let mut work = work.into_iter();
    loop {
        let group: Vec<T> = work.by_ref().take(chunk).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    let f = &f;
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move || group.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("scatter worker panicked"));
        }
    });
    out
}

/// A CGN whose state is partitioned into independent [`Nat`] shards.
#[derive(Debug)]
pub struct ShardedNat {
    shards: Vec<Nat>,
    /// External IP → owning shard, for inbound routing.
    ext_owner: HashMap<Ipv4Addr, usize>,
    /// Opt-in single-chassis loopback: outbound packets targeting a
    /// *foreign* shard's pool hairpin through the owner shard instead
    /// of forwarding toward the core (multi-chassis default).
    cross_shard_hairpin: bool,
}

impl ShardedNat {
    /// Partition `external_ips` round-robin across `shards` shards, each
    /// seeded deterministically from `seed` and its shard index.
    ///
    /// Panics if `shards == 0` or there are fewer external IPs than
    /// shards (every shard must own at least one public address).
    pub fn new(config: NatConfig, external_ips: Vec<Ipv4Addr>, shards: u16, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            external_ips.len() >= shards as usize,
            "each shard needs at least one external IP ({} IPs for {} shards)",
            external_ips.len(),
            shards
        );
        let mut pools: Vec<Vec<Ipv4Addr>> = vec![Vec::new(); shards as usize];
        let mut ext_owner = HashMap::new();
        for (i, ip) in external_ips.into_iter().enumerate() {
            let shard = i % shards as usize;
            pools[shard].push(ip);
            ext_owner.insert(ip, shard);
        }
        let shards = pools
            .into_iter()
            .enumerate()
            .map(|(i, pool)| Nat::new(config.clone(), pool, seed.wrapping_add(mix64(i as u64 + 1))))
            .collect();
        ShardedNat {
            shards,
            ext_owner,
            cross_shard_hairpin: false,
        }
    }

    /// Opt into single-chassis hairpin semantics: an outbound packet
    /// addressed to an external IP owned by a *different* shard is
    /// looped back through the owner shard's hairpin path (filtering,
    /// refresh and source-rewrite behaviour included), so
    /// internal-to-internal traffic matches a monolithic [`Nat`]
    /// exactly. Off by default (multi-chassis forward semantics).
    ///
    /// Only the packet-at-a-time [`ShardedNat::process_outbound`] path
    /// resolves cross-shard loopback — it is the one place where two
    /// shards' state meet, which is exactly what the pre-partitioned
    /// parallel batch path must not do (see
    /// [`ShardedNat::process_batches`]).
    pub fn set_cross_shard_hairpin(&mut self, enabled: bool) {
        self.cross_shard_hairpin = enabled;
    }

    /// Install one telemetry sink per shard, in shard order (see
    /// [`crate::telemetry`]). Panics unless exactly one sink per shard
    /// is supplied.
    pub fn set_sinks(&mut self, sinks: Vec<Box<dyn EventSink>>) {
        assert_eq!(
            sinks.len(),
            self.shards.len(),
            "one telemetry sink per shard required"
        );
        for (shard, sink) in self.shards.iter_mut().zip(sinks) {
            shard.set_sink(sink);
        }
    }

    /// Remove and return every shard's telemetry sink, in shard order
    /// (`None` for shards that had none installed).
    pub fn take_sinks(&mut self) -> Vec<Option<Box<dyn EventSink>>> {
        self.shards.iter_mut().map(|s| s.take_sink()).collect()
    }

    /// Install one runtime-metrics registry per shard, in shard order
    /// (see [`crate::metrics`]). Panics unless exactly one registry
    /// per shard is supplied.
    pub fn set_metrics(&mut self, registries: Vec<Box<EngineMetrics>>) {
        assert_eq!(
            registries.len(),
            self.shards.len(),
            "one metrics registry per shard required"
        );
        for (shard, registry) in self.shards.iter_mut().zip(registries) {
            shard.set_metrics(registry);
        }
    }

    /// Remove and return every shard's metrics registry, in shard
    /// order (`None` for shards that had none installed).
    pub fn take_metrics(&mut self) -> Vec<Option<Box<EngineMetrics>>> {
        self.shards.iter_mut().map(|s| s.take_metrics()).collect()
    }

    /// Install one flow/phase tracer per shard, in shard order (see
    /// [`cgn_trace`]). Panics unless exactly one tracer per shard is
    /// supplied.
    pub fn set_tracers(&mut self, tracers: Vec<Box<cgn_trace::ShardTracer>>) {
        assert_eq!(
            tracers.len(),
            self.shards.len(),
            "one tracer per shard required"
        );
        for (shard, tracer) in self.shards.iter_mut().zip(tracers) {
            shard.set_tracer(tracer);
        }
    }

    /// Remove and return every shard's tracer, in shard order (`None`
    /// for shards that had none installed).
    pub fn take_tracers(&mut self) -> Vec<Option<Box<cgn_trace::ShardTracer>>> {
        self.shards.iter_mut().map(|s| s.take_tracer()).collect()
    }

    /// Fleet-wide wall-clock phase profile: every shard tracer's
    /// histograms merged in shard order. `None` when no shard has a
    /// tracer installed. Strictly an annotation layer — callers must
    /// only render it into published expositions, never into the
    /// deterministic windowed snapshots.
    pub fn phase_profile(&self) -> Option<cgn_trace::PhaseProfiler> {
        let mut merged: Option<cgn_trace::PhaseProfiler> = None;
        for shard in &self.shards {
            if let Some(t) = shard.tracer() {
                merged
                    .get_or_insert_with(cgn_trace::PhaseProfiler::new)
                    .merge(t.phases());
            }
        }
        merged
    }

    /// Merged flight-recorder dump across shards, ordered by
    /// `(shard, seq)` — a deterministic function of the run, ready for
    /// [`cgn_trace::chrome_trace_json`]. `None` when no shard has a
    /// tracer installed.
    pub fn trace_dump(&self) -> Option<cgn_trace::TraceDump> {
        let mut shards_seen = false;
        let mut one_in = 0u32;
        let per_shard: Vec<(Vec<cgn_trace::TraceEvent>, u64, u64)> = self
            .shards
            .iter()
            .filter_map(|s| s.tracer())
            .map(|t| {
                shards_seen = true;
                one_in = one_in.max(t.sample_one_in());
                (
                    t.events().copied().collect(),
                    t.evicted(),
                    t.sampled_flows(),
                )
            })
            .collect();
        if !shards_seen {
            return None;
        }
        Some(cgn_trace::TraceDump::from_shards(per_shard, one_in))
    }

    /// Fleet-wide metrics snapshot: every shard's
    /// [`Nat::metrics_snapshot`] merged in shard order. `None` when no
    /// shard has a registry installed. Shard order — never thread
    /// order — is what keeps the result bit-identical for any worker
    /// count.
    pub fn metrics_snapshot(&self) -> Option<Snapshot> {
        let mut merged: Option<Snapshot> = None;
        for shard in &self.shards {
            if let Some(snap) = shard.metrics_snapshot() {
                match &mut merged {
                    Some(m) => m.merge(&snap),
                    None => merged = Some(snap),
                }
            }
        }
        merged
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an internal host is admitted to. Stable for the
    /// lifetime of the engine: depends only on the host address and the
    /// shard count.
    pub fn shard_of(&self, internal: Ipv4Addr) -> usize {
        (mix64(u32::from(internal) as u64) % self.shards.len() as u64) as usize
    }

    pub fn shards(&self) -> &[Nat] {
        &self.shards
    }

    /// Mutable access to the shards, for callers that drive per-shard
    /// work on their own worker threads (e.g. the traffic driver's
    /// epoch engine).
    pub fn shards_mut(&mut self) -> &mut [Nat] {
        &mut self.shards
    }

    /// Whether `ip` belongs to any shard's external pool.
    pub fn is_external_ip(&self, ip: Ipv4Addr) -> bool {
        self.ext_owner.contains_key(&ip)
    }

    /// Every external IP across all shards, in shard order.
    pub fn external_ips(&self) -> Vec<Ipv4Addr> {
        self.shards
            .iter()
            .flat_map(|s| s.external_ips().iter().copied())
            .collect()
    }

    /// Route one outbound packet to its owner shard. With
    /// [`ShardedNat::set_cross_shard_hairpin`] enabled, a translated
    /// packet that targets another shard's pool address is looped back
    /// through that shard's hairpin path instead of forwarding toward
    /// the core.
    pub fn process_outbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        let original_src = pkt.src;
        let shard = self.shard_of(pkt.src.ip);
        let verdict = self.shards[shard].process_outbound(pkt, now);
        if self.cross_shard_hairpin {
            if let NatVerdict::Forward(translated) = &verdict {
                // The admitting shard forwards anything outside its own
                // pool; if a UDP/TCP flow's destination is a sibling
                // shard's pool address, single-chassis semantics loop
                // it back there. ICMP passes through unmodified — a
                // monolithic Nat forwards it untranslated too (the
                // "private IP in traceroute" artifact), and the
                // hairpin path only handles flows.
                if translated.protocol().is_some() {
                    if let Some(&owner) = self.ext_owner.get(&translated.dst.ip) {
                        debug_assert_ne!(
                            owner, shard,
                            "own-pool hairpins resolve inside the shard"
                        );
                        let translated = translated.clone();
                        return self.shards[owner].hairpin(translated, original_src, now);
                    }
                }
            }
        }
        verdict
    }

    /// Route one inbound packet to the shard owning its destination
    /// external IP (shard 0 records the drop for strays addressed to an
    /// IP no shard owns).
    pub fn process_inbound(&mut self, pkt: Packet, now: SimTime) -> NatVerdict {
        let shard = self.ext_owner.get(&pkt.dst.ip).copied().unwrap_or(0);
        self.shards[shard].process_inbound(pkt, now)
    }

    /// Sweep every shard's expired mappings.
    pub fn sweep(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            shard.sweep(now);
        }
    }

    /// Live mappings across all shards.
    pub fn mapping_count(&self) -> usize {
        self.shards.iter().map(|s| s.mapping_count()).sum()
    }

    /// Slab-store occupancy summed across shards (arena slots,
    /// free-list lengths, interner sizes, parked timers).
    pub fn store_occupancy(&self) -> StoreOccupancy {
        let mut out = StoreOccupancy::default();
        for shard in &self.shards {
            out.merge(&shard.store_occupancy());
        }
        out
    }

    /// Arena chunks summed across shards (the fleet-wide
    /// `cgn_arena_chunks` reading) — stable once every shard is past
    /// warm-up, since arena growth never reallocates.
    pub fn arena_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.arena_chunks()).sum()
    }

    /// Free-listed slot ids summed across shards (the fleet-wide
    /// `cgn_arena_slots_free` reading).
    pub fn arena_slots_free(&self) -> u64 {
        self.shards.iter().map(|s| s.arena_slots_free()).sum()
    }

    /// Counters folded across shards in shard order.
    pub fn merged_stats(&self) -> NatStats {
        let mut out = NatStats::default();
        for shard in &self.shards {
            out.merge(shard.stats());
        }
        out
    }

    /// Unexpired-mapping count per internal host across all shards.
    /// Hosts are partitioned, so this is a disjoint union.
    pub fn ports_by_host(&self, now: SimTime) -> HashMap<Ipv4Addr, u32> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            out.extend(shard.ports_by_host(now));
        }
        out
    }

    /// Allocator fill levels across all shards, sorted for
    /// deterministic iteration.
    pub fn port_occupancy(&self) -> Vec<PortOccupancy> {
        let mut out: Vec<PortOccupancy> = self
            .shards
            .iter()
            .flat_map(|s| s.port_occupancy())
            .collect();
        out.sort_by_key(|o| (o.ext_ip, o.proto));
        out
    }

    /// Split an outbound packet stream into per-shard batches, in
    /// arrival order within each batch — the input format of
    /// [`ShardedNat::process_batches`].
    pub fn partition_outbound(&self, pkts: impl IntoIterator<Item = Packet>) -> Vec<Vec<Packet>> {
        let mut batches: Vec<Vec<Packet>> = vec![Vec::new(); self.shards.len()];
        for pkt in pkts {
            batches[self.shard_of(pkt.src.ip)].push(pkt);
        }
        batches
    }

    /// Process one pre-partitioned batch per shard on up to `threads`
    /// scoped worker threads (`threads <= 1` runs in place on the
    /// caller's thread). Returns the verdicts per shard, in batch
    /// order.
    ///
    /// Shards are mutually independent, so the result is bit-identical
    /// for every thread count. That independence is exactly what
    /// cross-shard hairpinning would break, so this path keeps
    /// multi-chassis forward semantics: enable
    /// [`ShardedNat::set_cross_shard_hairpin`] only with the
    /// packet-at-a-time routing path (debug builds assert this).
    ///
    /// Panics if `batches.len() != self.shard_count()`.
    pub fn process_batches(
        &mut self,
        batches: Vec<Vec<Packet>>,
        now: SimTime,
        threads: usize,
    ) -> Vec<Vec<NatVerdict>> {
        assert_eq!(
            batches.len(),
            self.shards.len(),
            "one batch per shard required"
        );
        debug_assert!(
            !self.cross_shard_hairpin,
            "cross-shard hairpin loopback needs the packet-at-a-time \
             routing path; batch processing keeps shards independent"
        );
        let work: Vec<(&mut Nat, Vec<Packet>)> = self.shards.iter_mut().zip(batches).collect();
        scatter(work, threads, |(shard, batch)| {
            batch
                .into_iter()
                .map(|pkt| shard.process_outbound(pkt, now))
                .collect()
        })
    }

    /// Burst variant of [`ShardedNat::process_batches`]: each shard's
    /// pre-partitioned batch runs through the
    /// [`Nat::process_burst`] resolve → prefetch → translate pipeline
    /// instead of the packet-at-a-time loop, so the full fleet path is
    /// "sort by shard ([`ShardedNat::partition_outbound`]), then
    /// prefetch by resolved slot". Contract is unchanged: verdicts per
    /// shard in batch order, bit-identical to
    /// [`ShardedNat::process_batches`] for every thread count and
    /// burst size.
    ///
    /// Panics if `bursts.len() != self.shard_count()`.
    pub fn process_bursts(
        &mut self,
        bursts: Vec<Vec<Packet>>,
        now: SimTime,
        threads: usize,
    ) -> Vec<Vec<NatVerdict>> {
        assert_eq!(
            bursts.len(),
            self.shards.len(),
            "one burst per shard required"
        );
        debug_assert!(
            !self.cross_shard_hairpin,
            "cross-shard hairpin loopback needs the packet-at-a-time \
             routing path; burst processing keeps shards independent"
        );
        let work: Vec<(&mut Nat, Vec<Packet>)> = self.shards.iter_mut().zip(bursts).collect();
        scatter(work, threads, |(shard, burst)| {
            shard.process_burst(burst, now)
        })
    }

    /// Split an inbound packet stream into per-shard batches by the
    /// destination external IP's owner, in arrival order within each
    /// batch — the input format of
    /// [`ShardedNat::process_inbound_bursts`]. Strays addressed to an
    /// IP no shard owns land in shard 0's batch, which records the
    /// drop — exactly [`ShardedNat::process_inbound`]'s routing.
    pub fn partition_inbound(&self, pkts: impl IntoIterator<Item = Packet>) -> Vec<Vec<Packet>> {
        let mut batches: Vec<Vec<Packet>> = vec![Vec::new(); self.shards.len()];
        for pkt in pkts {
            let shard = self.ext_owner.get(&pkt.dst.ip).copied().unwrap_or(0);
            batches[shard].push(pkt);
        }
        batches
    }

    /// Inbound mirror of [`ShardedNat::process_bursts`]: each shard's
    /// pre-partitioned batch runs through the
    /// [`Nat::process_inbound_burst`] resolve → prefetch → translate
    /// pipeline. Shards are mutually independent (inbound packets
    /// never cross shards — the owner of the destination IP holds the
    /// mapping), so verdicts per shard in batch order are
    /// bit-identical to routing each packet through
    /// [`ShardedNat::process_inbound`], for every thread count and
    /// burst size.
    ///
    /// Panics if `bursts.len() != self.shard_count()`.
    pub fn process_inbound_bursts(
        &mut self,
        bursts: Vec<Vec<Packet>>,
        now: SimTime,
        threads: usize,
    ) -> Vec<Vec<NatVerdict>> {
        assert_eq!(
            bursts.len(),
            self.shards.len(),
            "one burst per shard required"
        );
        let work: Vec<(&mut Nat, Vec<Packet>)> = self.shards.iter_mut().zip(bursts).collect();
        scatter(work, threads, |(shard, burst)| {
            shard.process_inbound_burst(burst, now)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Pooling;
    use netcore::{ip, Endpoint};
    use proptest::prelude::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn pool(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|k| ip(198, 51, 100, k + 1)).collect()
    }

    fn server() -> Endpoint {
        Endpoint::new(ip(203, 0, 113, 10), 8000)
    }

    fn host(k: u32) -> Endpoint {
        Endpoint::new(Ipv4Addr::from(u32::from(ip(100, 64, 0, 0)) + k), 40000)
    }

    #[test]
    fn external_pool_partitions_without_overlap() {
        let s = ShardedNat::new(NatConfig::cgn_default(), pool(7), 3, 1);
        assert_eq!(s.shard_count(), 3);
        let mut all: Vec<Ipv4Addr> = s.external_ips();
        assert_eq!(all.len(), 7);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 7, "no IP owned by two shards");
        for ip in all {
            assert!(s.is_external_ip(ip));
        }
        for shard in s.shards() {
            assert!(!shard.external_ips().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one external IP")]
    fn more_shards_than_ips_rejected() {
        let _ = ShardedNat::new(NatConfig::cgn_default(), pool(2), 3, 1);
    }

    #[test]
    fn outbound_lands_in_owner_shard_and_inbound_routes_back() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = crate::config::FilteringBehavior::EndpointIndependent;
        let mut s = ShardedNat::new(cfg, pool(4), 4, 7);
        for k in 0..32 {
            let shard = s.shard_of(host(k).ip);
            let out = match s.process_outbound(Packet::udp(host(k), server(), vec![]), t(0)) {
                NatVerdict::Forward(p) => p,
                v => panic!("expected Forward, got {v:?}"),
            };
            assert!(
                s.shards()[shard].is_external_ip(out.src.ip),
                "mapping must use the owner shard's pool"
            );
            // The reply finds its way back through the same shard.
            let back = Packet::udp(server(), out.src, vec![]);
            match s.process_inbound(back, t(1)) {
                NatVerdict::Forward(p) => assert_eq!(p.dst, host(k)),
                v => panic!("expected Forward back, got {v:?}"),
            }
        }
        assert_eq!(s.mapping_count() as u64, s.merged_stats().mappings_created);
    }

    #[test]
    fn stray_inbound_dropped_deterministically() {
        let mut s = ShardedNat::new(NatConfig::cgn_default(), pool(2), 2, 3);
        let stray = Packet::udp(server(), Endpoint::new(ip(9, 9, 9, 9), 1), vec![]);
        assert!(matches!(
            s.process_inbound(stray, t(0)),
            NatVerdict::Drop(crate::nat::DropReason::NoMapping)
        ));
        assert_eq!(s.merged_stats().drop_no_mapping, 1);
    }

    #[test]
    fn shard_of_is_stable_and_spreads_hosts() {
        let s = ShardedNat::new(NatConfig::cgn_default(), pool(8), 8, 1);
        let mut counts = vec![0usize; 8];
        for k in 0..4_000 {
            let a = s.shard_of(host(k).ip);
            assert_eq!(a, s.shard_of(host(k).ip), "hash must be stable");
            counts[a] += 1;
        }
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(
            min * 2 > max,
            "hosts should spread roughly evenly: {counts:?}"
        );
    }

    #[test]
    fn paired_pooling_sticky_within_shard() {
        let mut cfg = NatConfig::cgn_default();
        cfg.pooling = Pooling::Paired;
        let mut s = ShardedNat::new(cfg, pool(6), 3, 5);
        for k in 0..10 {
            let mut ips = std::collections::HashSet::new();
            for flow in 0..8u16 {
                let src = Endpoint::new(host(k).ip, 40000 + flow);
                if let NatVerdict::Forward(p) =
                    s.process_outbound(Packet::udp(src, server(), vec![]), t(0))
                {
                    ips.insert(p.src.ip);
                }
            }
            assert_eq!(ips.len(), 1, "pairing must hold across a host's flows");
        }
    }

    #[test]
    fn sweep_expires_across_all_shards() {
        let mut s = ShardedNat::new(NatConfig::cgn_default(), pool(4), 4, 2);
        for k in 0..64 {
            let _ = s.process_outbound(Packet::udp(host(k), server(), vec![]), t(0));
        }
        assert_eq!(s.mapping_count(), 64);
        s.sweep(t(61));
        assert_eq!(s.mapping_count(), 0);
        assert_eq!(s.merged_stats().mappings_expired, 64);
        assert_eq!(s.ports_by_host(t(61)).len(), 0);
    }

    /// Two hosts guaranteed to live in different shards.
    fn hosts_in_different_shards(s: &ShardedNat) -> (Endpoint, Endpoint) {
        let a = host(0);
        let b = (1..256)
            .map(host)
            .find(|h| s.shard_of(h.ip) != s.shard_of(a.ip))
            .expect("some host lands in another shard");
        (a, b)
    }

    /// The satellite behavioural-equivalence check: with loopback
    /// enabled, internal-to-internal traffic crossing shards produces
    /// the same verdict semantics as a monolithic [`Nat`] — delivery
    /// to the target's internal endpoint, the §4.1 internal-source
    /// leak behaviour, filtering, and the hairpin counter.
    #[test]
    fn cross_shard_hairpin_matches_monolithic_semantics() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = crate::config::FilteringBehavior::EndpointIndependent;

        // Monolithic reference: B opens a mapping, A reaches B via its
        // external endpoint and the NAT loops it back, leaking A's
        // internal source (cgn_default keeps hairpin_internal_source).
        let mut mono = Nat::new(cfg.clone(), pool(4), 7);
        let (a, b) = (host(0), host(1));
        let b_ext_mono = match mono.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        let mono_verdict = mono.process_outbound(Packet::udp(a, b_ext_mono, vec![7]), t(1));
        let NatVerdict::Hairpin(mono_p) = mono_verdict else {
            panic!("monolithic reference must hairpin");
        };
        assert_eq!((mono_p.dst, mono_p.src), (b, a));

        // Sharded engine, hosts in different shards.
        let mut s = ShardedNat::new(cfg.clone(), pool(4), 4, 7);
        s.set_cross_shard_hairpin(true);
        let (a, b) = hosts_in_different_shards(&s);
        let b_ext = match s.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        assert_ne!(
            s.shard_of(a.ip),
            s.shard_of(b.ip),
            "the loopback must actually cross shards"
        );
        match s.process_outbound(Packet::udp(a, b_ext, vec![7]), t(1)) {
            NatVerdict::Hairpin(p) => {
                assert_eq!(p.dst, b, "delivered to B's internal endpoint");
                assert_eq!(p.src, a, "internal source leaks, as monolithic");
            }
            v => panic!("expected cross-shard hairpin, got {v:?}"),
        }
        assert_eq!(s.merged_stats().hairpins, 1);

        // Source-rewrite variant hides the internal endpoint — also
        // identical to the monolithic device's behaviour.
        let mut cfg_rw = cfg.clone();
        cfg_rw.hairpin_internal_source = false;
        let mut s = ShardedNat::new(cfg_rw, pool(4), 4, 7);
        s.set_cross_shard_hairpin(true);
        let (a, b) = hosts_in_different_shards(&s);
        let b_ext = match s.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        match s.process_outbound(Packet::udp(a, b_ext, vec![7]), t(1)) {
            NatVerdict::Hairpin(p) => {
                assert!(s.is_external_ip(p.src.ip), "source rewritten to the pool");
                assert_ne!(p.src, a);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn cross_shard_hairpin_respects_filtering_and_config() {
        // APDF filtering (cgn_default): B never contacted A's external
        // endpoint, so the loopback is filtered — exactly what the
        // monolithic device does.
        let mut s = ShardedNat::new(NatConfig::cgn_default(), pool(4), 4, 7);
        s.set_cross_shard_hairpin(true);
        let (a, b) = hosts_in_different_shards(&s);
        let b_ext = match s.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        assert_eq!(
            s.process_outbound(Packet::udp(a, b_ext, vec![]), t(1)),
            NatVerdict::Drop(crate::nat::DropReason::Filtered)
        );

        // Hairpinning disabled in the NAT config: the loopback path is
        // taken but the owner shard drops, as a monolithic Nat would.
        let mut cfg = NatConfig::cgn_default();
        cfg.hairpinning = false;
        let mut s = ShardedNat::new(cfg, pool(4), 4, 7);
        s.set_cross_shard_hairpin(true);
        let (a, b) = hosts_in_different_shards(&s);
        let b_ext = match s.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        assert_eq!(
            s.process_outbound(Packet::udp(a, b_ext, vec![]), t(1)),
            NatVerdict::Drop(crate::nat::DropReason::NoHairpin)
        );
    }

    #[test]
    fn cross_shard_loopback_passes_icmp_through_unmodified() {
        // Router-originated ICMP addressed to a pool IP forwards
        // untranslated in a monolithic Nat; the loopback must not
        // route it into the flow-only hairpin path (which would
        // panic on a protocol-less packet).
        let mut s = ShardedNat::new(NatConfig::cgn_default(), pool(4), 4, 7);
        s.set_cross_shard_hairpin(true);
        let (a, b) = hosts_in_different_shards(&s);
        let b_shard_ip = s.shards()[s.shard_of(b.ip)].external_ips()[0];
        let orig = Packet::udp(a, server(), vec![]).with_ttl(1);
        let mut icmp = orig.ttl_exceeded_reply(ip(100, 64, 255, 1));
        icmp.dst = Endpoint::new(b_shard_ip, 0);
        match s.process_outbound(icmp.clone(), t(0)) {
            NatVerdict::Forward(p) => assert_eq!(p, icmp, "ICMP passes unmodified"),
            v => panic!("expected ICMP pass-through, got {v:?}"),
        }
    }

    #[test]
    fn cross_shard_loopback_disabled_keeps_multi_chassis_forwarding() {
        let mut cfg = NatConfig::cgn_default();
        cfg.filtering = crate::config::FilteringBehavior::EndpointIndependent;
        let mut s = ShardedNat::new(cfg, pool(4), 4, 7);
        let (a, b) = hosts_in_different_shards(&s);
        let b_ext = match s.process_outbound(Packet::udp(b, server(), vec![]), t(0)) {
            NatVerdict::Forward(p) => p.src,
            v => panic!("{v:?}"),
        };
        // Default: the packet is translated and forwarded toward the
        // core, like traffic between two chassis of a multi-box CGN.
        match s.process_outbound(Packet::udp(a, b_ext, vec![]), t(1)) {
            NatVerdict::Forward(p) => assert_eq!(p.dst, b_ext),
            v => panic!("expected multi-chassis Forward, got {v:?}"),
        }
        assert_eq!(s.merged_stats().hairpins, 0);
    }

    /// Build the identical workload twice and compare batch-parallel
    /// against packet-at-a-time sequential processing.
    fn batch_equivalence(shards: u16, threads: usize, hosts: u32, flows_per_host: u16, seed: u64) {
        let mk = || ShardedNat::new(NatConfig::cgn_default(), pool(8), shards, seed);
        let pkts: Vec<Packet> = (0..hosts)
            .flat_map(|k| {
                (0..flows_per_host).map(move |f| {
                    Packet::udp(
                        Endpoint::new(host(k).ip, 40000 + f),
                        Endpoint::new(ip(203, 0, 113, (k % 200) as u8), 1000 + f),
                        vec![],
                    )
                })
            })
            .collect();

        let mut seq = mk();
        let seq_verdicts: Vec<Vec<NatVerdict>> = {
            let batches = seq.partition_outbound(pkts.clone());
            batches
                .into_iter()
                .enumerate()
                .map(|(i, batch)| {
                    batch
                        .into_iter()
                        .map(|p| seq.shards_mut()[i].process_outbound(p, t(0)))
                        .collect()
                })
                .collect()
        };

        let mut par = mk();
        let batches = par.partition_outbound(pkts);
        let par_verdicts = par.process_batches(batches, t(0), threads);

        assert_eq!(seq_verdicts, par_verdicts);
        assert_eq!(seq.merged_stats(), par.merged_stats());
        assert_eq!(seq.ports_by_host(t(0)), par.ports_by_host(t(0)));
        assert_eq!(seq.port_occupancy(), par.port_occupancy());
    }

    #[test]
    fn batches_match_sequential_processing() {
        batch_equivalence(4, 4, 100, 6, 11);
    }

    /// The burst pipeline against the packet-at-a-time batch path:
    /// verdicts, stats and port state must be bit-identical whatever
    /// the thread count.
    fn burst_equivalence(shards: u16, threads: usize, hosts: u32, flows_per_host: u16, seed: u64) {
        let mk = || ShardedNat::new(NatConfig::cgn_default(), pool(8), shards, seed);
        let pkts: Vec<Packet> = (0..hosts)
            .flat_map(|k| {
                (0..flows_per_host).map(move |f| {
                    Packet::udp(
                        Endpoint::new(host(k).ip, 40000 + f),
                        Endpoint::new(ip(203, 0, 113, (k % 200) as u8), 1000 + f),
                        vec![],
                    )
                })
            })
            .collect();

        let mut scalar = mk();
        let batches = scalar.partition_outbound(pkts.clone());
        let scalar_verdicts = scalar.process_batches(batches, t(0), 1);

        let mut burst = mk();
        let batches = burst.partition_outbound(pkts);
        let burst_verdicts = burst.process_bursts(batches, t(0), threads);

        assert_eq!(scalar_verdicts, burst_verdicts);
        assert_eq!(scalar.merged_stats(), burst.merged_stats());
        assert_eq!(scalar.ports_by_host(t(0)), burst.ports_by_host(t(0)));
        assert_eq!(scalar.port_occupancy(), burst.port_occupancy());
    }

    #[test]
    fn bursts_match_packet_at_a_time_processing() {
        burst_equivalence(4, 4, 100, 6, 11);
    }

    /// The inbound burst pipeline against packet-at-a-time inbound
    /// routing: establish mappings outbound, reply to every translated
    /// external endpoint (with the occasional stray), and compare
    /// verdicts, stats and port state for any thread count.
    fn inbound_burst_equivalence(
        shards: u16,
        threads: usize,
        hosts: u32,
        flows_per_host: u16,
        seed: u64,
    ) {
        let mk = || ShardedNat::new(NatConfig::cgn_default(), pool(8), shards, seed);
        let pkts: Vec<Packet> = (0..hosts)
            .flat_map(|k| {
                (0..flows_per_host).map(move |f| {
                    Packet::udp(
                        Endpoint::new(host(k).ip, 40000 + f),
                        Endpoint::new(ip(203, 0, 113, (k % 200) as u8), 1000 + f),
                        vec![],
                    )
                })
            })
            .collect();
        // Establish the mappings, then reply from each contacted
        // destination back to the translated external endpoint; every
        // seventh reply is shadowed by a stray to an unowned IP.
        let build = |nat: &mut ShardedNat| -> Vec<Packet> {
            let batches = nat.partition_outbound(pkts.clone());
            let verdicts = nat.process_batches(batches, t(0), 1);
            let mut replies = Vec::new();
            for (i, v) in verdicts.iter().flatten().enumerate() {
                if let NatVerdict::Forward(p) = v {
                    replies.push(Packet::udp(p.dst, p.src, vec![]));
                    if i % 7 == 0 {
                        replies.push(Packet::udp(
                            p.dst,
                            Endpoint::new(ip(9, 9, 9, 9), p.src.port),
                            vec![],
                        ));
                    }
                }
            }
            replies
        };

        let mut scalar = mk();
        let replies = build(&mut scalar);
        let scalar_verdicts: Vec<Vec<NatVerdict>> = {
            let batches = scalar.partition_inbound(replies.clone());
            batches
                .into_iter()
                .enumerate()
                .map(|(i, batch)| {
                    batch
                        .into_iter()
                        .map(|p| scalar.shards_mut()[i].process_inbound(p, t(1)))
                        .collect()
                })
                .collect()
        };

        let mut burst = mk();
        let burst_replies = build(&mut burst);
        assert_eq!(replies, burst_replies, "establishment is deterministic");
        let batches = burst.partition_inbound(burst_replies);
        let burst_verdicts = burst.process_inbound_bursts(batches, t(1), threads);

        assert_eq!(scalar_verdicts, burst_verdicts);
        assert_eq!(scalar.merged_stats(), burst.merged_stats());
        assert_eq!(scalar.store_occupancy(), burst.store_occupancy());
        assert_eq!(scalar.ports_by_host(t(1)), burst.ports_by_host(t(1)));
        assert_eq!(scalar.port_occupancy(), burst.port_occupancy());
    }

    #[test]
    fn inbound_bursts_match_packet_at_a_time_processing() {
        inbound_burst_equivalence(4, 4, 100, 6, 11);
    }

    /// Repeat contacts + expiry churn inside one burst: later packets
    /// must observe the mappings (and removals) earlier packets in the
    /// same burst created.
    #[test]
    fn burst_sees_intra_burst_mappings() {
        let mk = || ShardedNat::new(NatConfig::cgn_default(), pool(4), 1, 3);
        let repeat: Vec<Packet> = (0..6)
            .flat_map(|k| (0..2).map(move |_| Packet::udp(host(k), server(), vec![])))
            .collect();

        let mut scalar = mk();
        let sv = scalar.process_batches(vec![repeat.clone()], t(0), 1);
        let mut burst = mk();
        let bv = burst.process_bursts(vec![repeat], t(0), 1);
        assert_eq!(sv, bv);
        assert_eq!(scalar.merged_stats(), burst.merged_stats());
        assert_eq!(
            burst.merged_stats().mappings_created,
            6,
            "second contact of each host reuses the burst-created mapping"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The burst pipeline is bit-identical to single-threaded
        /// packet-at-a-time processing for arbitrary workload shapes,
        /// shard and thread counts.
        #[test]
        fn prop_bursts_equal_packet_at_a_time(
            shards in 1u16..=8,
            threads in 1usize..=6,
            hosts in 1u32..60,
            flows_per_host in 1u16..6,
            seed in any::<u64>(),
        ) {
            burst_equivalence(shards, threads, hosts, flows_per_host, seed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The inbound burst pipeline is bit-identical to
        /// packet-at-a-time inbound routing for arbitrary workload
        /// shapes, shard and thread counts.
        #[test]
        fn prop_inbound_bursts_equal_packet_at_a_time(
            shards in 1u16..=8,
            threads in 1usize..=6,
            hosts in 1u32..60,
            flows_per_host in 1u16..6,
            seed in any::<u64>(),
        ) {
            inbound_burst_equivalence(shards, threads, hosts, flows_per_host, seed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Worker-thread batch processing is bit-identical to
        /// sequential shard-by-shard processing for arbitrary
        /// workload shapes, shard and thread counts.
        #[test]
        fn prop_batches_equal_sequential(
            shards in 1u16..=8,
            threads in 1usize..=6,
            hosts in 1u32..60,
            flows_per_host in 1u16..6,
            seed in any::<u64>(),
        ) {
            batch_equivalence(shards, threads, hosts, flows_per_host, seed);
        }
    }
}
