//! Traceability correctness: the interval index must answer every
//! probe exactly as a linear replay of the raw log does, and logs
//! produced through the real engine must attribute every mapping to
//! the right subscriber.

use cgn_telemetry::{linear_scan, BinaryLogSink, Record, TraceIndex};
use nat_engine::config::{MappingBehavior, NatConfig, PortAllocation};
use nat_engine::telemetry::TelemetryMode;
use nat_engine::Nat;
use netcore::{ip, Endpoint, Packet, Protocol, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn sub(k: u32) -> Endpoint {
    Endpoint::new(Ipv4Addr::from(u32::from(ip(100, 64, 0, 0)) + k), 40_000)
}

fn pool() -> Vec<Ipv4Addr> {
    vec![ip(198, 51, 100, 1), ip(198, 51, 100, 2)]
}

/// Drive a Nat with a seeded flow schedule and recover its log.
fn engine_log(port_alloc: PortAllocation, mode: TelemetryMode, seed: u64) -> Vec<Record> {
    let mut cfg = NatConfig::cgn_default();
    cfg.port_alloc = port_alloc;
    cfg.mapping = MappingBehavior::AddressAndPortDependent; // one mapping per flow
    let mut nat = Nat::new(cfg, pool(), seed);
    nat.set_sink(Box::new(BinaryLogSink::new(mode)));
    // Interleaved flow starts and sweeps: churn creates expiries,
    // reuse and (under PortBlock) block growth/returns.
    for round in 0..6u64 {
        let now = t(round * 45);
        for k in 0..12u32 {
            let dst = Endpoint::new(ip(203, 0, 113, (k % 5) as u8 + 1), 1000 + round as u16);
            let _ = nat.process_outbound(Packet::udp(sub(k % 7), dst, vec![]), now);
        }
        nat.sweep(t(round * 45 + 30));
    }
    nat.sweep(t(100_000));
    let log = BinaryLogSink::from_sink(nat.take_sink().expect("sink installed"))
        .expect("concrete sink")
        .into_log();
    log.decode().expect("engine log decodes")
}

#[test]
fn engine_per_connection_log_attributes_every_mapping() {
    let records = engine_log(PortAllocation::Random, TelemetryMode::PerConnection, 11);
    assert!(!records.is_empty());
    let index = TraceIndex::build(&records);
    let mut probes = 0;
    for r in &records {
        if let Record::MapCreate {
            at_ms,
            subscriber,
            proto,
            external,
        } = *r
        {
            assert_eq!(
                index.query(proto, external, at_ms),
                Some(subscriber),
                "create instant must attribute to the creator"
            );
            probes += 1;
        }
    }
    assert!(probes >= 30, "the schedule must exercise real churn");
}

#[test]
fn engine_block_log_attributes_every_block_port() {
    let records = engine_log(
        PortAllocation::PortBlock { block_size: 8 },
        TelemetryMode::PerBlock,
        13,
    );
    let creates = records
        .iter()
        .filter(|r| matches!(r, Record::BlockAlloc { .. }))
        .count();
    let releases = records
        .iter()
        .filter(|r| matches!(r, Record::BlockRelease { .. }))
        .count();
    assert!(creates >= 2, "block churn expected, got {creates} allocs");
    assert!(releases >= 1, "sweeps must return drained blocks");
    let index = TraceIndex::build(&records);
    for r in &records {
        if let Record::BlockAlloc {
            at_ms,
            subscriber,
            proto,
            ext_ip,
            block_start,
            block_len,
        } = *r
        {
            for offset in [0, block_len / 2, block_len - 1] {
                let probe = Endpoint::new(ext_ip, block_start + offset);
                assert_eq!(
                    index.query(proto, probe, at_ms),
                    Some(subscriber),
                    "every port of a granted block must attribute"
                );
            }
        }
    }
}

#[test]
fn block_logs_are_far_smaller_than_connection_logs() {
    // The paper's trade-off, end to end on the same flow schedule:
    // per-block logging must undercut per-connection by a wide margin.
    let per_conn = engine_log(PortAllocation::Random, TelemetryMode::PerConnection, 7).len();
    let per_block = engine_log(
        PortAllocation::PortBlock { block_size: 512 },
        TelemetryMode::PerBlock,
        7,
    )
    .len();
    assert!(
        per_block * 5 < per_conn,
        "block records ({per_block}) must be far fewer than connection records ({per_conn})"
    );
}

/// One synthetic lifecycle schedule: flows (create → expire) and block
/// grants encoded through the real codec, then probed at random.
#[derive(Debug, Clone)]
struct Flow {
    sub: u8,
    port_slot: u8,
    start_ms: u32,
    hold_ms: u32,
}

fn flow_strategy() -> impl Strategy<Value = Vec<Flow>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>(), 0u32..500_000, 1u32..200_000).prop_map(
            |(sub, port_slot, start_ms, hold_ms)| Flow {
                sub,
                port_slot,
                start_ms,
                hold_ms,
            },
        ),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The satellite differential property: for random mapping
    /// schedules (with deliberate port reuse through the small
    /// `port_slot` space), the interval index answers every probe
    /// exactly like a sequential replay of the raw log.
    #[test]
    fn prop_index_matches_linear_scan(
        flows in flow_strategy(),
        probes in proptest::collection::vec((any::<u8>(), 0u64..800_000), 1..40),
    ) {
        // Build a valid, time-ordered log: sort lifecycle edges by
        // time; ports come from a 16-slot space so reuse and
        // same-millisecond handovers actually happen.
        let ext_ip = ip(198, 51, 100, 1);
        let mut edges: Vec<(u64, bool, u16, Ipv4Addr)> = Vec::new(); // (ms, is_create, port, sub)
        let mut holders: Vec<(u64, u64, u16)> = Vec::new(); // (start, end, port) accepted
        for f in &flows {
            let port = 5000 + (f.port_slot % 16) as u16;
            let (start, end) = (f.start_ms as u64, f.start_ms as u64 + f.hold_ms as u64);
            // Skip overlapping tenancies of the same port — a real
            // allocator never double-grants a port.
            if holders.iter().any(|&(s, e, p)| p == port && start < e && s < end) {
                continue;
            }
            holders.push((start, end, port));
            let sub_ip = Ipv4Addr::from(u32::from(ip(100, 64, 0, 0)) + f.sub as u32);
            edges.push((start, true, port, sub_ip));
            edges.push((end, false, port, sub_ip));
        }
        // Create-before-expire at equal timestamps would mean zero-length
        // tenancy twice on one port; order expire first (stable by port)
        // like the engine's remove-then-create hot path does.
        edges.sort_by_key(|&(ms, is_create, port, _)| (ms, is_create, port));
        let mut log = cgn_telemetry::EventLog::new();
        for (ms, is_create, port, sub_ip) in &edges {
            let at = SimTime::from_millis(*ms);
            let external = Endpoint::new(ext_ip, *port);
            if *is_create {
                log.map_create(at, *sub_ip, Protocol::Udp, external);
            } else {
                log.map_expire(at, Protocol::Udp, external);
            }
        }
        let records = log.decode().expect("valid log");
        let index = TraceIndex::build(&records);
        for (slot, at_ms) in probes {
            let probe = Endpoint::new(ext_ip, 5000 + (slot % 16) as u16);
            prop_assert_eq!(
                index.query(Protocol::Udp, probe, at_ms),
                linear_scan(&records, Protocol::Udp, probe, at_ms),
                "index and replay disagree at port {} t={}", probe.port, at_ms
            );
        }
    }

    /// Same differential property for block logs generated through the
    /// real allocator-driven engine, probing random ports and times.
    #[test]
    fn prop_block_index_matches_linear_scan(
        seed in any::<u64>(),
        probes in proptest::collection::vec((1000u16..1100, 0u64..400_000), 1..40),
    ) {
        let records = engine_log(
            PortAllocation::PortBlock { block_size: 8 },
            TelemetryMode::PerBlock,
            seed,
        );
        let index = TraceIndex::build(&records);
        for (port, at_ms) in probes {
            for proto in [Protocol::Udp, Protocol::Tcp] {
                let probe = Endpoint::new(ip(198, 51, 100, 1), port);
                prop_assert_eq!(
                    index.query(proto, probe, at_ms),
                    linear_scan(&records, proto, probe, at_ms)
                );
            }
        }
    }
}
