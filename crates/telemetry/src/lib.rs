//! # cgn-telemetry — NAT event logging and abuse traceability
//!
//! Richter et al. (IMC 2016, §2) find that operators choose CGN port
//! allocation as much for the **logging burden** it implies as for
//! port demand: every deployment must answer abuse queries — *which
//! subscriber held external `IP:port` at time `T`?* — and the three
//! allocation policies price that question very differently:
//!
//! | policy | log records | bytes/subscriber/day |
//! |---|---|---|
//! | per-connection (random/sequential/preserve ports) | one create/expire pair **per mapping** | highest |
//! | port-block ([`PortAllocation::PortBlock`](nat_engine::config::PortAllocation::PortBlock)) | one grant/return pair **per block** | ~2–3 orders less |
//! | deterministic ([`PortAllocation::Deterministic`](nat_engine::config::PortAllocation::Deterministic), RFC 7422) | **none** — recompute instead | zero |
//!
//! This crate is the logging/attribution side of that trade-off:
//!
//! * [`sink::BinaryLogSink`] — a [`nat_engine::telemetry::EventSink`]
//!   that encodes the engine's mapping/block events into per-shard
//!   append-only binary logs ([`codec::EventLog`]: varint fields,
//!   delta timestamps, interned subscriber/pool ids — single-digit
//!   bytes per steady-state record);
//! * [`query::TraceIndex`] — the time-interval index that answers
//!   exact `(ext IP, port, T) → subscriber` probes from a decoded log,
//!   for both per-connection and per-block records;
//! * [`detmap::DeterministicMap`] — the zero-log alternative:
//!   attribution by inverting deterministic NAT's provisioning
//!   arithmetic.
//!
//! Per-shard logs are owned by the shard's worker thread, so a run's
//! logs are bit-identical for every worker-thread count — the same
//! determinism contract as the traffic driver itself.

pub mod codec;
pub mod detmap;
pub mod mmap;
pub mod query;
pub mod rotate;
pub mod sink;

pub use codec::{decode_bytes, DecodeError, EventLog, Record};
pub use detmap::DeterministicMap;
pub use mmap::{MmapWriteSink, MmapWriter, DEFAULT_PREALLOC_BYTES};
pub use query::{linear_scan, TraceIndex};
pub use rotate::{
    FileGenerations, GenerationFactory, GenerationStats, RotatingFileSink, RotatingWriteSink,
    MODELED_COMPRESSION_RATIO,
};
pub use sink::{BinaryLogSink, BufferedWriteSink, BufferedWriter, SampledSink, WriteSink};
