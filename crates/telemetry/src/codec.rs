//! The append-only binary log format.
//!
//! A CGN's traceability log is written on the mapping hot path and
//! read (rarely) by abuse-attribution queries, so the format optimizes
//! for write compactness:
//!
//! * **varint (LEB128) integers** — ports, interned ids and timestamp
//!   deltas are almost always 1–2 bytes;
//! * **delta timestamps** — each record stores the millisecond delta
//!   to the previous record, which is 0–2 bytes under CGN-scale event
//!   rates instead of 6+ for an absolute epoch;
//! * **interned identities** — subscribers and `(external IP,
//!   protocol)` pools appear as dense ids; a *define* record
//!   introduces each id the first time it is used, making every log
//!   self-describing (no side table needed to decode).
//!
//! Record layout (`tag` byte, then varints unless noted):
//!
//! ```text
//! 0x01 DefineSub    id, ipv4 (4 raw bytes)
//! 0x02 DefinePool   id, ipv4 (4 raw bytes), proto (1 byte)
//! 0x10 MapCreate    Δt_ms, sub_id, pool_id, ext_port
//! 0x11 MapExpire    Δt_ms, pool_id, ext_port
//! 0x20 BlockAlloc   Δt_ms, sub_id, pool_id, block_start, block_len
//! 0x21 BlockRelease Δt_ms, pool_id, block_start
//! ```
//!
//! `MapExpire`/`BlockRelease` do not repeat the subscriber: the
//! interval being closed identifies it — the same economy real
//! deployments use.

use netcore::{Endpoint, Protocol, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

pub(crate) const TAG_DEFINE_SUB: u8 = 0x01;
pub(crate) const TAG_DEFINE_POOL: u8 = 0x02;
pub(crate) const TAG_MAP_CREATE: u8 = 0x10;
pub(crate) const TAG_MAP_EXPIRE: u8 = 0x11;
pub(crate) const TAG_BLOCK_ALLOC: u8 = 0x20;
pub(crate) const TAG_BLOCK_RELEASE: u8 = 0x21;

/// Append a LEB128 varint.
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::Malformed("varint overflows u64"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_ipv4(buf: &mut Vec<u8>, ip: Ipv4Addr) {
    buf.extend_from_slice(&ip.octets());
}

fn get_ipv4(buf: &[u8], pos: &mut usize) -> Result<Ipv4Addr, DecodeError> {
    let bytes = buf.get(*pos..*pos + 4).ok_or(DecodeError::Truncated)?;
    *pos += 4;
    Ok(Ipv4Addr::new(bytes[0], bytes[1], bytes[2], bytes[3]))
}

fn proto_byte(p: Protocol) -> u8 {
    match p {
        Protocol::Udp => 0,
        Protocol::Tcp => 1,
    }
}

fn byte_proto(b: u8) -> Result<Protocol, DecodeError> {
    match b {
        0 => Ok(Protocol::Udp),
        1 => Ok(Protocol::Tcp),
        _ => Err(DecodeError::Malformed("unknown protocol byte")),
    }
}

/// Why a log failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended inside a record.
    Truncated,
    /// Structurally invalid content (bad tag, undefined id, …).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("log truncated mid-record"),
            DecodeError::Malformed(what) => write!(f, "malformed log: {what}"),
        }
    }
}

/// One decoded log record, interned ids resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// A mapping came live: `subscriber` holds `proto`/`external`
    /// from `at_ms` on.
    MapCreate {
        at_ms: u64,
        subscriber: Ipv4Addr,
        proto: Protocol,
        external: Endpoint,
    },
    /// The mapping on `proto`/`external` ended at `at_ms`.
    MapExpire {
        at_ms: u64,
        proto: Protocol,
        external: Endpoint,
    },
    /// A contiguous port block was granted to `subscriber`.
    BlockAlloc {
        at_ms: u64,
        subscriber: Ipv4Addr,
        proto: Protocol,
        ext_ip: Ipv4Addr,
        block_start: u16,
        block_len: u16,
    },
    /// The block starting at `block_start` was returned.
    BlockRelease {
        at_ms: u64,
        proto: Protocol,
        ext_ip: Ipv4Addr,
        block_start: u16,
    },
}

impl Record {
    /// Virtual time of the record in milliseconds.
    pub fn at_ms(&self) -> u64 {
        match self {
            Record::MapCreate { at_ms, .. }
            | Record::MapExpire { at_ms, .. }
            | Record::BlockAlloc { at_ms, .. }
            | Record::BlockRelease { at_ms, .. } => *at_ms,
        }
    }
}

/// One shard's append-only binary event log: the encoder state (write
/// side) plus the raw bytes. Records must be appended in
/// non-decreasing virtual time — the engine fires events in
/// processing order, which satisfies this by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    buf: Vec<u8>,
    records: u64,
    last_ms: u64,
    sub_ids: HashMap<Ipv4Addr, u64>,
    pool_ids: HashMap<(Ipv4Addr, u8), u64>,
}

impl EventLog {
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Encoded size in bytes (defines included — they are part of the
    /// volume an operator stores).
    pub fn len_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Semantic records appended (defines not counted).
    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn sub_id(&mut self, ip: Ipv4Addr) -> u64 {
        if let Some(&id) = self.sub_ids.get(&ip) {
            return id;
        }
        let id = self.sub_ids.len() as u64;
        self.sub_ids.insert(ip, id);
        self.buf.push(TAG_DEFINE_SUB);
        put_varint(&mut self.buf, id);
        put_ipv4(&mut self.buf, ip);
        id
    }

    fn pool_id(&mut self, ip: Ipv4Addr, proto: Protocol) -> u64 {
        let key = (ip, proto_byte(proto));
        if let Some(&id) = self.pool_ids.get(&key) {
            return id;
        }
        let id = self.pool_ids.len() as u64;
        self.pool_ids.insert(key, id);
        self.buf.push(TAG_DEFINE_POOL);
        put_varint(&mut self.buf, id);
        put_ipv4(&mut self.buf, ip);
        self.buf.push(key.1);
        id
    }

    fn delta(&mut self, at: SimTime) -> u64 {
        let ms = at.as_millis();
        debug_assert!(ms >= self.last_ms, "records must be time-ordered");
        let d = ms.saturating_sub(self.last_ms);
        self.last_ms = ms;
        d
    }

    pub fn map_create(
        &mut self,
        at: SimTime,
        subscriber: Ipv4Addr,
        proto: Protocol,
        external: Endpoint,
    ) {
        let sub = self.sub_id(subscriber);
        let pool = self.pool_id(external.ip, proto);
        let d = self.delta(at);
        self.buf.push(TAG_MAP_CREATE);
        put_varint(&mut self.buf, d);
        put_varint(&mut self.buf, sub);
        put_varint(&mut self.buf, pool);
        put_varint(&mut self.buf, external.port as u64);
        self.records += 1;
    }

    pub fn map_expire(&mut self, at: SimTime, proto: Protocol, external: Endpoint) {
        let pool = self.pool_id(external.ip, proto);
        let d = self.delta(at);
        self.buf.push(TAG_MAP_EXPIRE);
        put_varint(&mut self.buf, d);
        put_varint(&mut self.buf, pool);
        put_varint(&mut self.buf, external.port as u64);
        self.records += 1;
    }

    pub fn block_alloc(
        &mut self,
        at: SimTime,
        subscriber: Ipv4Addr,
        proto: Protocol,
        ext_ip: Ipv4Addr,
        block_start: u16,
        block_len: u16,
    ) {
        let sub = self.sub_id(subscriber);
        let pool = self.pool_id(ext_ip, proto);
        let d = self.delta(at);
        self.buf.push(TAG_BLOCK_ALLOC);
        put_varint(&mut self.buf, d);
        put_varint(&mut self.buf, sub);
        put_varint(&mut self.buf, pool);
        put_varint(&mut self.buf, block_start as u64);
        put_varint(&mut self.buf, block_len as u64);
        self.records += 1;
    }

    pub fn block_release(
        &mut self,
        at: SimTime,
        proto: Protocol,
        ext_ip: Ipv4Addr,
        block_start: u16,
    ) {
        let pool = self.pool_id(ext_ip, proto);
        let d = self.delta(at);
        self.buf.push(TAG_BLOCK_RELEASE);
        put_varint(&mut self.buf, d);
        put_varint(&mut self.buf, pool);
        put_varint(&mut self.buf, block_start as u64);
        self.records += 1;
    }

    /// Remove and return the bytes encoded since the last drain,
    /// keeping the encoder state (interned ids, delta-timestamp base,
    /// record count) so encoding continues seamlessly. This is the
    /// primitive behind streaming sinks ([`crate::sink::WriteSink`]):
    /// the caller hands each drained chunk to an `io::Write` and the
    /// in-memory log stays bounded by one record. Note a drained
    /// `EventLog` no longer holds a decodable prefix — only the
    /// concatenation of all drained chunks is.
    pub fn drain_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Decode the whole log back into time-ordered records (ids
    /// resolved through the embedded define records).
    pub fn decode(&self) -> Result<Vec<Record>, DecodeError> {
        decode_bytes(&self.buf)
    }
}

/// Decode a raw encoded byte stream — the standalone form of
/// [`EventLog::decode`] for logs that were streamed to storage
/// (e.g. through a [`crate::sink::WriteSink`]) rather than held in
/// memory.
pub fn decode_bytes(buf: &[u8]) -> Result<Vec<Record>, DecodeError> {
    let mut out = Vec::new();
    let mut subs: Vec<Ipv4Addr> = Vec::new();
    let mut pools: Vec<(Ipv4Addr, Protocol)> = Vec::new();
    let mut pos = 0usize;
    let mut now_ms = 0u64;
    let resolve_sub = |subs: &[Ipv4Addr], id: u64| {
        subs.get(id as usize)
            .copied()
            .ok_or(DecodeError::Malformed("undefined subscriber id"))
    };
    let resolve_pool = |pools: &[(Ipv4Addr, Protocol)], id: u64| {
        pools
            .get(id as usize)
            .copied()
            .ok_or(DecodeError::Malformed("undefined pool id"))
    };
    while pos < buf.len() {
        let tag = buf[pos];
        pos += 1;
        match tag {
            TAG_DEFINE_SUB => {
                let id = get_varint(buf, &mut pos)?;
                let ip = get_ipv4(buf, &mut pos)?;
                if id as usize != subs.len() {
                    return Err(DecodeError::Malformed("non-dense subscriber define"));
                }
                subs.push(ip);
            }
            TAG_DEFINE_POOL => {
                let id = get_varint(buf, &mut pos)?;
                let ip = get_ipv4(buf, &mut pos)?;
                let proto = byte_proto(*buf.get(pos).ok_or(DecodeError::Truncated)?)?;
                pos += 1;
                if id as usize != pools.len() {
                    return Err(DecodeError::Malformed("non-dense pool define"));
                }
                pools.push((ip, proto));
            }
            TAG_MAP_CREATE => {
                now_ms += get_varint(buf, &mut pos)?;
                let sub = resolve_sub(&subs, get_varint(buf, &mut pos)?)?;
                let (ip, proto) = resolve_pool(&pools, get_varint(buf, &mut pos)?)?;
                let port = get_varint(buf, &mut pos)? as u16;
                out.push(Record::MapCreate {
                    at_ms: now_ms,
                    subscriber: sub,
                    proto,
                    external: Endpoint::new(ip, port),
                });
            }
            TAG_MAP_EXPIRE => {
                now_ms += get_varint(buf, &mut pos)?;
                let (ip, proto) = resolve_pool(&pools, get_varint(buf, &mut pos)?)?;
                let port = get_varint(buf, &mut pos)? as u16;
                out.push(Record::MapExpire {
                    at_ms: now_ms,
                    proto,
                    external: Endpoint::new(ip, port),
                });
            }
            TAG_BLOCK_ALLOC => {
                now_ms += get_varint(buf, &mut pos)?;
                let sub = resolve_sub(&subs, get_varint(buf, &mut pos)?)?;
                let (ip, proto) = resolve_pool(&pools, get_varint(buf, &mut pos)?)?;
                let start = get_varint(buf, &mut pos)? as u16;
                let len = get_varint(buf, &mut pos)? as u16;
                out.push(Record::BlockAlloc {
                    at_ms: now_ms,
                    subscriber: sub,
                    proto,
                    ext_ip: ip,
                    block_start: start,
                    block_len: len,
                });
            }
            TAG_BLOCK_RELEASE => {
                now_ms += get_varint(buf, &mut pos)?;
                let (ip, proto) = resolve_pool(&pools, get_varint(buf, &mut pos)?)?;
                let start = get_varint(buf, &mut pos)? as u16;
                out.push(Record::BlockRelease {
                    at_ms: now_ms,
                    proto,
                    ext_ip: ip,
                    block_start: start,
                });
            }
            _ => return Err(DecodeError::Malformed("unknown record tag")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn log_round_trips_all_record_kinds() {
        let mut log = EventLog::new();
        let sub = ip(100, 64, 0, 1);
        let pool = ip(198, 51, 100, 1);
        log.block_alloc(t(1_000), sub, Protocol::Udp, pool, 2048, 512);
        log.map_create(t(1_000), sub, Protocol::Udp, Endpoint::new(pool, 2048));
        log.map_create(t(1_500), sub, Protocol::Tcp, Endpoint::new(pool, 2049));
        log.map_expire(t(61_000), Protocol::Udp, Endpoint::new(pool, 2048));
        log.block_release(t(61_000), Protocol::Udp, pool, 2048);
        assert_eq!(log.records(), 5);
        let records = log.decode().expect("decodes");
        assert_eq!(records.len(), 5);
        assert_eq!(
            records[0],
            Record::BlockAlloc {
                at_ms: 1_000,
                subscriber: sub,
                proto: Protocol::Udp,
                ext_ip: pool,
                block_start: 2048,
                block_len: 512,
            }
        );
        assert_eq!(
            records[3],
            Record::MapExpire {
                at_ms: 61_000,
                proto: Protocol::Udp,
                external: Endpoint::new(pool, 2048),
            }
        );
        // UDP and TCP pools on the same address intern separately.
        match (records[1], records[2]) {
            (Record::MapCreate { proto: a, .. }, Record::MapCreate { proto: b, .. }) => {
                assert_ne!(a, b);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            records.windows(2).all(|w| w[0].at_ms() <= w[1].at_ms()),
            "decoded records stay time-ordered"
        );
    }

    #[test]
    fn per_record_cost_is_a_few_bytes() {
        // The volume claim the report makes rests on this: steady-state
        // per-connection records (interning amortized, ~same timestamps)
        // cost single-digit bytes.
        let mut log = EventLog::new();
        let sub = ip(100, 64, 0, 1);
        let pool = ip(198, 51, 100, 1);
        log.map_create(t(0), sub, Protocol::Udp, Endpoint::new(pool, 1024));
        let after_first = log.len_bytes();
        for k in 0..100u16 {
            log.map_create(
                t(10 + k as u64),
                sub,
                Protocol::Udp,
                Endpoint::new(pool, 2000 + k),
            );
        }
        let steady = (log.len_bytes() - after_first) as f64 / 100.0;
        assert!(
            steady <= 8.0,
            "steady-state create record should be <= 8 bytes, got {steady}"
        );
    }

    #[test]
    fn truncated_and_garbage_logs_fail_loudly() {
        let mut log = EventLog::new();
        log.map_create(
            t(5),
            ip(100, 64, 0, 1),
            Protocol::Udp,
            Endpoint::new(ip(198, 51, 100, 1), 1024),
        );
        let mut cut = log.clone();
        cut.buf.truncate(cut.buf.len() - 1);
        assert_eq!(cut.decode(), Err(DecodeError::Truncated));
        let mut garbage = EventLog::new();
        garbage.buf.push(0x7F);
        assert!(matches!(garbage.decode(), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn empty_log_is_empty() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len_bytes(), 0);
        assert_eq!(log.decode(), Ok(Vec::new()));
    }
}
