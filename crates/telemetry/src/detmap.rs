//! Attribution for deterministic NAT (RFC 7422): compute, don't log.
//!
//! Under [`nat_engine::config::PortAllocation::Deterministic`] the
//! engine derives each subscriber's external IP and port block from
//! its internal address ([`nat_engine::ports::deterministic_block`]),
//! so the traceability log is **empty** — the operator answers abuse
//! queries by inverting the provisioning function. [`DeterministicMap`]
//! is that inverse for one engine's pool (one shard of a sharded
//! deployment): the forward arithmetic round-robins subscriber
//! ordinals across the pool and then across each address's blocks, so
//! a `(pool index, block)` pair maps back to a unique ordinal residue
//! class; provisioned populations (`pool × blocks ≥ subscribers`) make
//! the class a single subscriber.

use nat_engine::ports::{det_ordinal, deterministic_block};
use netcore::Endpoint;
use std::net::Ipv4Addr;

/// The provisioning view of one deterministic-NAT engine: its external
/// pool (in engine order), port range and per-subscriber block size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicMap {
    pool: Vec<Ipv4Addr>,
    range: (u16, u16),
    ports_per_host: u16,
}

impl DeterministicMap {
    pub fn new(pool: Vec<Ipv4Addr>, range: (u16, u16), ports_per_host: u16) -> DeterministicMap {
        assert!(!pool.is_empty(), "deterministic map needs a pool");
        assert!(ports_per_host > 0);
        DeterministicMap {
            pool,
            range,
            ports_per_host,
        }
    }

    fn blocks_per_ip(&self) -> u64 {
        let capacity = (self.range.1 - self.range.0) as u64 + 1;
        (capacity / self.ports_per_host as u64).max(1)
    }

    /// Subscriber slots this pool provisions collision-free.
    pub fn capacity_subscribers(&self) -> u64 {
        self.pool.len() as u64 * self.blocks_per_ip()
    }

    /// Forward arithmetic: the `(external IP, block start, block len)`
    /// a subscriber's flows use — identical to what the engine
    /// computes.
    pub fn external_block(&self, subscriber: Ipv4Addr) -> (Ipv4Addr, u16, u16) {
        let (ip_index, start, len) =
            deterministic_block(subscriber, self.pool.len(), self.range, self.ports_per_host);
        (self.pool[ip_index], start, len)
    }

    /// Invert an abuse probe: the subscriber whose computed block
    /// contains `external`, searched over the subscriber address plan
    /// `base + 0..count` (the provisioning table a real operator would
    /// consult), filtered by `admitted` (e.g. "is this subscriber
    /// behind this shard?"). Returns the first admitted candidate that
    /// forward-verifies; provisioned populations have at most one.
    pub fn subscriber_for(
        &self,
        external: Endpoint,
        base: Ipv4Addr,
        count: u32,
        admitted: impl Fn(Ipv4Addr) -> bool,
    ) -> Option<Ipv4Addr> {
        if external.port < self.range.0 || external.port > self.range.1 {
            return None;
        }
        let ip_index = self.pool.iter().position(|ip| *ip == external.ip)? as u64;
        let pph = self.ports_per_host as u64;
        let block_within = (external.port - self.range.0) as u64 / pph;
        let n = self.pool.len() as u64;
        let class_step = n * self.blocks_per_ip();
        // Ordinals congruent to this (pool, block) pair: the base
        // ordinal plus whole laps of the provisioning table. `base`'s
        // own /10 offset shifts which addresses land on which ordinal.
        let base_ordinal = det_ordinal(base);
        let first = ip_index + n * block_within;
        let mut ordinal = first;
        while ordinal < base_ordinal + count as u64 {
            if ordinal >= base_ordinal {
                let candidate =
                    Ipv4Addr::from(u32::from(base).wrapping_add((ordinal - base_ordinal) as u32));
                if admitted(candidate) {
                    let (ip, start, len) = self.external_block(candidate);
                    if ip == external.ip
                        && external.port >= start
                        && (external.port as u32) < start as u32 + len as u32
                    {
                        return Some(candidate);
                    }
                }
            }
            ordinal += class_step;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn map() -> DeterministicMap {
        DeterministicMap::new(
            vec![ip(198, 18, 0, 1), ip(198, 18, 0, 2)],
            (1024, 65535),
            256,
        )
    }

    #[test]
    fn forward_and_inverse_round_trip() {
        let m = map();
        let base = ip(100, 64, 0, 0);
        assert!(m.capacity_subscribers() >= 500);
        for k in 0..500u32 {
            let sub = Ipv4Addr::from(u32::from(base) + k);
            let (ext_ip, start, len) = m.external_block(sub);
            // Probe a port in the middle of the computed block.
            let probe = Endpoint::new(ext_ip, start + len / 2);
            assert_eq!(
                m.subscriber_for(probe, base, 500, |_| true),
                Some(sub),
                "subscriber {k} must invert exactly"
            );
        }
    }

    #[test]
    fn inverse_rejects_out_of_plan_probes() {
        let m = map();
        let base = ip(100, 64, 0, 0);
        // Unknown pool address.
        assert_eq!(
            m.subscriber_for(Endpoint::new(ip(9, 9, 9, 9), 2000), base, 100, |_| true),
            None
        );
        // Port outside the managed range.
        assert_eq!(
            m.subscriber_for(Endpoint::new(ip(198, 18, 0, 1), 80), base, 100, |_| true),
            None
        );
        // Block provisioned beyond the population: no candidate.
        let (ext_ip, start, _) = m.external_block(Ipv4Addr::from(u32::from(base) + 90));
        assert_eq!(
            m.subscriber_for(Endpoint::new(ext_ip, start), base, 10, |_| true),
            None,
            "candidate ordinal past the population is rejected"
        );
    }

    #[test]
    fn admission_filter_narrows_the_candidate_class() {
        let m = map();
        let base = ip(100, 64, 0, 0);
        let sub = Ipv4Addr::from(u32::from(base) + 7);
        let (ext_ip, start, _) = m.external_block(sub);
        let probe = Endpoint::new(ext_ip, start);
        assert_eq!(m.subscriber_for(probe, base, 100, |c| c == sub), Some(sub));
        assert_eq!(m.subscriber_for(probe, base, 100, |c| c != sub), None);
    }
}
