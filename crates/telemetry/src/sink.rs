//! The engine-facing sinks: NAT events in, binary log bytes out.
//!
//! [`BinaryLogSink`] holds a whole run's log in memory (the right
//! shape for analysis and differential tests); [`WriteSink`] streams
//! the identical byte sequence into any `io::Write` instead, so a
//! long run's log need never be resident — the file-backed sink the
//! log-volume study's 75 GiB/day-per-million-subscribers projection
//! calls for. [`BufferedWriteSink`] is the same stream again behind a
//! preallocated grow-once buffer with explicit flush, collapsing the
//! write-per-record pattern into one write per buffer fill.

use crate::codec::EventLog;
use nat_engine::sharded::mix64;
use nat_engine::telemetry::{BlockEvent, EventSink, MappingEvent, TelemetryMode};
use netcore::Protocol;
use std::any::Any;
use std::io::Write;

/// An [`EventSink`] that encodes the events its [`TelemetryMode`]
/// selects into an append-only [`EventLog`]:
///
/// * [`TelemetryMode::PerConnection`] — mapping create/expire pairs
///   (block events ignored): the volume-heavy policy;
/// * [`TelemetryMode::PerBlock`] — block allocate/release pairs
///   (mapping events ignored): bulk port-block logging;
/// * [`TelemetryMode::Off`] — records nothing (normally no sink is
///   installed at all in this mode; accepting it keeps callers total).
///
/// One sink per engine shard; the shard's worker thread owns it, so no
/// synchronization is involved and per-shard logs are deterministic
/// for any worker-thread count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BinaryLogSink {
    mode: TelemetryMode,
    log: EventLog,
}

impl BinaryLogSink {
    pub fn new(mode: TelemetryMode) -> BinaryLogSink {
        BinaryLogSink {
            mode,
            log: EventLog::new(),
        }
    }

    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Consume the sink, keeping its log.
    pub fn into_log(self) -> EventLog {
        self.log
    }

    /// Recover a `BinaryLogSink` from the boxed trait object the
    /// engine hands back (`Nat::take_sink`).
    pub fn from_sink(sink: Box<dyn EventSink>) -> Option<BinaryLogSink> {
        sink.into_any().downcast::<BinaryLogSink>().ok().map(|b| *b)
    }
}

impl EventSink for BinaryLogSink {
    fn mapping_created(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            self.log
                .map_create(event.at, event.internal.ip, event.proto, event.external);
        }
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            self.log.map_expire(event.at, event.proto, event.external);
        }
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            self.log.block_alloc(
                event.at,
                event.subscriber,
                event.proto,
                event.ext_ip,
                event.block_start,
                event.block_len,
            );
        }
    }

    fn block_released(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            self.log
                .block_release(event.at, event.proto, event.ext_ip, event.block_start);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        Some((self.log.records(), self.log.len_bytes()))
    }
}

/// NetFlow-style sampled per-connection logging: a 1-in-N decimating
/// wrapper around a per-connection [`BinaryLogSink`]
/// ([`TelemetryMode::Sampled`]). Sampling is **deterministic by flow
/// key** — a hash of the mapping's internal/external endpoints and
/// protocol decides membership — so the create and expire records of a
/// sampled mapping always travel together, the kept subset is
/// reproducible across runs and thread counts, and scaling a measured
/// volume by `N` estimates the full per-connection burden. Block
/// events pass through unsampled (they are already rare); with the
/// per-connection inner mode they encode to nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledSink {
    one_in: u32,
    inner: BinaryLogSink,
}

impl SampledSink {
    /// Keep one mapping in `one_in` (`1` keeps everything).
    pub fn new(one_in: u32) -> SampledSink {
        assert!(one_in >= 1, "sampling ratio must be at least 1-in-1");
        SampledSink {
            one_in,
            inner: BinaryLogSink::new(TelemetryMode::PerConnection),
        }
    }

    pub fn one_in(&self) -> u32 {
        self.one_in
    }

    pub fn log(&self) -> &EventLog {
        self.inner.log()
    }

    /// Consume the sink, keeping its (sampled) log.
    pub fn into_log(self) -> EventLog {
        self.inner.into_log()
    }

    /// Recover a `SampledSink` from the boxed trait object the engine
    /// hands back (`Nat::take_sink`).
    pub fn from_sink(sink: Box<dyn EventSink>) -> Option<SampledSink> {
        sink.into_any().downcast::<SampledSink>().ok().map(|b| *b)
    }

    /// The sampling decision: stable for a mapping's whole lifetime
    /// because every field of the key is part of the mapping identity.
    fn keep(&self, e: &MappingEvent) -> bool {
        if self.one_in == 1 {
            return true;
        }
        let ips = (u32::from(e.internal.ip) as u64) << 32 | u32::from(e.external.ip) as u64;
        let rest = (e.internal.port as u64) << 32
            | (e.external.port as u64) << 8
            | matches!(e.proto, Protocol::Udp) as u64;
        mix64(ips ^ mix64(rest)) % self.one_in as u64 == 0
    }
}

impl EventSink for SampledSink {
    fn mapping_created(&mut self, event: &MappingEvent) {
        if self.keep(event) {
            self.inner.mapping_created(event);
        }
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        if self.keep(event) {
            self.inner.mapping_expired(event);
        }
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        self.inner.block_allocated(event);
    }

    fn block_released(&mut self, event: &BlockEvent) {
        self.inner.block_released(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        self.inner.volume()
    }
}

/// An [`EventSink`] that encodes into any `io::Write` — the
/// streaming sibling of [`BinaryLogSink`]. The encoder state
/// (interned ids, delta-timestamp base) lives in an [`EventLog`]
/// whose byte buffer is drained to the writer after every record, so
/// resident memory stays bounded by one record regardless of run
/// length, and the written stream is **byte-identical** to what
/// [`BinaryLogSink`] would have accumulated (pinned by this module's
/// round-trip test). Decode the stored stream with
/// [`crate::codec::decode_bytes`].
///
/// I/O errors cannot surface through the engine's fire-and-forget
/// event calls, so the sink goes *sticky-failed* on the first error:
/// further records are dropped (counted in
/// [`WriteSink::records_dropped`]) and the error is reported by
/// [`WriteSink::io_error`] / returned by [`WriteSink::finish`].
#[derive(Debug)]
pub struct WriteSink<W: Write + Send + Sync> {
    mode: TelemetryMode,
    enc: EventLog,
    out: W,
    records_written: u64,
    bytes_written: u64,
    records_dropped: u64,
    io_error: Option<std::io::Error>,
}

impl<W: Write + Send + Sync> WriteSink<W> {
    pub fn new(mode: TelemetryMode, out: W) -> WriteSink<W> {
        WriteSink {
            mode,
            enc: EventLog::new(),
            out,
            records_written: 0,
            bytes_written: 0,
            records_dropped: 0,
            io_error: None,
        }
    }

    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Records successfully encoded and handed to the writer.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Encoded bytes handed to the writer.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Records dropped after the sink went sticky-failed.
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    /// The first I/O error, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }

    /// The destination writer (for writer-specific counters, e.g.
    /// [`crate::MmapWriter::remaps`]).
    pub fn writer(&self) -> &W {
        &self.out
    }

    /// Flush the writer and return it, or the first error the sink
    /// swallowed (write-side or flush-side).
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.io_error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Run `encode` against the encoder, then stream the freshly
    /// encoded bytes to the writer.
    fn record(&mut self, encode: impl FnOnce(&mut EventLog)) {
        if self.io_error.is_some() {
            self.records_dropped += 1;
            return;
        }
        encode(&mut self.enc);
        let chunk = self.enc.drain_bytes();
        match self.out.write_all(&chunk) {
            Ok(()) => {
                self.records_written += 1;
                self.bytes_written += chunk.len() as u64;
            }
            Err(e) => {
                self.io_error = Some(e);
                self.records_dropped += 1;
            }
        }
    }
}

/// A fixed-capacity byte buffer in front of any `io::Write`. The
/// buffer is allocated **once** at construction and never grows:
/// writes accumulate until the next write would overflow, at which
/// point the whole buffer drains to the inner writer in a single
/// `write_all`; a chunk larger than the entire buffer bypasses it and
/// writes straight through. The steady-state path is therefore a
/// memcpy into warm memory with no allocator traffic and one inner
/// write per buffer fill instead of one per record.
#[derive(Debug)]
pub struct BufferedWriter<W: Write> {
    buf: Vec<u8>,
    out: W,
    drains: u64,
}

impl<W: Write> BufferedWriter<W> {
    pub fn with_capacity(capacity: usize, out: W) -> BufferedWriter<W> {
        assert!(capacity > 0, "buffer capacity must be non-zero");
        BufferedWriter {
            buf: Vec::with_capacity(capacity),
            out,
            drains: 0,
        }
    }

    /// Buffer-to-writer drains so far (write-through chunks excluded).
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Bytes currently held in the buffer.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn drain(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
            self.drains += 1;
        }
        Ok(())
    }

    /// Drain any buffered bytes and return the inner writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.drain()?;
        Ok(self.out)
    }
}

impl<W: Write> Write for BufferedWriter<W> {
    fn write(&mut self, chunk: &[u8]) -> std::io::Result<usize> {
        if self.buf.len() + chunk.len() > self.buf.capacity() {
            self.drain()?;
        }
        if chunk.len() > self.buf.capacity() {
            self.out.write_all(chunk)?; // oversized: write through
        } else {
            self.buf.extend_from_slice(chunk);
        }
        Ok(chunk.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.drain()?;
        self.out.flush()
    }
}

/// The buffered variant of [`WriteSink`]: the same event semantics,
/// counters, sticky-error behaviour, and **byte-identical** output
/// stream, but records land in a preallocated grow-once
/// [`BufferedWriter`] instead of being `write_all`'d to the
/// destination one by one — the shape a file- or socket-backed
/// long-run log wants, where a syscall per mapping event would
/// dominate the encoding cost. Nothing reaches the destination until
/// the buffer fills, [`flush`](BufferedWriteSink::flush) is called
/// explicitly, or [`finish`](BufferedWriteSink::finish) drains it.
#[derive(Debug)]
pub struct BufferedWriteSink<W: Write + Send + Sync> {
    inner: WriteSink<BufferedWriter<W>>,
}

impl<W: Write + Send + Sync> BufferedWriteSink<W> {
    /// A sink buffering up to `capacity` encoded bytes in front of
    /// `out`. The buffer is allocated here and never again.
    pub fn new(mode: TelemetryMode, capacity: usize, out: W) -> BufferedWriteSink<W> {
        BufferedWriteSink {
            inner: WriteSink::new(mode, BufferedWriter::with_capacity(capacity, out)),
        }
    }

    pub fn mode(&self) -> TelemetryMode {
        self.inner.mode()
    }

    /// Records successfully encoded into the buffer.
    pub fn records_written(&self) -> u64 {
        self.inner.records_written()
    }

    /// Encoded bytes handed to the buffer.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    /// Records dropped after the sink went sticky-failed.
    pub fn records_dropped(&self) -> u64 {
        self.inner.records_dropped()
    }

    /// The first I/O error, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.inner.io_error()
    }

    /// Bytes currently buffered but not yet written to the
    /// destination.
    pub fn buffered(&self) -> usize {
        self.inner.out.buffered()
    }

    /// Buffer-to-destination drains so far — the number of inner
    /// writes a run actually paid for, versus one per record unbuffered.
    pub fn drains(&self) -> u64 {
        self.inner.out.drains()
    }

    /// Explicitly drain the buffer (and flush the destination), e.g.
    /// at a checkpoint boundary. An error here goes sticky exactly
    /// like a record-time error.
    pub fn flush(&mut self) {
        if self.inner.io_error.is_some() {
            return;
        }
        if let Err(e) = self.inner.out.flush() {
            self.inner.io_error = Some(e);
        }
    }

    /// Drain the buffer, flush the destination, and return it — or
    /// the first error the sink swallowed.
    pub fn finish(self) -> std::io::Result<W> {
        self.inner.finish()?.into_inner()
    }
}

impl<W: Write + Send + Sync + 'static> EventSink for BufferedWriteSink<W> {
    fn mapping_created(&mut self, event: &MappingEvent) {
        self.inner.mapping_created(event);
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        self.inner.mapping_expired(event);
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        self.inner.block_allocated(event);
    }

    fn block_released(&mut self, event: &BlockEvent) {
        self.inner.block_released(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        self.inner.volume()
    }
}

impl<W: Write + Send + Sync + 'static> EventSink for WriteSink<W> {
    fn mapping_created(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            let e = *event;
            self.record(|enc| enc.map_create(e.at, e.internal.ip, e.proto, e.external));
        }
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            let e = *event;
            self.record(|enc| enc.map_expire(e.at, e.proto, e.external));
        }
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            let e = *event;
            self.record(|enc| {
                enc.block_alloc(
                    e.at,
                    e.subscriber,
                    e.proto,
                    e.ext_ip,
                    e.block_start,
                    e.block_len,
                )
            });
        }
    }

    fn block_released(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            let e = *event;
            self.record(|enc| enc.block_release(e.at, e.proto, e.ext_ip, e.block_start));
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        Some((self.records_written, self.bytes_written))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{ip, Endpoint, Protocol, SimTime};

    fn mapping_event(port: u16) -> MappingEvent {
        MappingEvent {
            at: SimTime::from_secs(1),
            proto: Protocol::Udp,
            internal: Endpoint::new(ip(100, 64, 0, 1), 40_000),
            external: Endpoint::new(ip(198, 51, 100, 1), port),
        }
    }

    fn block_event() -> BlockEvent {
        BlockEvent {
            at: SimTime::from_secs(1),
            proto: Protocol::Udp,
            subscriber: ip(100, 64, 0, 1),
            ext_ip: ip(198, 51, 100, 1),
            block_start: 2048,
            block_len: 512,
        }
    }

    #[test]
    fn mode_selects_what_gets_encoded() {
        let mut per_conn = BinaryLogSink::new(TelemetryMode::PerConnection);
        per_conn.mapping_created(&mapping_event(1024));
        per_conn.block_allocated(&block_event());
        assert_eq!(per_conn.log().records(), 1, "block event filtered out");

        let mut per_block = BinaryLogSink::new(TelemetryMode::PerBlock);
        per_block.mapping_created(&mapping_event(1024));
        per_block.block_allocated(&block_event());
        assert_eq!(per_block.log().records(), 1, "mapping event filtered out");

        let mut off = BinaryLogSink::new(TelemetryMode::Off);
        off.mapping_created(&mapping_event(1024));
        off.block_allocated(&block_event());
        assert!(off.log().is_empty());
    }

    /// Sticky-failing writer: errors after `limit` bytes.
    struct FailAfter {
        taken: usize,
        limit: usize,
    }

    impl std::io::Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.taken + buf.len() > self.limit {
                return Err(std::io::Error::other("disk full"));
            }
            self.taken += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The satellite round-trip: a WriteSink's streamed bytes are
    /// byte-identical to the in-memory EventLog a BinaryLogSink
    /// accumulates from the same event sequence, and decode to the
    /// same records.
    #[test]
    fn write_sink_stream_matches_event_log() {
        let mut mem = BinaryLogSink::new(TelemetryMode::PerConnection);
        let mut streamed = WriteSink::new(TelemetryMode::PerConnection, Vec::<u8>::new());
        for (k, port) in [1024u16, 2048, 4096, 1024].into_iter().enumerate() {
            let mut e = mapping_event(port);
            e.at = SimTime::from_secs(2 * k as u64 + 1);
            mem.mapping_created(&e);
            streamed.mapping_created(&e);
            e.at = SimTime::from_secs(2 * k as u64 + 2);
            mem.mapping_expired(&e);
            streamed.mapping_expired(&e);
        }
        assert_eq!(streamed.records_written(), 8);
        assert_eq!(streamed.records_dropped(), 0);
        assert_eq!(streamed.bytes_written(), mem.log().len_bytes());
        let bytes = streamed.finish().expect("no I/O error");
        assert_eq!(
            bytes.as_slice(),
            mem.log().bytes(),
            "streams byte-identical"
        );
        let records = crate::codec::decode_bytes(&bytes).expect("stream decodes");
        assert_eq!(records, mem.log().decode().expect("log decodes"));
    }

    /// Same equivalence driven through a real engine: logs from a
    /// Nat carrying a WriteSink match a BinaryLogSink run.
    #[test]
    fn write_sink_matches_binary_sink_behind_a_nat() {
        use nat_engine::{Nat, NatConfig};
        use netcore::Packet;

        let run = |sink: Box<dyn EventSink>| -> Nat {
            let mut nat = Nat::new(NatConfig::cgn_default(), vec![ip(198, 51, 100, 1)], 7);
            nat.set_sink(sink);
            for k in 0..40u16 {
                let src = Endpoint::new(ip(100, 64, 0, (k % 8) as u8 + 1), 40_000 + k);
                let dst = Endpoint::new(ip(203, 0, 113, 10), 8000);
                let _ = nat
                    .process_outbound(Packet::udp(src, dst, vec![]), SimTime::from_secs(k as u64));
            }
            nat.sweep(SimTime::from_secs(400));
            nat
        };
        let mut mem_nat = run(Box::new(BinaryLogSink::new(TelemetryMode::PerConnection)));
        let mem = BinaryLogSink::from_sink(mem_nat.take_sink().expect("installed")).expect("type");
        let mut stream_nat = run(Box::new(WriteSink::new(
            TelemetryMode::PerConnection,
            Vec::<u8>::new(),
        )));
        let streamed = stream_nat
            .take_sink()
            .expect("installed")
            .into_any()
            .downcast::<WriteSink<Vec<u8>>>()
            .expect("type");
        let mut buf_nat = run(Box::new(BufferedWriteSink::new(
            TelemetryMode::PerConnection,
            256,
            Vec::<u8>::new(),
        )));
        let buffered = buf_nat
            .take_sink()
            .expect("installed")
            .into_any()
            .downcast::<BufferedWriteSink<Vec<u8>>>()
            .expect("type");
        let mmap_path =
            std::env::temp_dir().join(format!("cgn-mmap-differential-{}.bin", std::process::id()));
        let mut mmap_nat = run(Box::new(
            crate::MmapWriteSink::create(TelemetryMode::PerConnection, &mmap_path, 4096)
                .expect("create mapped sink"),
        ));
        let mapped = crate::MmapWriteSink::from_sink(mmap_nat.take_sink().expect("installed"))
            .expect("type");
        assert!(mem.log().records() > 0, "the run must log something");
        assert!(
            buffered.drains() < buffered.records_written(),
            "buffering must batch writes"
        );
        let bytes = streamed.finish().expect("no I/O error");
        let buf_bytes = buffered.finish().expect("no I/O error");
        mapped.finish().expect("no I/O error");
        let mmap_bytes = std::fs::read(&mmap_path).expect("read mapped file back");
        let _ = std::fs::remove_file(&mmap_path);
        assert_eq!(bytes.as_slice(), mem.log().bytes());
        assert_eq!(buf_bytes, bytes, "buffered stream byte-identical");
        assert_eq!(mmap_bytes, bytes, "mapped file byte-identical");
        assert_eq!(
            crate::codec::decode_bytes(&bytes).expect("decodes"),
            mem.log().decode().expect("decodes")
        );
    }

    /// The buffered sink's whole point: the same byte stream with far
    /// fewer inner writes, nothing reaching the destination until a
    /// fill or an explicit flush.
    #[test]
    fn buffered_sink_batches_and_flushes_explicitly() {
        let mut mem = BinaryLogSink::new(TelemetryMode::PerConnection);
        let mut buffered = BufferedWriteSink::new(TelemetryMode::PerConnection, 4096, Vec::new());
        for port in 1024u16..1064 {
            let e = mapping_event(port);
            mem.mapping_created(&e);
            buffered.mapping_created(&e);
        }
        assert_eq!(buffered.records_written(), 40);
        assert_eq!(buffered.drains(), 0, "40 small records fit the buffer");
        assert!(buffered.buffered() > 0);
        buffered.flush();
        assert_eq!(buffered.drains(), 1, "explicit flush drains once");
        assert_eq!(buffered.buffered(), 0);
        let bytes = buffered.finish().expect("no I/O error");
        assert_eq!(bytes.as_slice(), mem.log().bytes(), "byte-identical");
    }

    /// A chunk larger than the whole buffer writes straight through —
    /// the buffer never grows past its construction-time capacity.
    #[test]
    fn buffered_writer_writes_through_oversized_chunks() {
        let mut w = BufferedWriter::with_capacity(8, Vec::<u8>::new());
        w.write_all(&[1, 2, 3]).unwrap();
        w.write_all(&[0u8; 20]).unwrap(); // > capacity: drains then bypasses
        assert_eq!(w.buffered(), 0);
        w.write_all(&[4, 5]).unwrap();
        let out = w.into_inner().unwrap();
        let mut expect = vec![1, 2, 3];
        expect.extend_from_slice(&[0u8; 20]);
        expect.extend_from_slice(&[4, 5]);
        assert_eq!(out, expect, "order preserved across the bypass");
    }

    #[test]
    fn buffered_sink_goes_sticky_on_drain_error() {
        let mut s = BufferedWriteSink::new(
            TelemetryMode::PerConnection,
            64,
            FailAfter {
                taken: 0,
                limit: 70,
            },
        );
        let mut port = 1024u16;
        while s.io_error().is_none() && port < 2048 {
            s.mapping_created(&mapping_event(port));
            port += 1;
        }
        assert!(s.io_error().is_some(), "second drain must trip the limit");
        let written_at_failure = s.records_written();
        s.mapping_created(&mapping_event(9000));
        assert_eq!(s.records_written(), written_at_failure, "sticky-failed");
        assert!(s.records_dropped() >= 1);
        assert!(s.finish().is_err(), "finish surfaces the error");
    }

    #[test]
    fn write_sink_mode_filters_like_binary_sink() {
        let mut s = WriteSink::new(TelemetryMode::PerBlock, Vec::<u8>::new());
        s.mapping_created(&mapping_event(1024));
        assert_eq!(s.records_written(), 0, "mapping filtered in PerBlock mode");
        s.block_allocated(&block_event());
        assert_eq!(s.records_written(), 1);
    }

    #[test]
    fn write_sink_goes_sticky_on_io_error() {
        let mut s = WriteSink::new(
            TelemetryMode::PerConnection,
            FailAfter {
                taken: 0,
                limit: 24,
            },
        );
        let mut port = 1024u16;
        while s.io_error().is_none() && port < 2048 {
            s.mapping_created(&mapping_event(port));
            port += 1;
        }
        assert!(s.io_error().is_some(), "tiny limit must trip");
        let written_at_failure = s.records_written();
        s.mapping_created(&mapping_event(9000));
        assert_eq!(s.records_written(), written_at_failure, "sticky-failed");
        assert!(s.records_dropped() >= 2);
        assert!(s.finish().is_err(), "finish surfaces the error");
    }

    /// Every sampled create has its matching expire: the decision is a
    /// pure function of the flow key, so a mapping is either fully
    /// logged or fully absent — never a dangling half.
    #[test]
    fn sampled_sink_keeps_create_expire_pairs_together() {
        let mut s = SampledSink::new(4);
        for port in 1024u16..1424 {
            s.mapping_created(&mapping_event(port));
        }
        let creates = s.log().records();
        assert!(creates > 0 && creates < 400, "1-in-4 must decimate");
        for port in 1024u16..1424 {
            s.mapping_expired(&mapping_event(port));
        }
        assert_eq!(
            s.log().records(),
            creates * 2,
            "exactly the sampled flows expire into the log"
        );
        let one_in_1 = {
            let mut s = SampledSink::new(1);
            for port in 1024u16..1424 {
                s.mapping_created(&mapping_event(port));
            }
            s.log().records()
        };
        assert_eq!(one_in_1, 400, "1-in-1 keeps everything");
    }

    #[test]
    fn sampled_sink_volume_tracks_inner_log_and_recovers() {
        let mut sink: Box<dyn EventSink> = Box::new(SampledSink::new(1));
        sink.mapping_created(&mapping_event(1024));
        sink.mapping_expired(&mapping_event(1024));
        assert_eq!(
            sink.volume().expect("measures volume").0,
            2,
            "records surface through the trait"
        );
        let back = SampledSink::from_sink(sink).expect("downcast");
        assert_eq!(back.one_in(), 1);
        assert_eq!(back.into_log().records(), 2);
    }

    #[test]
    fn round_trips_through_the_engine_trait_object() {
        let mut sink: Box<dyn EventSink> =
            Box::new(BinaryLogSink::new(TelemetryMode::PerConnection));
        sink.mapping_created(&mapping_event(1024));
        sink.mapping_expired(&mapping_event(1024));
        let back = BinaryLogSink::from_sink(sink).expect("downcast");
        assert_eq!(back.log().records(), 2);
        assert_eq!(back.mode(), TelemetryMode::PerConnection);
    }
}
