//! The engine-facing sink: NAT events in, binary log bytes out.

use crate::codec::EventLog;
use nat_engine::telemetry::{BlockEvent, EventSink, MappingEvent, TelemetryMode};
use std::any::Any;

/// An [`EventSink`] that encodes the events its [`TelemetryMode`]
/// selects into an append-only [`EventLog`]:
///
/// * [`TelemetryMode::PerConnection`] — mapping create/expire pairs
///   (block events ignored): the volume-heavy policy;
/// * [`TelemetryMode::PerBlock`] — block allocate/release pairs
///   (mapping events ignored): bulk port-block logging;
/// * [`TelemetryMode::Off`] — records nothing (normally no sink is
///   installed at all in this mode; accepting it keeps callers total).
///
/// One sink per engine shard; the shard's worker thread owns it, so no
/// synchronization is involved and per-shard logs are deterministic
/// for any worker-thread count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BinaryLogSink {
    mode: TelemetryMode,
    log: EventLog,
}

impl BinaryLogSink {
    pub fn new(mode: TelemetryMode) -> BinaryLogSink {
        BinaryLogSink {
            mode,
            log: EventLog::new(),
        }
    }

    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Consume the sink, keeping its log.
    pub fn into_log(self) -> EventLog {
        self.log
    }

    /// Recover a `BinaryLogSink` from the boxed trait object the
    /// engine hands back (`Nat::take_sink`).
    pub fn from_sink(sink: Box<dyn EventSink>) -> Option<BinaryLogSink> {
        sink.into_any().downcast::<BinaryLogSink>().ok().map(|b| *b)
    }
}

impl EventSink for BinaryLogSink {
    fn mapping_created(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            self.log
                .map_create(event.at, event.internal.ip, event.proto, event.external);
        }
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            self.log.map_expire(event.at, event.proto, event.external);
        }
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            self.log.block_alloc(
                event.at,
                event.subscriber,
                event.proto,
                event.ext_ip,
                event.block_start,
                event.block_len,
            );
        }
    }

    fn block_released(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            self.log
                .block_release(event.at, event.proto, event.ext_ip, event.block_start);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{ip, Endpoint, Protocol, SimTime};

    fn mapping_event(port: u16) -> MappingEvent {
        MappingEvent {
            at: SimTime::from_secs(1),
            proto: Protocol::Udp,
            internal: Endpoint::new(ip(100, 64, 0, 1), 40_000),
            external: Endpoint::new(ip(198, 51, 100, 1), port),
        }
    }

    fn block_event() -> BlockEvent {
        BlockEvent {
            at: SimTime::from_secs(1),
            proto: Protocol::Udp,
            subscriber: ip(100, 64, 0, 1),
            ext_ip: ip(198, 51, 100, 1),
            block_start: 2048,
            block_len: 512,
        }
    }

    #[test]
    fn mode_selects_what_gets_encoded() {
        let mut per_conn = BinaryLogSink::new(TelemetryMode::PerConnection);
        per_conn.mapping_created(&mapping_event(1024));
        per_conn.block_allocated(&block_event());
        assert_eq!(per_conn.log().records(), 1, "block event filtered out");

        let mut per_block = BinaryLogSink::new(TelemetryMode::PerBlock);
        per_block.mapping_created(&mapping_event(1024));
        per_block.block_allocated(&block_event());
        assert_eq!(per_block.log().records(), 1, "mapping event filtered out");

        let mut off = BinaryLogSink::new(TelemetryMode::Off);
        off.mapping_created(&mapping_event(1024));
        off.block_allocated(&block_event());
        assert!(off.log().is_empty());
    }

    #[test]
    fn round_trips_through_the_engine_trait_object() {
        let mut sink: Box<dyn EventSink> =
            Box::new(BinaryLogSink::new(TelemetryMode::PerConnection));
        sink.mapping_created(&mapping_event(1024));
        sink.mapping_expired(&mapping_event(1024));
        let back = BinaryLogSink::from_sink(sink).expect("downcast");
        assert_eq!(back.log().records(), 2);
        assert_eq!(back.mode(), TelemetryMode::PerConnection);
    }
}
